"""Figure 13 — multiple topologies on a 24-node cluster.

Paper averages (tuples per 10 s): R-Storm PageLoad 25,496 and Processing
67,115; default PageLoad 16,695 and Processing ~10 ("grinded to a near
halt").  The reproduction target is the comparison structure: R-Storm
healthy on both, default degrading PageLoad and effectively killing
Processing by over-committing memory on shared machines.
"""

from conftest import persist

from repro.experiments import fig13_multi_topology


def test_fig13_regenerates_paper_table(benchmark):
    result = benchmark.pedantic(
        fig13_multi_topology.run,
        kwargs={"duration_s": 120.0},
        rounds=1,
        iterations=1,
    )
    persist(result)

    def cell(scheduler, topology, column):
        return result.row_value(
            {"scheduler": scheduler, "topology": topology}, column
        )

    r_pl = cell("r-storm", "pageload", "tuples_per_10s")
    r_proc = cell("r-storm", "processing", "tuples_per_10s")
    d_pl = cell("default", "pageload", "tuples_per_10s")
    d_proc = cell("default", "processing", "tuples_per_10s")

    # R-Storm: both topologies healthy.
    assert r_pl > 0 and r_proc > 0
    # PageLoad: default clearly behind (paper: -35%).
    assert r_pl > 1.3 * d_pl
    # Processing: default collapses by an order of magnitude or more.
    assert r_proc > 10 * d_proc
    # The paper's asymmetry: under default, PageLoad survives while
    # Processing grinds to a near halt.
    assert d_pl > 5 * d_proc

    # Mechanism: only default over-commits physical memory.
    assert cell("r-storm", "processing", "memory_overcommitted_nodes") == 0
    assert cell("default", "processing", "memory_overcommitted_nodes") > 0
