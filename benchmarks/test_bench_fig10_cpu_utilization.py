"""Figure 10 — CPU utilisation of machines used.

Paper: R-Storm's average CPU utilisation over the machines it uses beats
default Storm's by +69% (Linear), +91% (Diamond) and +350% (Star).
"""

from conftest import persist

from repro.experiments import fig10_cpu_utilization


def test_fig10_regenerates_paper_table(benchmark):
    result = benchmark.pedantic(
        fig10_cpu_utilization.run,
        kwargs={"duration_s": 90.0},
        rounds=1,
        iterations=1,
    )
    persist(result)

    for kind in ("linear", "diamond", "star"):
        improvement = result.row_value({"topology": kind}, "improvement_pct")
        assert improvement > 50.0, (
            f"{kind}: expected a large utilisation gap, got {improvement}%"
        )
        r_util = result.row_value({"topology": kind}, "rstorm_cpu_util")
        d_util = result.row_value({"topology": kind}, "default_cpu_util")
        # R-Storm runs its (fewer) machines hot; default leaves headroom.
        assert r_util > 0.7
        assert d_util < 0.7
