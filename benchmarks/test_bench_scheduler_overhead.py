"""Scheduling latency — the paper's real-time requirement (Section 3).

"Scheduling decisions need to be made in a snappy manner": R-Storm must
produce assignments orders of magnitude faster than Nimbus's 10-second
scheduling period, even on clusters much larger than the testbed.  This
file both regenerates the latency table and microbenchmarks a single
R-Storm scheduling round with pytest-benchmark's statistics.
"""

from conftest import persist

from repro.experiments import scheduling_overhead
from repro.scheduler.rstorm import RStormScheduler


def test_overhead_table(benchmark):
    result = benchmark.pedantic(
        scheduling_overhead.run, kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    persist(result)
    for row in result.rows:
        # every scheduler at every scale is far below the 10 s period
        for column, value in row.items():
            if column.endswith("_ms"):
                assert value < 1000.0


def test_rstorm_round_microbenchmark(benchmark):
    """Statistical microbenchmark of one full R-Storm scheduling round on
    a 64-node cluster with an 8x16-task topology."""

    def schedule_once():
        topology = scheduling_overhead.make_chain_topology(8, 16)
        cluster = scheduling_overhead.make_cluster(64)
        return RStormScheduler().schedule([topology], cluster)

    assignments = benchmark(schedule_once)
    assert assignments["chain"].is_complete(
        scheduling_overhead.make_chain_topology(8, 16)
    )


def test_default_round_microbenchmark(benchmark):
    from repro.scheduler.default import DefaultScheduler

    def schedule_once():
        topology = scheduling_overhead.make_chain_topology(8, 16)
        cluster = scheduling_overhead.make_cluster(64)
        return DefaultScheduler().schedule([topology], cluster)

    assignments = benchmark(schedule_once)
    assert len(assignments["chain"]) == 128
