"""Distance-weight sweep (the paper's user-tunable soft-constraint
weights, Section 4)."""

from conftest import persist

from repro.experiments import weight_sweep


def test_weight_sweep_table(benchmark):
    result = benchmark.pedantic(
        weight_sweep.run, kwargs={"duration_s": 90.0}, rounds=1, iterations=1
    )
    persist(result)

    # network emphasis buys locality on the homogeneous cluster
    net_only = result.row_value(
        {"weights": "net-only (cpu=0)"}, "linear_mean_netdist"
    )
    cpu_only = result.row_value(
        {"weights": "cpu-only (net=0)"}, "linear_mean_netdist"
    )
    assert net_only <= cpu_only + 1e-9

    # every weighting still beats nothing: tables are fully populated
    for row in result.rows:
        assert row["linear_net_tuples_per_10s"] > 0
        assert row["pageload_hetero_tuples_per_10s"] > 0
