"""Ablations of R-Storm's design choices (DESIGN.md).

Swaps out one scheduler ingredient at a time — BFS ordering, the
ref-node network-distance term, gap normalisation, the no-overcommit
preference, the distance weights — on the PageLoad topology over a
heterogeneous two-rack cluster, plus the Aniello offline and default
baselines for context.
"""

from conftest import persist

from repro.experiments import ablations


def test_ablations_table(benchmark):
    result = benchmark.pedantic(
        ablations.run, kwargs={"duration_s": 90.0}, rounds=1, iterations=1
    )
    persist(result)

    paper = result.row_value({"variant": "r-storm (paper)"}, "tuples_per_10s")
    default = result.row_value({"variant": "default"}, "tuples_per_10s")
    aniello = result.row_value({"variant": "aniello-offline"}, "tuples_per_10s")
    # Every R-Storm variant is a resource-aware scheduler; all of them
    # beat the resource-oblivious baselines on a heterogeneous cluster.
    for row in result.rows:
        if row["variant"] not in ("default", "aniello-offline"):
            assert row["tuples_per_10s"] > default
            assert row["tuples_per_10s"] > aniello
    assert paper > 2 * default

    # The paper-literal minimum-distance variant over-commits CPU harder
    # and pays for it on this workload.
    overcommit = result.row_value(
        {"variant": "allow-overcommit"}, "tuples_per_10s"
    )
    assert overcommit <= paper
