"""Figure 9 — computation-bound micro-benchmarks.

Regenerates the compute-bound comparisons: R-Storm should match default
Storm's throughput using roughly half the machines (paper: 6/7/6 vs 12),
and beat it outright on the Star topology, where default Storm's
round-robin over-utilises the spout machines.
"""

from conftest import persist

from repro.experiments import fig9_compute_bound


def test_fig9_regenerates_paper_table(benchmark):
    result = benchmark.pedantic(
        fig9_compute_bound.run,
        kwargs={"duration_s": 90.0},
        rounds=1,
        iterations=1,
    )
    persist(result)

    for kind in ("linear", "diamond"):
        ratio = result.row_value({"topology": kind}, "throughput_ratio")
        assert 0.9 <= ratio <= 1.15, f"{kind}: expected parity, got {ratio}"
        rstorm_nodes = result.row_value({"topology": kind}, "rstorm_nodes")
        default_nodes = result.row_value({"topology": kind}, "default_nodes")
        assert rstorm_nodes <= default_nodes * 0.67

    star_ratio = result.row_value({"topology": "star"}, "throughput_ratio")
    assert star_ratio > 1.1  # default's hot machines throttle the star

    # R-Storm never over-commits CPU given honest declarations.
    for kind in ("linear", "diamond", "star"):
        overcommit = result.row_value(
            {"topology": kind}, "rstorm_max_cpu_overcommit"
        )
        assert overcommit <= 1.0 + 1e-9
