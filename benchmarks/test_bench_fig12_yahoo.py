"""Figure 12 — Yahoo! production topologies, single tenancy.

Paper: R-Storm beats default Storm by ~50% (PageLoad) and ~47%
(Processing) on the 12-node testbed.
"""

from conftest import persist

from repro.experiments import fig12_yahoo


def test_fig12_regenerates_paper_table(benchmark):
    result = benchmark.pedantic(
        fig12_yahoo.run, kwargs={"duration_s": 120.0}, rounds=1, iterations=1
    )
    persist(result)

    pageload = result.row_value({"topology": "pageload"}, "improvement_pct")
    processing = result.row_value({"topology": "processing"}, "improvement_pct")
    # Shape: R-Storm clearly ahead on both production topologies.
    assert pageload > 25.0
    assert processing > 10.0
    # Mechanism: default Storm over-utilises machines, R-Storm does not.
    assert (
        result.row_value({"topology": "pageload"}, "default_max_cpu_overcommit")
        > 1.0
    )
