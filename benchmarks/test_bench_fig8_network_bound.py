"""Figure 8 — network-bound micro-benchmarks.

Regenerates the paper's three network-bound comparisons (Linear, Diamond,
Star; R-Storm vs default Storm) and checks the reproduced shape: R-Storm
wins each topology, diamond by the smallest margin.

Paper: +50% (Linear), +30% (Diamond), +47% (Star).
"""

from conftest import persist

from repro.experiments import fig8_network_bound


def test_fig8_regenerates_paper_table(benchmark):
    result = benchmark.pedantic(
        fig8_network_bound.run,
        kwargs={"duration_s": 90.0},
        rounds=1,
        iterations=1,
    )
    persist(result)

    improvements = {}
    for kind in ("linear", "diamond", "star"):
        improvement = result.row_value({"topology": kind}, "improvement_pct")
        improvements[kind] = improvement
        # Shape: R-Storm clearly ahead on every network-bound topology.
        assert improvement > 15.0, f"{kind}: expected R-Storm win, got {improvement}%"
    # Shape: the diamond carries the most replicated traffic and shows the
    # smallest gain, as in the paper (+30% vs +50%/+47%).
    assert improvements["diamond"] <= improvements["linear"]
    assert improvements["diamond"] <= improvements["star"]
