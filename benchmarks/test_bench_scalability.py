"""Scalability of the scheduler beyond the 12-node testbed.

Random layered topologies on clusters up to 128 nodes: scheduling
latency must stay far below the 10 s Nimbus period, and R-Storm's
locality advantage (mean network distance) must persist at scale.
Throughput columns come from the analytical flow model.
"""

from conftest import persist

from repro.experiments import scalability


def test_scalability_table(benchmark):
    result = benchmark.pedantic(scalability.run, rounds=1, iterations=1)
    persist(result)

    for row in result.rows:
        assert row["rstorm_ms"] < 1000.0  # well below the 10 s period
        assert row["rstorm_mean_netdist"] < row["default_mean_netdist"]
    # latency grows sub-quadratically with cluster size in this range
    small = result.rows[0]["rstorm_ms"]
    large = result.rows[-1]["rstorm_ms"]
    nodes_ratio = result.rows[-1]["nodes"] / result.rows[0]["nodes"]
    assert large / max(small, 0.01) < nodes_ratio**2