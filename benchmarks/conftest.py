"""Benchmark-suite helpers.

Every figure benchmark regenerates its table once (``benchmark.pedantic``
with a single round — the simulations are minutes-long, not
microbenchmarks), prints it, and persists it under
``benchmarks/results/`` so the numbers survive the pytest run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def persist(result) -> None:
    """Print an ExperimentResult and write it to benchmarks/results/."""
    text = result.format(include_series=True)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
