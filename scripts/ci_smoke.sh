#!/usr/bin/env bash
# Determinism smoke for the experiment CLI, shared by every CI smoke
# scenario (.github/workflows/ci.yml "smoke" matrix).
#
# Each scenario runs its experiment three ways and requires the reports
# to be byte-identical (modulo the "cache:" status line):
#
#   cold  — parallel workers, empty cache (must report misses)
#   warm  — same invocation again (must be pure cache hits)
#   fresh — --no-cache single pass (must equal the cold report)
#
# plus scenario-specific assertions: expected sections present, and —
# for the opt-in layers (elastic, tenancy) — proof that the default
# experiment grids are not perturbed by the layer existing.
#
# Usage: scripts/ci_smoke.sh {figure|chaos|traffic|elastic|tenancy|backpressure}

set -euo pipefail

CACHE_DIR=.ci-cache

repro() {
    PYTHONPATH=src python -m repro "$@"
}

strip_cache_line() {
    grep -v "^cache:" "$1"
}

# cold_warm_fresh <prefix> <experiment args...>: the three-way
# byte-identity harness.  Leaves <prefix>-{cold,warm,fresh}.txt behind
# for scenario-specific grep assertions.
cold_warm_fresh() {
    local prefix="$1"
    shift
    echo "== $prefix: cold run (populates cache)"
    repro "$@" --jobs 2 --cache-dir "$CACHE_DIR" | tee "$prefix-cold.txt"
    grep -q "miss(es)" "$prefix-cold.txt"
    echo "== $prefix: warm run (must be pure cache hits)"
    repro "$@" --jobs 2 --cache-dir "$CACHE_DIR" | tee "$prefix-warm.txt"
    grep -q " 0 miss(es)" "$prefix-warm.txt"
    echo "== $prefix: cold == warm, byte for byte"
    diff <(strip_cache_line "$prefix-cold.txt") \
         <(strip_cache_line "$prefix-warm.txt")
    echo "== $prefix: fresh uncached run matches the cached one"
    repro "$@" --no-cache | tee "$prefix-fresh.txt"
    diff <(strip_cache_line "$prefix-cold.txt") "$prefix-fresh.txt"
}

# fresh_default_grids: uncached default-config runs of the classic
# grids, used by the opt-in layers' non-perturbation assertions.
fresh_default_grids() {
    repro fig9 --duration 60 --no-cache | tee fig9-default.txt
    repro chaos --duration 90 --no-cache | tee chaos-default.txt
    repro traffic --duration 90 --no-cache | tee traffic-default.txt
}

# NB: no braces inside the ${1:?...} message — bash would close the
# expansion at the first "}" and glue the rest onto the value.
scenario="${1:?usage: $0 figure|chaos|traffic|elastic|tenancy|backpressure}"

case "$scenario" in
figure)
    cold_warm_fresh fig9 fig9 --duration 60
    ;;
chaos)
    cold_warm_fresh chaos chaos --duration 90
    cold_warm_fresh lossy chaos --duration 90 --loss-rate 0.05 --quarantine
    grep -q "lossy-link" lossy-cold.txt
    grep -q "flapping-node" lossy-cold.txt
    echo "== chaos: extended flags do not perturb the default grid"
    repro chaos --duration 90 --no-cache | tee chaos-default-again.txt
    diff chaos-fresh.txt chaos-default-again.txt
    echo "== chaos: traffic layer does not perturb closed-loop runs"
    # Default (arrival_process=None) runs must never grow open-loop
    # metrics: no offered/achieved/e2e keys in a closed-loop report.
    ! grep -qE "offered|achieved_ratio|e2e_p" chaos-fresh.txt
    ;;
traffic)
    cold_warm_fresh traffic traffic --duration 90
    grep -q "e2e_p999_ms" traffic-cold.txt
    grep -q "zipf" traffic-cold.txt
    ;;
elastic)
    cold_warm_fresh elastic elastic --duration 90
    grep -q "elastic/r-storm" elastic-cold.txt
    grep -q "adapt_s" elastic-cold.txt
    echo "== elastic: default path unperturbed (opt-in layer off)"
    # With nimbus.elastic.enabled left at its default (false) no
    # elastic metric, decision or rescale may surface anywhere in the
    # default experiment grids.
    fresh_default_grids
    ! grep -qE "elastic|adapt_s|rescale" \
        fig9-default.txt chaos-default.txt traffic-default.txt
    ;;
tenancy)
    cold_warm_fresh tenants tenants --duration 60
    grep -q "jain=" tenants-cold.txt
    grep -q "evictions=" tenants-cold.txt
    grep -q "placement-agnostic" tenants-cold.txt
    echo "== tenancy: default path unperturbed (opt-in layer off)"
    # With nimbus.tenancy.enabled left at its default (false) no
    # tenant, fairness or admission metric may surface anywhere in the
    # default experiment grids.
    fresh_default_grids
    ! grep -qE "tenant|jain=|credits|admitted|evict" \
        fig9-default.txt chaos-default.txt traffic-default.txt
    ;;
backpressure)
    cold_warm_fresh protect protection --duration 60
    grep -q "backpressure+shed" protect-cold.txt
    grep -q "shed_rate" protect-cold.txt
    grep -q "priority/free" protect-cold.txt
    grep -q "priority/gold" protect-cold.txt
    echo "== backpressure: default path unperturbed (opt-in layer off)"
    # With simulation.flow / nimbus.flow left at their defaults (off) no
    # shed, stall or throttle metric may surface anywhere in the default
    # experiment grids.  ("shed" does not substring-match "scheduler".)
    fresh_default_grids
    ! grep -qE "shed|throttled|stall|backpressure" \
        fig9-default.txt chaos-default.txt traffic-default.txt
    ;;
*)
    echo "unknown scenario: $scenario" >&2
    exit 2
    ;;
esac

echo "== $scenario smoke OK"
