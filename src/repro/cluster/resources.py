"""Resource vectors and schemas.

The paper (Section 4) models both the demand of a task and the
availability of a node as an n-dimensional vector in ``R^n``.  Each
dimension is either a *hard* constraint (must never be over-committed —
memory in the paper) or a *soft* constraint (may be over-committed with a
graceful performance degradation — CPU and bandwidth in the paper).

This module provides:

* :class:`ResourceDimension` — one axis of the resource space.
* :class:`ResourceSchema` — an ordered collection of dimensions; the
  standard Storm schema (memory/CPU/bandwidth) is
  :meth:`ResourceSchema.storm_default`.
* :class:`ResourceVector` — an immutable point in the resource space with
  elementwise arithmetic, hard-constraint checks, and the normalised
  gap computations used by R-Storm's node-selection distance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import SchemaMismatchError, UnknownResourceError

__all__ = [
    "ConstraintKind",
    "ResourceDimension",
    "ResourceSchema",
    "ResourceVector",
    "MEMORY",
    "CPU",
    "BANDWIDTH",
]

#: Canonical dimension names used by the standard Storm schema.
MEMORY = "memory_mb"
CPU = "cpu"
BANDWIDTH = "bandwidth_mbps"


class ConstraintKind(enum.Enum):
    """Whether a resource dimension is a hard or a soft constraint.

    Hard constraints (memory) must be satisfied in full: exceeding them is
    catastrophic (the paper cites unrecoverable worker failure).  Soft
    constraints (CPU, bandwidth) may be over-committed; performance
    degrades gracefully instead.
    """

    HARD = "hard"
    SOFT = "soft"


@dataclass(frozen=True)
class ResourceDimension:
    """One axis of the resource space.

    Attributes:
        name: Unique dimension name, e.g. ``"memory_mb"``.
        kind: Hard or soft constraint class.
        unit: Human-readable unit for reports.
        default_weight: Weight used by the node-selection distance when the
            user supplies none (the paper's ``Weights`` vector, Section 4).
    """

    name: str
    kind: ConstraintKind
    unit: str = ""
    default_weight: float = 1.0

    @property
    def is_hard(self) -> bool:
        return self.kind is ConstraintKind.HARD

    @property
    def is_soft(self) -> bool:
        return self.kind is ConstraintKind.SOFT


class ResourceSchema:
    """An ordered, immutable collection of resource dimensions.

    All :class:`ResourceVector` instances carry a reference to their
    schema; vectors from different schemas never mix (a
    :class:`~repro.errors.SchemaMismatchError` is raised).
    """

    __slots__ = ("_dimensions", "_index", "_hard_indices", "_soft_indices")

    def __init__(self, dimensions: Iterable[ResourceDimension]):
        dims = tuple(dimensions)
        if not dims:
            raise ValueError("a resource schema needs at least one dimension")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in schema: {names}")
        self._dimensions: Tuple[ResourceDimension, ...] = dims
        self._index: Dict[str, int] = {d.name: i for i, d in enumerate(dims)}
        self._hard_indices: Tuple[int, ...] = tuple(
            i for i, d in enumerate(dims) if d.is_hard
        )
        self._soft_indices: Tuple[int, ...] = tuple(
            i for i, d in enumerate(dims) if d.is_soft
        )

    # -- construction -----------------------------------------------------

    _STORM_DEFAULT: Optional["ResourceSchema"] = None

    @classmethod
    def storm_default(cls) -> "ResourceSchema":
        """The 3-dimensional schema used throughout the paper.

        * ``memory_mb`` — hard constraint, megabytes.
        * ``cpu`` — soft constraint, CPU points (100 points = one core).
        * ``bandwidth_mbps`` — soft constraint, megabits per second.

        The instance is cached so every vector built through the
        convenience constructors shares one schema object (cheap identity
        comparison on the hot path).
        """
        if cls._STORM_DEFAULT is None:
            cls._STORM_DEFAULT = cls(
                [
                    ResourceDimension(MEMORY, ConstraintKind.HARD, "MB"),
                    ResourceDimension(CPU, ConstraintKind.SOFT, "points"),
                    ResourceDimension(BANDWIDTH, ConstraintKind.SOFT, "Mbps"),
                ]
            )
        return cls._STORM_DEFAULT

    # -- introspection ----------------------------------------------------

    @property
    def dimensions(self) -> Tuple[ResourceDimension, ...]:
        return self._dimensions

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self._dimensions)

    @property
    def hard_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self._dimensions if d.is_hard)

    @property
    def soft_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self._dimensions if d.is_soft)

    @property
    def hard_indices(self) -> Tuple[int, ...]:
        """Positions of the hard dimensions, precomputed once — the
        feasibility checks on the scheduling hot path index vectors
        directly instead of resolving names per call."""
        return self._hard_indices

    @property
    def soft_indices(self) -> Tuple[int, ...]:
        """Positions of the soft dimensions, precomputed once."""
        return self._soft_indices

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownResourceError(
                f"unknown resource dimension {name!r}; schema has {self.names}"
            ) from None

    def dimension(self, name: str) -> ResourceDimension:
        return self._dimensions[self.index_of(name)]

    def __len__(self) -> int:
        return len(self._dimensions)

    def __iter__(self) -> Iterator[ResourceDimension]:
        return iter(self._dimensions)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ResourceSchema):
            return NotImplemented
        return self._dimensions == other._dimensions

    def __hash__(self) -> int:
        return hash(self._dimensions)

    def __repr__(self) -> str:
        kinds = ", ".join(f"{d.name}[{d.kind.value}]" for d in self._dimensions)
        return f"ResourceSchema({kinds})"

    # -- vector factories ---------------------------------------------------

    def zero(self) -> "ResourceVector":
        """A vector of all zeroes in this schema."""
        return ResourceVector(self, (0.0,) * len(self._dimensions))

    def vector(self, **values: float) -> "ResourceVector":
        """Build a vector by keyword; unspecified dimensions default to 0."""
        unknown = set(values) - set(self._index)
        if unknown:
            raise UnknownResourceError(
                f"unknown resource dimension(s) {sorted(unknown)}; "
                f"schema has {self.names}"
            )
        return ResourceVector(
            self, tuple(float(values.get(d.name, 0.0)) for d in self._dimensions)
        )


class ResourceVector:
    """An immutable point in a schema's resource space.

    Supports elementwise arithmetic (``+``, ``-``, scalar ``*``),
    hard-constraint admission checks, and the normalised comparisons the
    R-Storm distance function relies on.  Negative values are permitted:
    the *availability* of an over-committed soft resource is negative by
    design.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: ResourceSchema, values: Iterable[float]):
        vals = tuple(float(v) for v in values)
        if len(vals) != len(schema):
            raise ValueError(
                f"expected {len(schema)} values for schema {schema!r}, "
                f"got {len(vals)}"
            )
        self._schema = schema
        self._values = vals

    # -- construction -----------------------------------------------------

    @classmethod
    def of(
        cls,
        memory_mb: float = 0.0,
        cpu: float = 0.0,
        bandwidth_mbps: float = 0.0,
    ) -> "ResourceVector":
        """Build a vector in the standard Storm schema."""
        return cls(
            ResourceSchema.storm_default(), (memory_mb, cpu, bandwidth_mbps)
        )

    @classmethod
    def from_mapping(
        cls, schema: ResourceSchema, mapping: Mapping[str, float]
    ) -> "ResourceVector":
        return schema.vector(**dict(mapping))

    # -- accessors ----------------------------------------------------------

    @property
    def schema(self) -> ResourceSchema:
        return self._schema

    @property
    def values(self) -> Tuple[float, ...]:
        return self._values

    def __getitem__(self, name: str) -> float:
        return self._values[self._schema.index_of(name)]

    def get(self, name: str, default: float = 0.0) -> float:
        try:
            return self[name]
        except UnknownResourceError:
            return default

    @property
    def memory_mb(self) -> float:
        """Memory dimension in the standard schema (hard constraint)."""
        return self[MEMORY]

    @property
    def cpu(self) -> float:
        """CPU points in the standard schema (soft constraint)."""
        return self[CPU]

    @property
    def bandwidth_mbps(self) -> float:
        """Bandwidth in the standard schema (soft constraint)."""
        return self[BANDWIDTH]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self._schema.names, self._values))

    def __cache_token__(self):
        """Stable token for the experiment cache
        (:func:`repro.experiments.cache.stable_token`): the full schema
        (dimensions are frozen dataclasses) plus the value tuple."""
        return (self._schema.dimensions, self._values)

    # -- arithmetic ---------------------------------------------------------

    def _check_schema(self, other: "ResourceVector") -> None:
        if self._schema is not other._schema and self._schema != other._schema:
            raise SchemaMismatchError(
                f"cannot combine vectors from schemas {self._schema!r} "
                f"and {other._schema!r}"
            )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        self._check_schema(other)
        return ResourceVector(
            self._schema,
            tuple(a + b for a, b in zip(self._values, other._values)),
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        self._check_schema(other)
        return ResourceVector(
            self._schema,
            tuple(a - b for a, b in zip(self._values, other._values)),
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self._schema, tuple(v * float(factor) for v in self._values)
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return self * -1.0

    # -- comparisons ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return self._schema == other._schema and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def dominates(self, other: "ResourceVector") -> bool:
        """True if every dimension of ``self`` is >= the same dimension of
        ``other`` (elementwise Pareto dominance)."""
        self._check_schema(other)
        return all(a >= b for a, b in zip(self._values, other._values))

    def satisfies_hard(self, demand: "ResourceVector") -> bool:
        """True if this *availability* vector covers the *demand* vector on
        every hard dimension (the paper's ``H_theta > H_tau`` guard).

        Soft dimensions are intentionally ignored: they may be
        over-committed.
        """
        self._check_schema(demand)
        values = self._values
        demand_values = demand._values
        for idx in self._schema.hard_indices:
            if values[idx] < demand_values[idx]:
                return False
        return True

    def is_nonnegative(self) -> bool:
        return all(v >= 0.0 for v in self._values)

    def clamp_nonnegative(self) -> "ResourceVector":
        """A copy with negative components clipped to zero (useful when
        reporting availability of over-committed soft resources)."""
        return ResourceVector(
            self._schema, tuple(max(0.0, v) for v in self._values)
        )

    # -- distance helpers ----------------------------------------------------

    def gap(self, demand: "ResourceVector") -> "ResourceVector":
        """Availability minus demand, elementwise."""
        return self - demand

    def normalised_gap(
        self, demand: "ResourceVector", capacity: "ResourceVector"
    ) -> "ResourceVector":
        """``(self - demand) / capacity`` elementwise.

        Normalising by node capacity puts megabytes and CPU points on a
        comparable scale before the Euclidean distance is taken — the
        paper motivates its weight vector with exactly this normalisation
        concern.  Dimensions with zero capacity normalise to zero gap.
        """
        self._check_schema(demand)
        self._check_schema(capacity)
        out = []
        for avail, dem, cap in zip(
            self._values, demand._values, capacity._values
        ):
            out.append((avail - dem) / cap if cap > 0 else 0.0)
        return ResourceVector(self._schema, out)

    def l2_norm(self) -> float:
        return math.sqrt(sum(v * v for v in self._values))

    def total(self) -> float:
        """Sum of all components (a crude scalar "amount of resource",
        used to pick the rack/node with the most available resources)."""
        return sum(self._values)

    def normalised_total(self, capacity: "ResourceVector") -> float:
        """Sum of per-dimension availability fractions.

        Used by R-Storm's ref-node selection ("server rack with the most
        resources") where raw sums would be dominated by the memory
        dimension's large magnitude.
        """
        self._check_schema(capacity)
        score = 0.0
        for avail, cap in zip(self._values, capacity._values):
            if cap > 0:
                score += avail / cap
        return score

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value:g}"
            for name, value in zip(self._schema.names, self._values)
        )
        return f"ResourceVector({parts})"
