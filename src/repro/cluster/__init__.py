"""Cluster substrate: resources, nodes, racks, network topography.

This package models the physical environment R-Storm schedules onto — the
paper's two-rack Emulab testbed and generalisations of it.
"""

from repro.cluster.builders import (
    emulab_testbed,
    heterogeneous_cluster,
    single_rack_cluster,
    uniform_cluster,
)
from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel, LinkProfile, NetworkTopography
from repro.cluster.node import Node, WorkerSlot
from repro.cluster.rack import Rack
from repro.cluster.resources import (
    BANDWIDTH,
    CPU,
    MEMORY,
    ConstraintKind,
    ResourceDimension,
    ResourceSchema,
    ResourceVector,
)

__all__ = [
    "BANDWIDTH",
    "CPU",
    "MEMORY",
    "Cluster",
    "ConstraintKind",
    "DistanceLevel",
    "LinkProfile",
    "NetworkTopography",
    "Node",
    "Rack",
    "ResourceDimension",
    "ResourceSchema",
    "ResourceVector",
    "WorkerSlot",
    "emulab_testbed",
    "heterogeneous_cluster",
    "single_rack_cluster",
    "uniform_cluster",
]
