"""Server racks.

A rack groups nodes behind one top-of-rack switch.  R-Storm's node
selection starts by picking the rack with the most available resources
(Algorithm 4, lines 6-9), so racks expose aggregate capacity/availability
scores.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterStateError

__all__ = ["Rack"]


class Rack:
    """A named group of nodes sharing a top-of-rack switch."""

    __slots__ = ("rack_id", "_nodes")

    def __init__(self, rack_id: str, nodes: Optional[List[Node]] = None):
        self.rack_id = rack_id
        self._nodes: Dict[str, Node] = {}
        for node in nodes or []:
            self.add_node(node)

    def add_node(self, node: Node) -> None:
        if node.rack_id != self.rack_id:
            raise ClusterStateError(
                f"node {node.node_id!r} belongs to rack {node.rack_id!r}, "
                f"not {self.rack_id!r}"
            )
        if node.node_id in self._nodes:
            raise ClusterStateError(
                f"duplicate node {node.node_id!r} in rack {self.rack_id!r}"
            )
        self._nodes[node.node_id] = node

    def remove_node(self, node_id: str) -> Node:
        try:
            return self._nodes.pop(node_id)
        except KeyError:
            raise ClusterStateError(
                f"no node {node_id!r} in rack {self.rack_id!r}"
            ) from None

    # -- access -------------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def alive_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.alive]

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterStateError(
                f"no node {node_id!r} in rack {self.rack_id!r}"
            ) from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # -- aggregate scoring ---------------------------------------------------

    def availability_score(self) -> float:
        """Sum of per-node normalised availability; the rack R-Storm
        anchors a topology in is the one maximising this score."""
        return sum(n.availability_score() for n in self.alive_nodes)

    def total_available(self) -> Optional[ResourceVector]:
        """Elementwise sum of availability over alive nodes, or ``None``
        for an empty/dead rack."""
        alive = self.alive_nodes
        if not alive:
            return None
        total = alive[0].available
        for node in alive[1:]:
            total = total + node.available
        return total

    def __repr__(self) -> str:
        return f"Rack({self.rack_id!r}, nodes={sorted(self._nodes)})"
