"""Canned cluster builders.

The most important one, :func:`emulab_testbed`, reproduces the paper's
evaluation environment (Section 6.1): 12 worker machines split across two
racks/VLANs, each with a single 3 GHz core (100 CPU points), 2 GB of RAM
and a 100 Mbps NIC, with a 4 ms inter-rack round trip.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.network import (
    DEFAULT_PROFILES,
    DistanceLevel,
    LinkProfile,
    NetworkTopography,
)
from repro.cluster.node import Node
from repro.cluster.rack import Rack
from repro.cluster.resources import ResourceVector

__all__ = [
    "emulab_testbed",
    "uniform_cluster",
    "heterogeneous_cluster",
    "single_rack_cluster",
]

#: Per-node budgets from the paper's testbed: one 3 GHz core, 2 GB RAM,
#: 100 Mbps network interface.
EMULAB_NODE_MEMORY_MB = 2048.0
EMULAB_NODE_CPU = 100.0
EMULAB_NODE_BANDWIDTH_MBPS = 100.0


def _emulab_topography() -> NetworkTopography:
    profiles = dict(DEFAULT_PROFILES)
    profiles[DistanceLevel.INTER_RACK] = LinkProfile(
        distance=4.0, latency_ms=2.0, bandwidth_mbps=100.0
    )
    profiles[DistanceLevel.INTER_NODE] = LinkProfile(
        distance=1.0, latency_ms=0.5, bandwidth_mbps=100.0
    )
    return NetworkTopography(profiles)


def emulab_testbed(
    nodes_per_rack: int = 6,
    racks: int = 2,
    slots_per_node: int = 4,
    memory_mb: float = EMULAB_NODE_MEMORY_MB,
    cpu: float = EMULAB_NODE_CPU,
    bandwidth_mbps: float = EMULAB_NODE_BANDWIDTH_MBPS,
) -> Cluster:
    """The paper's Emulab cluster: ``racks`` VLANs of ``nodes_per_rack``
    homogeneous worker machines (default 2 x 6 = 12 workers).

    The Figure 13 multi-topology experiment uses the same builder with
    ``nodes_per_rack=12`` for its larger 24-machine cluster.
    """
    return uniform_cluster(
        nodes_per_rack=nodes_per_rack,
        racks=racks,
        slots_per_node=slots_per_node,
        capacity=ResourceVector.of(
            memory_mb=memory_mb, cpu=cpu, bandwidth_mbps=bandwidth_mbps
        ),
        topography=_emulab_topography(),
        name="emulab",
    )


def uniform_cluster(
    nodes_per_rack: int,
    racks: int,
    capacity: ResourceVector,
    slots_per_node: int = 4,
    topography: Optional[NetworkTopography] = None,
    name: str = "uniform",
) -> Cluster:
    """A homogeneous cluster of ``racks`` x ``nodes_per_rack`` nodes."""
    if nodes_per_rack < 1 or racks < 1:
        raise ValueError("cluster needs at least one rack with one node")
    rack_objs: List[Rack] = []
    for r in range(racks):
        rack_id = f"rack-{r}"
        nodes = [
            Node(
                node_id=f"node-{r}-{i}",
                rack_id=rack_id,
                capacity=capacity,
                num_slots=slots_per_node,
            )
            for i in range(nodes_per_rack)
        ]
        rack_objs.append(Rack(rack_id, nodes))
    return Cluster(rack_objs, topography or NetworkTopography(), name=name)


def single_rack_cluster(
    num_nodes: int,
    capacity: Optional[ResourceVector] = None,
    slots_per_node: int = 4,
    name: str = "single-rack",
) -> Cluster:
    """One rack of homogeneous nodes — the simplest useful cluster."""
    return uniform_cluster(
        nodes_per_rack=num_nodes,
        racks=1,
        capacity=capacity
        or ResourceVector.of(memory_mb=4096.0, cpu=400.0, bandwidth_mbps=1000.0),
        slots_per_node=slots_per_node,
        name=name,
    )


def heterogeneous_cluster(
    rack_specs: Sequence[Sequence[ResourceVector]],
    slots_per_node: int = 4,
    topography: Optional[NetworkTopography] = None,
    name: str = "heterogeneous",
) -> Cluster:
    """A cluster where every node's capacity is given explicitly.

    Args:
        rack_specs: one sequence of node capacity vectors per rack.
    """
    if not rack_specs:
        raise ValueError("need at least one rack spec")
    racks: List[Rack] = []
    for r, capacities in enumerate(rack_specs):
        rack_id = f"rack-{r}"
        nodes = [
            Node(
                node_id=f"node-{r}-{i}",
                rack_id=rack_id,
                capacity=cap,
                num_slots=slots_per_node,
            )
            for i, cap in enumerate(capacities)
        ]
        racks.append(Rack(rack_id, nodes))
    return Cluster(racks, topography or NetworkTopography(), name=name)
