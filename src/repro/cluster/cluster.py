"""The cluster model: racks + nodes + network topography.

This is the substrate both schedulers operate on.  It provides node/slot
discovery, distance queries, aggregate accounting, and failure injection.
The scheduling state itself (which executor is where) lives in
:mod:`repro.scheduler.global_state`; the cluster only tracks physical
resources.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.network import NetworkTopography
from repro.cluster.node import Node, WorkerSlot
from repro.cluster.rack import Rack
from repro.errors import ClusterStateError

__all__ = ["Cluster"]


class Cluster:
    """Racks of nodes connected by a :class:`NetworkTopography`."""

    def __init__(
        self,
        racks: Optional[List[Rack]] = None,
        topography: Optional[NetworkTopography] = None,
        name: str = "cluster",
    ):
        self.name = name
        self.topography = topography or NetworkTopography()
        self._racks: Dict[str, Rack] = {}
        self._nodes: Dict[str, Node] = {}
        #: (node_a, node_b) -> abstract distance; the matrix is immutable
        #: between membership changes, and the schedulers query the same
        #: pairs thousands of times per round.
        self._distance_cache: Dict[Tuple[str, str], float] = {}
        for rack in racks or []:
            self.add_rack(rack)

    # -- mutation --------------------------------------------------------

    def add_rack(self, rack: Rack) -> None:
        if rack.rack_id in self._racks:
            raise ClusterStateError(f"duplicate rack {rack.rack_id!r}")
        for node in rack:
            if node.node_id in self._nodes:
                raise ClusterStateError(
                    f"duplicate node {node.node_id!r} across racks"
                )
        self._racks[rack.rack_id] = rack
        for node in rack:
            self._nodes[node.node_id] = node
        self._distance_cache.clear()

    def add_node(self, node: Node) -> None:
        """Add a node, creating its rack on demand (supervisor join)."""
        if node.node_id in self._nodes:
            raise ClusterStateError(f"duplicate node {node.node_id!r}")
        rack = self._racks.get(node.rack_id)
        if rack is None:
            rack = Rack(node.rack_id)
            self._racks[node.rack_id] = rack
        rack.add_node(node)
        self._nodes[node.node_id] = node
        self._distance_cache.clear()

    def remove_node(self, node_id: str) -> Node:
        node = self.node(node_id)
        self._racks[node.rack_id].remove_node(node_id)
        del self._nodes[node_id]
        self._distance_cache.clear()
        return node

    # -- access ------------------------------------------------------------

    @property
    def racks(self) -> List[Rack]:
        return list(self._racks.values())

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def alive_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.alive]

    def rack(self, rack_id: str) -> Rack:
        try:
            return self._racks[rack_id]
        except KeyError:
            raise ClusterStateError(f"no rack {rack_id!r}") from None

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterStateError(f"no node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # -- slots -------------------------------------------------------------

    def all_slots(self) -> List[WorkerSlot]:
        """Every worker slot on every alive node, in a deterministic
        (node, port) order — the order Storm's even scheduler round-robins
        over."""
        slots: List[WorkerSlot] = []
        for node in sorted(self.alive_nodes, key=lambda n: n.node_id):
            slots.extend(node.slots)
        return slots

    def slot_node(self, slot: WorkerSlot) -> Node:
        return self.node(slot.node_id)

    # -- distance ------------------------------------------------------------

    def node_distance(self, node_a: str, node_b: str) -> float:
        """Abstract network distance between two nodes (R-Storm's
        ``networkDistance`` term).  Memoised: the matrix only changes
        when cluster membership does."""
        key = (node_a, node_b)
        cached = self._distance_cache.get(key)
        if cached is None:
            a, b = self.node(node_a), self.node(node_b)
            cached = self.topography.node_distance(
                a.rack_id, a.node_id, b.rack_id, b.node_id
            )
            self._distance_cache[key] = cached
        return cached

    def slot_distance_level(self, slot_a: WorkerSlot, slot_b: WorkerSlot):
        """Locality level between two worker slots (used by the simulator
        for transfer-cost classification)."""
        a, b = self.node(slot_a.node_id), self.node(slot_b.node_id)
        return self.topography.level_between(
            a.rack_id, a.node_id, slot_a, b.rack_id, b.node_id, slot_b
        )

    # -- aggregates ------------------------------------------------------------

    def total_capacity(self):
        nodes = self.nodes
        if not nodes:
            return None
        total = nodes[0].capacity
        for node in nodes[1:]:
            total = total + node.capacity
        return total

    def total_available(self):
        nodes = self.alive_nodes
        if not nodes:
            return None
        total = nodes[0].available
        for node in nodes[1:]:
            total = total + node.available
        return total

    def release_all(self) -> None:
        """Clear every reservation on every node (fresh scheduling round)."""
        for node in self._nodes.values():
            node.release_all()

    # -- failure injection ----------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        self.node(node_id).fail()

    def recover_node(self, node_id: str) -> None:
        self.node(node_id).recover()

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, racks={len(self._racks)}, "
            f"nodes={len(self._nodes)})"
        )
