"""Network distance and latency model.

R-Storm's central insight (Section 4) is a strict ordering of
communication costs in a data-centre deployment:

1. inter-rack communication is the slowest,
2. inter-node (same rack) communication is slow,
3. inter-process (same node) communication is faster,
4. intra-process communication is the fastest.

:class:`NetworkTopography` turns that ordering into numbers: an abstract
*network distance* used by the scheduler's distance function, and a
latency/bandwidth pair per level used by the discrete-event simulator to
model tuple transfer times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["DistanceLevel", "LinkProfile", "NetworkTopography"]


class DistanceLevel(enum.IntEnum):
    """Communication locality between two executors, ordered fastest to
    slowest.  The integer values give a total order; the *numeric*
    distance the scheduler minimises comes from the topography."""

    INTRA_PROCESS = 0
    INTER_PROCESS = 1
    INTER_NODE = 2
    INTER_RACK = 3


@dataclass(frozen=True)
class LinkProfile:
    """Physical characteristics of one locality level.

    Attributes:
        distance: Abstract network distance fed into R-Storm's node
            selection (dimensionless; larger = further).
        latency_ms: One-way latency for a message at this level.
        bandwidth_mbps: Effective bandwidth of the constraining link at
            this level; ``None`` means "not network limited" (in-memory
            hand-off between threads or processes on one host).
    """

    distance: float
    latency_ms: float
    bandwidth_mbps: Optional[float] = None


#: Default profiles modelled on the paper's Emulab testbed: 100 Mbps NICs,
#: a 4 ms inter-rack round trip (2 ms one way), sub-millisecond in-rack
#: latency, and effectively free intra-host communication.
DEFAULT_PROFILES: Dict[DistanceLevel, LinkProfile] = {
    DistanceLevel.INTRA_PROCESS: LinkProfile(
        distance=0.0, latency_ms=0.0, bandwidth_mbps=None
    ),
    DistanceLevel.INTER_PROCESS: LinkProfile(
        distance=0.25, latency_ms=0.05, bandwidth_mbps=None
    ),
    DistanceLevel.INTER_NODE: LinkProfile(
        distance=1.0, latency_ms=0.5, bandwidth_mbps=100.0
    ),
    DistanceLevel.INTER_RACK: LinkProfile(
        distance=4.0, latency_ms=2.0, bandwidth_mbps=100.0
    ),
}


@dataclass
class NetworkTopography:
    """Maps locality levels to distances, latencies and bandwidths.

    The scheduler only consumes :meth:`distance` /
    :meth:`distance_between_nodes`; the simulator also consumes
    :meth:`latency_ms` and :meth:`bandwidth_mbps`.
    """

    profiles: Dict[DistanceLevel, LinkProfile] = field(
        default_factory=lambda: dict(DEFAULT_PROFILES)
    )

    def __post_init__(self) -> None:
        missing = [lvl for lvl in DistanceLevel if lvl not in self.profiles]
        if missing:
            raise ValueError(f"topography missing profiles for {missing}")
        distances = [self.profiles[lvl].distance for lvl in DistanceLevel]
        if any(b < a for a, b in zip(distances, distances[1:])):
            raise ValueError(
                "network distances must be non-decreasing from intra-process "
                f"to inter-rack, got {distances}"
            )

    @classmethod
    def from_distances(
        cls, distances: Mapping[DistanceLevel, float]
    ) -> "NetworkTopography":
        """Build a topography overriding only the abstract distances,
        keeping default latency/bandwidth figures."""
        profiles = {}
        for level, default in DEFAULT_PROFILES.items():
            profiles[level] = LinkProfile(
                distance=float(distances.get(level, default.distance)),
                latency_ms=default.latency_ms,
                bandwidth_mbps=default.bandwidth_mbps,
            )
        return cls(profiles)

    # -- level classification ---------------------------------------------

    @staticmethod
    def level_between(
        rack_a: str,
        node_a: str,
        slot_a: object,
        rack_b: str,
        node_b: str,
        slot_b: object,
    ) -> DistanceLevel:
        """Classify the locality between two (rack, node, worker-slot)
        placements."""
        if rack_a != rack_b:
            return DistanceLevel.INTER_RACK
        if node_a != node_b:
            return DistanceLevel.INTER_NODE
        if slot_a != slot_b:
            return DistanceLevel.INTER_PROCESS
        return DistanceLevel.INTRA_PROCESS

    # -- lookups -------------------------------------------------------------

    def profile(self, level: DistanceLevel) -> LinkProfile:
        return self.profiles[level]

    def distance(self, level: DistanceLevel) -> float:
        return self.profiles[level].distance

    def latency_ms(self, level: DistanceLevel) -> float:
        return self.profiles[level].latency_ms

    def bandwidth_mbps(self, level: DistanceLevel) -> Optional[float]:
        return self.profiles[level].bandwidth_mbps

    def node_distance(self, rack_a: str, node_a: str, rack_b: str, node_b: str) -> float:
        """Abstract distance between two *nodes* (worker-process locality
        is unknown at node-selection time, so same-node scores as
        intra-process — the best case, which is what the scheduler
        optimistically assumes when packing)."""
        if rack_a != rack_b:
            return self.distance(DistanceLevel.INTER_RACK)
        if node_a != node_b:
            return self.distance(DistanceLevel.INTER_NODE)
        return self.distance(DistanceLevel.INTRA_PROCESS)

    def max_distance(self) -> float:
        return self.distance(DistanceLevel.INTER_RACK)
