"""Worker nodes and worker slots.

A node models one supervisor machine: a resource *capacity* (set from the
``supervisor.memory.capacity.mb`` / ``supervisor.cpu.capacity`` style
configuration of the paper's Section 5.2), a mutable *availability* that
scheduling reservations draw down, and a fixed set of worker slots
(supervisor ports) that worker processes bind to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.resources import ResourceSchema, ResourceVector
from repro.errors import ClusterStateError, InsufficientResourcesError

__all__ = ["WorkerSlot", "Node", "DEFAULT_SLOT_BASE_PORT"]

#: Storm's conventional first supervisor port.
DEFAULT_SLOT_BASE_PORT = 6700


@dataclass(frozen=True, order=True)
class WorkerSlot:
    """One worker-process slot: the (node, port) pair Storm schedules
    executors onto."""

    node_id: str
    port: int

    def __str__(self) -> str:
        return f"{self.node_id}:{self.port}"


class Node:
    """A supervisor machine with resource accounting.

    Reservation semantics follow the paper's constraint classes:

    * hard dimensions (memory) can never go below zero — attempting to do
      so raises :class:`~repro.errors.InsufficientResourcesError`;
    * soft dimensions (CPU, bandwidth) may go negative, which models
      over-utilisation with graceful degradation.
    """

    __slots__ = ("node_id", "rack_id", "_capacity", "_available", "_slots",
                 "_reservations", "alive")

    def __init__(
        self,
        node_id: str,
        rack_id: str,
        capacity: ResourceVector,
        num_slots: int = 4,
        base_port: int = DEFAULT_SLOT_BASE_PORT,
    ):
        if num_slots < 1:
            raise ValueError(f"node {node_id!r} needs at least one slot")
        self.node_id = node_id
        self.rack_id = rack_id
        self._capacity = capacity
        self._available = capacity
        self._slots: Tuple[WorkerSlot, ...] = tuple(
            WorkerSlot(node_id, base_port + i) for i in range(num_slots)
        )
        #: reservation label -> demand vector, for release/audit.
        self._reservations: Dict[str, ResourceVector] = {}
        self.alive = True

    # -- introspection ----------------------------------------------------

    @property
    def schema(self) -> ResourceSchema:
        return self._capacity.schema

    @property
    def capacity(self) -> ResourceVector:
        return self._capacity

    @property
    def available(self) -> ResourceVector:
        return self._available

    @property
    def used(self) -> ResourceVector:
        return self._capacity - self._available

    @property
    def slots(self) -> Tuple[WorkerSlot, ...]:
        return self._slots

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    @property
    def reservations(self) -> Dict[str, ResourceVector]:
        return dict(self._reservations)

    def has_reservation(self, label: str) -> bool:
        """Membership test without the defensive copy that the
        :attr:`reservations` property takes (the scheduling hot path
        checks this once per placed task per round)."""
        return label in self._reservations

    def slot(self, port: int) -> WorkerSlot:
        for s in self._slots:
            if s.port == port:
                return s
        raise ClusterStateError(f"node {self.node_id!r} has no slot on port {port}")

    # -- admission / accounting ------------------------------------------

    def can_host(self, demand: ResourceVector) -> bool:
        """True if scheduling ``demand`` here violates no hard constraint.

        Soft dimensions are deliberately not checked: R-Storm permits
        over-committing them (Section 3)."""
        return self.alive and self._available.satisfies_hard(demand)

    def reserve(self, label: str, demand: ResourceVector) -> None:
        """Draw ``demand`` down from availability under ``label``.

        Raises:
            InsufficientResourcesError: if a hard dimension would go
                negative, or the node is dead.
            ClusterStateError: if ``label`` is already reserved.
        """
        if not self.alive:
            raise InsufficientResourcesError(
                f"node {self.node_id!r} is not alive", node_id=self.node_id
            )
        if label in self._reservations:
            raise ClusterStateError(
                f"label {label!r} already reserved on node {self.node_id!r}"
            )
        if not self._available.satisfies_hard(demand):
            for dim in self.schema.hard_names:
                if self._available[dim] < demand[dim]:
                    raise InsufficientResourcesError(
                        f"node {self.node_id!r}: hard constraint {dim!r} "
                        f"violated (available {self._available[dim]:g}, "
                        f"requested {demand[dim]:g})",
                        node_id=self.node_id,
                        resource=dim,
                    )
        self._available = self._available - demand
        self._reservations[label] = demand

    def release(self, label: str) -> ResourceVector:
        """Return the resources reserved under ``label`` to the pool."""
        try:
            demand = self._reservations.pop(label)
        except KeyError:
            raise ClusterStateError(
                f"no reservation {label!r} on node {self.node_id!r}"
            ) from None
        self._available = self._available + demand
        return demand

    def release_all(self) -> None:
        for label in list(self._reservations):
            self.release(label)

    def fail(self) -> None:
        """Mark the node dead (failure injection); reservations remain on
        the books until the coordination layer reconciles them."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # -- scoring helpers ---------------------------------------------------

    def availability_score(self) -> float:
        """Scalar "how much room is left", normalised per dimension so
        memory megabytes do not drown CPU points.  Used by R-Storm's
        ref-node selection (node with the most resources)."""
        return self._available.normalised_total(self._capacity)

    def utilisation(self, dimension: str) -> float:
        """Fraction of ``dimension`` capacity in use (may exceed 1.0 for
        over-committed soft dimensions)."""
        cap = self._capacity[dimension]
        if cap <= 0:
            return 0.0
        return (self._capacity[dimension] - self._available[dimension]) / cap

    def __repr__(self) -> str:
        return (
            f"Node({self.node_id!r}, rack={self.rack_id!r}, "
            f"available={self._available!r}, slots={len(self._slots)}, "
            f"alive={self.alive})"
        )
