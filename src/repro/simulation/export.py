"""Exporting simulation results.

Writers for the artefacts people want out of a run: the per-window
throughput series (the paper's figures are exactly these series) as CSV,
a JSON-able summary dictionary for dashboards or regression tracking,
and lossless binary round-trips of whole run outcomes — the format the
experiment result cache and the process-pool harness move results
through (:mod:`repro.experiments.cache` /
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import csv
import io
import json
import pickle
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.report import SimulationReport

__all__ = [
    "throughput_series_csv",
    "write_throughput_series_csv",
    "report_as_dict",
    "write_report_json",
    "outcome_as_dict",
    "dumps_outcome",
    "loads_outcome",
    "dump_outcome",
    "load_outcome",
]


def throughput_series_csv(
    report: SimulationReport, topology_ids: Optional[Sequence[str]] = None
) -> str:
    """The per-window throughput of each topology as CSV text.

    Columns: ``window_start_s`` then one column per topology.
    """
    ids = list(topology_ids) if topology_ids is not None else list(
        report.topology_ids
    )
    series = {tid: dict(report.throughput_series(tid)) for tid in ids}
    starts = sorted({start for s in series.values() for start in s})
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["window_start_s"] + ids)
    for start in starts:
        writer.writerow(
            [f"{start:g}"] + [series[tid].get(start, 0) for tid in ids]
        )
    return buffer.getvalue()


def write_throughput_series_csv(
    report: SimulationReport,
    path: str,
    topology_ids: Optional[Sequence[str]] = None,
) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(throughput_series_csv(report, topology_ids))


def report_as_dict(report: SimulationReport) -> Dict:
    """A JSON-serialisable snapshot of the run's headline metrics."""
    out: Dict = {
        "duration_s": report.duration_s,
        "window_s": report.config.window_s,
        "warmup_s": report.config.warmup_s,
        "events_processed": report.events_processed,
        "topologies": {},
        "nodes": {},
    }
    for topo_id in report.topology_ids:
        latency = report.ack_latency(topo_id)
        out["topologies"][topo_id] = {
            "avg_tuples_per_window": report.average_throughput_per_window(
                topo_id
            ),
            "avg_tuples_per_s": report.average_throughput_tps(topo_id),
            "emitted": report.emitted(topo_id),
            "sunk": report.sunk(topo_id),
            "failed": report.failed(topo_id),
            "worker_crashes": report.crashes(topo_id),
            "nodes_used": list(report.nodes_used.get(topo_id, ())),
            "ack_latency_ms": {
                "count": latency.count,
                "mean": latency.mean * 1e3,
                "p50": latency.p50 * 1e3,
                "p99": latency.p99 * 1e3,
            },
            "throughput_series": report.throughput_series(topo_id),
        }
    used = sorted({n for nodes in report.nodes_used.values() for n in nodes})
    for node_id in used:
        out["nodes"][node_id] = {
            "cpu_utilisation": report.cpu_utilisation(node_id),
            "nic_bytes": report.stats.nic_bytes(node_id),
        }
    return out


def write_report_json(report: SimulationReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report_as_dict(report), handle, indent=2, sort_keys=True)


# -- whole-outcome round-trips ------------------------------------------------
#
# A SingleRunOutcome (report + assignments + qualities + latency) must
# survive two journeys losslessly: process boundaries (ProcessPoolExecutor
# workers return them) and disk (the content-addressed result cache).
# Everything in an outcome is plain data — frozen dataclasses, dicts of
# counters, immutable Assignment value objects — so pickle round-trips it
# bit-for-bit; the determinism regression tests assert exactly that.


def outcome_as_dict(outcome: Any) -> Dict:
    """A JSON-serialisable snapshot of one run outcome.

    Complements :func:`report_as_dict` with the scheduling-side results:
    the task placements and the placement-quality metrics, keyed per
    topology.  Intended for dashboards and diffing; use the pickle
    round-trip helpers below when the object itself must come back.
    """
    out: Dict = {
        "scheduler": outcome.scheduler,
        "scheduling_latency_s": outcome.scheduling_latency_s,
        "report": report_as_dict(outcome.report),
        "assignments": {},
        "qualities": {},
    }
    for topo_id, assignment in outcome.assignments.items():
        out["assignments"][topo_id] = {
            str(task): str(slot) for task, slot in assignment.as_dict().items()
        }
    for topo_id, quality in outcome.qualities.items():
        out["qualities"][topo_id] = {
            "nodes_used": quality.nodes_used,
            "slots_used": quality.slots_used,
            "task_pairs": quality.task_pairs,
            "mean_network_distance": quality.mean_network_distance,
            "hard_violations": quality.hard_violations,
            "max_cpu_overcommit": quality.max_cpu_overcommit,
            "pairs_by_level": {
                level.name: count
                for level, count in quality.pairs_by_level.items()
            },
        }
    return out


def dumps_outcome(outcome: Any) -> bytes:
    """Serialise an outcome to bytes (stable pickle protocol)."""
    # A pinned protocol keeps cache entries readable across the 3.10–3.12
    # interpreters CI runs, instead of whatever HIGHEST_PROTOCOL means on
    # the newest one.
    return pickle.dumps(outcome, protocol=4)


def loads_outcome(blob: bytes) -> Any:
    return pickle.loads(blob)


def dump_outcome(outcome: Any, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(dumps_outcome(outcome))


def load_outcome(path: str) -> Any:
    with open(path, "rb") as handle:
        return loads_outcome(handle.read())
