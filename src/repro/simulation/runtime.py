"""The simulated Storm runtime.

Executes one or more scheduled topologies on a cluster in simulated time,
reproducing the execution model the paper's evaluation measures:

* **Spouts** emit tuple batches as fast as their CPU, the acker credit
  (``max_spout_pending``) and any configured rate cap allow — or, when
  the config carries an ``arrival_process``, exactly the batches an
  *open-loop* traffic source offers, independent of system state (see
  :mod:`repro.traffic.arrivals`).
* **Routing** follows each stream's grouping; every downstream component
  subscribed to a stream receives a copy of it.
* **Transfers** pay locality-dependent latency and serialise through NICs
  and the inter-rack uplink (:class:`~repro.simulation.network.TransferModel`).
* **Bolts** are single-threaded tasks competing for their node's cores;
  an over-committed node's tasks wait for cores, and a node whose
  resident memory exceeds physical capacity thrashes (service times are
  multiplied by ``thrash_factor``) — the failure mode that flattens the
  default-scheduled Processing topology in Figure 13.
* **Acking** tracks every batch tree; completion returns spout credit,
  timeouts (tuple failure) return it late.

The runtime supports node failure injection and task migration so the
Nimbus coordination loop can reschedule mid-run.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel
from repro.cluster.node import Node, WorkerSlot
from repro.errors import SchedulingError, SimulationError
from repro.scheduler.assignment import Assignment
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.flowcontrol import (
    CreditLedger,
    ShedLedger,
    ShedRecord,
    make_policy,
)
from repro.simulation.metrics import StatisticServer
from repro.simulation.network import TransferModel
from repro.simulation.report import SimulationReport
from repro.topology.component import Component
from repro.topology.grouping import LocalOrShuffleGrouping
from repro.topology.task import Task
from repro.topology.topology import Topology
from repro.traffic.arrivals import derive_stream_seed

__all__ = ["SimulationRun"]

#: Floor on any service time, preventing zero-cost loops from freezing
#: simulated time.
_MIN_SERVICE_S = 1e-6

_EMIT = 0
_PROCESS = 1
_REPLAY = 2

#: Sentinel root id for *ghost* batches — wire-duplicated copies that are
#: processed (CPU, routing, sink counts) but deliberately invisible to
#: the acker, so duplicates can never corrupt a tree's delivery count.
_GHOST_ROOT = -1

#: Hot-path aliases (module-global loads beat enum attribute lookups).
_INTRA_PROCESS = DistanceLevel.INTRA_PROCESS
_INTER_NODE = DistanceLevel.INTER_NODE

#: CPU points that equal one core (the paper: "CPU availability of a node
#: is set to 100 * #cores").
_POINTS_PER_CORE = 100.0


def _assign_keys(stream, keys: Iterator[int]):
    """Fill in routing keys a base arrival process left as ``None``
    (trace replays carry their own recorded keys, which win)."""
    for time_s, tuples, key in stream:
        yield (time_s, tuples, next(keys) if key is None else key)


class _NodeRuntime:
    """Per-node execution state: cores, run queue, slowdown factors."""

    __slots__ = ("node", "node_id", "cores", "active", "ready", "slowdown",
                 "overhead", "fault_factor", "tasks")

    def __init__(self, node: Node):
        self.node = node
        self.node_id = node.node_id
        self.cores = max(1, int(round(node.capacity.cpu / _POINTS_PER_CORE)))
        self.active = 0
        self.ready: Deque["_TaskRuntime"] = deque()
        self.slowdown = 1.0
        self.overhead = 1.0
        #: service-time multiplier from injected CPU degradation faults
        #: (1.0 = healthy); orthogonal to the thrash/overcommit factors,
        #: which are recomputed from placements.
        self.fault_factor = 1.0
        self.tasks: List["_TaskRuntime"] = []

    @property
    def alive(self) -> bool:
        return self.node.alive


class _OutRoute:
    """A producer task's route to one downstream component.

    ``levels``/``remote``/``local_indices`` are derived from placements
    and cached until ``levels_version`` falls behind the run's placement
    version — the distance matrix is immutable between migrations.
    """

    __slots__ = ("consumer_component", "grouping", "consumers", "levels",
                 "remote", "local_indices", "levels_version",
                 "is_local_or_shuffle")

    def __init__(self, consumer_component, grouping, consumers):
        self.consumer_component = consumer_component
        self.grouping = grouping
        self.consumers: List["_TaskRuntime"] = consumers
        self.levels: Optional[List[DistanceLevel]] = None
        #: parallel to ``levels``: does delivery i leave the node (NIC)?
        self.remote: Optional[List[bool]] = None
        #: cached local-consumer indices for local-or-shuffle groupings.
        self.local_indices: Optional[List[int]] = None
        self.levels_version = -1
        self.is_local_or_shuffle = isinstance(grouping, LocalOrShuffleGrouping)


class _TaskRuntime:
    """Runtime state of one task."""

    __slots__ = (
        "task", "component", "profile", "topo", "slot", "node", "work",
        "running", "queued", "alive", "out_routes", "inflight",
        "emit_blocked", "emit_timer_set", "next_emit_time", "is_spout",
        "fc_paused",
    )

    def __init__(self, task: Task, component: Component,
                 topo: "_TopologyRuntime", slot: WorkerSlot,
                 node: _NodeRuntime):
        self.task = task
        self.component = component
        self.profile = component.profile
        self.topo = topo
        self.slot = slot
        self.node = node
        self.work: Deque[Tuple[int, object]] = deque()
        self.running = False
        self.queued = False
        self.alive = True
        self.out_routes: List[_OutRoute] = []
        self.inflight = 0
        self.emit_blocked = False
        self.emit_timer_set = False
        self.next_emit_time = 0.0
        self.is_spout = component.is_spout
        #: flow control: True while any of this task's component's
        #: out-edges is over its high watermark — a paused bolt stops
        #: draining its queue, a paused spout stops emitting.  Always
        #: False when flow control is off.
        self.fc_paused = False

    @property
    def node_id(self) -> str:
        return self.slot.node_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_TaskRuntime({self.task})"


class _PendingTree:
    """Acker state of one in-flight tuple tree.

    Named fields (instead of the old positional list) so the replay path
    cannot mis-index; ``__slots__`` keeps the per-root allocation as
    cheap as the list it replaces.
    """

    __slots__ = ("remaining", "spout", "emitted_at", "tuples", "attempt",
                 "origin_root", "arrived_at")

    def __init__(self, remaining: int, spout: "_TaskRuntime",
                 emitted_at: float, tuples: int, attempt: int,
                 origin_root: int,
                 arrived_at: Optional[float] = None) -> None:
        #: outstanding deliveries; the tree acks when this reaches zero.
        self.remaining = remaining
        self.spout = spout
        self.emitted_at = emitted_at
        self.tuples = tuples
        #: 0 for an original emission, n for the n-th replay.
        self.attempt = attempt
        #: root id of the original emission this tree descends from
        #: (== the tree's own root id for originals) — the causal link
        #: the Tracer surfaces for replays.
        self.origin_root = origin_root
        #: open-loop only: when the batch *arrived* (which can predate
        #: ``emitted_at`` by however long the spout's queue held it) —
        #: the anchor for end-to-end latency.  ``None`` in closed loop.
        self.arrived_at = arrived_at


class _TopologyRuntime:
    """Per-topology acker state."""

    __slots__ = ("topology", "assignment", "pending", "next_root", "spouts",
                 "origins_created", "origins_exhausted",
                 "replays_outstanding", "origins_shed", "flow")

    def __init__(self, topology: Topology, assignment: Assignment):
        self.topology = topology
        self.assignment = assignment
        #: root id -> in-flight tree, insertion-ordered by emit time.
        self.pending: Dict[int, _PendingTree] = {}
        self.next_root = itertools.count()
        self.spouts: List[_TaskRuntime] = []
        # -- at-least-once audit counters (only maintained when the
        # -- delivery layer is on; see SimulationRun.delivery_audit).
        #: root tuples whose trees entered the acker
        self.origins_created = 0
        #: root tuples explicitly given up on (retries spent, or their
        #: replay state died with a spout/worker)
        self.origins_exhausted = 0
        #: replays scheduled or queued but not yet re-emitted
        self.replays_outstanding = 0
        #: root tuples deliberately dropped by the shedding policy
        #: (ingress or queue stage) — audited, never silent
        self.origins_shed = 0
        #: per-topology flow-control state; None unless config.flow is set
        self.flow: Optional["_FlowState"] = None

    @property
    def topology_id(self) -> str:
        return self.topology.topology_id


class _FlowState:
    """Per-topology flow-control state (built only when flow is on).

    Credit ledgers live at *component* granularity: one ledger per
    (producer component -> consumer component) edge, with a pool sized
    to ``queue_capacity`` times the consumer's task count.  Stall state
    is likewise per component — a producer stalls when *any* of its out
    edges is saturated and resumes only when none are.
    """

    __slots__ = ("edges", "tasks_of", "stalled_edges", "spout_stalled_since")

    def __init__(self) -> None:
        #: (producer component, consumer component) -> edge ledger
        self.edges: Dict[Tuple[str, str], CreditLedger] = {}
        #: component name -> its live task runtimes
        self.tasks_of: Dict[str, List[_TaskRuntime]] = {}
        #: producer component -> number of its out edges currently stalled
        self.stalled_edges: Dict[str, int] = {}
        #: spout component -> sim time its current stall began (for the
        #: throttled-spout-time metric)
        self.spout_stalled_since: Dict[str, float] = {}


class SimulationRun:
    """One simulated execution of scheduled topologies on a cluster.

    Args:
        cluster: The physical cluster (its topography supplies transfer
            costs; node liveness is honoured and may change mid-run via
            :meth:`fail_node_at`).
        placements: ``(topology, assignment)`` pairs.  Every assignment
            must be complete.
        config: Simulation knobs.
        interrack_uplink_mbps: Optional override of the shared cross-rack
            link capacity (see :class:`TransferModel`).
    """

    def __init__(
        self,
        cluster: Cluster,
        placements: Sequence[Tuple[Topology, Assignment]],
        config: Optional[SimulationConfig] = None,
        interrack_uplink_mbps: Optional[float] = None,
    ):
        self.cluster = cluster
        self.config = config or SimulationConfig()
        self.sim = Simulator()
        self.stats = StatisticServer(self.config.window_s)
        self.transfer = TransferModel(cluster, interrack_uplink_mbps)
        self._placement_version = 0
        # Hot-path copies of immutable config knobs (attribute access on
        # a plain float beats dataclass field lookup per event).
        self._max_pending = self.config.max_spout_pending
        self._overflow = self.config.queue_overflow_batches
        self._serde_ms = self.config.serde_ms_per_tuple
        self._at_least_once = self.config.at_least_once
        self._max_retries = self.config.max_retries
        self._replay_backoff = self.config.replay_backoff_s
        self._arrival = self.config.arrival_process
        self._open_loop = self._arrival is not None
        # Flow control (None on the default path: every hot-path hook is
        # guarded on ``self._fc is None`` so disabled runs stay
        # byte-identical).
        self._fc = self.config.flow
        if self._fc is not None:
            self._fc_policy = make_policy(self._fc)
            self._fc_shed = (
                self._fc_policy if self._fc_policy.name != "none" else None
            )
            self._fc_ledger: Optional[ShedLedger] = ShedLedger(
                self._fc.shed_ledger_capacity
            )
        else:
            self._fc_policy = None
            self._fc_shed = None
            self._fc_ledger = None
        #: origin audit counters are maintained whenever either layer
        #: that resolves origins explicitly (at-least-once replay, flow
        #: shedding) is on — equal to ``_at_least_once`` when flow is off.
        self._track_origins = self._at_least_once or self._fc is not None
        if self._open_loop:
            # Open-loop spouts emit only what arrives; every closed-loop
            # credit/rate trigger (acks, sweeps, revivals) is a no-op.
            self._try_emit = self._no_emit  # type: ignore[method-assign]
        #: open-loop only: every arrival as (source, time, tuples, key),
        #: frozen on demand into an ArrivalTrace (see arrival_trace()).
        self._arrival_log: List[Tuple[Tuple[str, str, int], float, int,
                                      Optional[int]]] = []
        self._nodes: Dict[str, _NodeRuntime] = {
            node.node_id: _NodeRuntime(node) for node in cluster.nodes
        }
        self._topologies: List[_TopologyRuntime] = []
        self._task_runtimes: Dict[Task, _TaskRuntime] = {}
        for topology, assignment in placements:
            self._add_topology(topology, assignment)
        self._recompute_node_factors()
        self._started = False

    # -- construction ------------------------------------------------------

    def _add_topology(self, topology: Topology, assignment: Assignment) -> None:
        if not assignment.is_complete(topology):
            raise SchedulingError(
                f"assignment for {topology.topology_id!r} is incomplete: "
                f"missing {assignment.missing_tasks(topology)}"
            )
        topo_rt = _TopologyRuntime(topology, assignment)
        runtimes: Dict[Task, _TaskRuntime] = {}
        for task in topology.tasks:
            slot = assignment.slot_of(task)
            node_rt = self._nodes.get(slot.node_id)
            if node_rt is None:
                raise SimulationError(
                    f"assignment places {task} on unknown node {slot.node_id!r}"
                )
            rt = _TaskRuntime(
                task, topology.component(task.component), topo_rt, slot, node_rt
            )
            rt.alive = node_rt.alive
            node_rt.tasks.append(rt)
            runtimes[task] = rt
            self._task_runtimes[task] = rt
            if rt.is_spout:
                topo_rt.spouts.append(rt)
        # Wire producer -> consumer routes.  Each downstream component
        # subscribed to a producer's stream receives a copy of it; the
        # producer holds a fresh grouping instance per route so routing
        # state is per-producer, as in Storm.
        for task in topology.tasks:
            producer = runtimes[task]
            for consumer_name in topology.downstream_of(task.component):
                consumer_comp = topology.component(consumer_name)
                subscription = next(
                    sub
                    for sub in consumer_comp.subscriptions
                    if sub.source == task.component
                )
                consumers = [
                    runtimes[t] for t in topology.tasks_of(consumer_name)
                ]
                producer.out_routes.append(
                    _OutRoute(
                        consumer_name,
                        subscription.grouping.fresh(),
                        consumers,
                    )
                )
        if self._fc is not None:
            self._init_flow(topo_rt)
        self._topologies.append(topo_rt)

    def _init_flow(self, topo_rt: _TopologyRuntime) -> None:
        """(Re)build a topology's credit ledgers from its live generation.

        Called at construction and again after a :meth:`rescale` (pool
        sizes follow consumer parallelism).  On rebuild, per-edge
        outstanding/send/drain counts carry over so credits held by
        batches already queued or in flight stay conserved; stall state
        is then re-derived against the new thresholds and every task's
        ``fc_paused`` flag refreshed.
        """
        flow = self._fc
        topology = topo_rt.topology
        old = topo_rt.flow
        fc = _FlowState()
        names = sorted({t.component for t in topology.tasks})
        for name in names:
            fc.tasks_of[name] = [
                self._task_runtimes[t] for t in topology.tasks_of(name)
            ]
        for name in names:
            for consumer_name in topology.downstream_of(name):
                pool = flow.queue_capacity * len(
                    topology.tasks_of(consumer_name)
                )
                ledger = CreditLedger(
                    pool, flow.high_watermark, flow.low_watermark
                )
                if old is not None:
                    prev = old.edges.get((name, consumer_name))
                    if prev is not None:
                        ledger.outstanding = prev.outstanding
                        ledger.sends = prev.sends
                        ledger.drains = prev.drains
                        ledger.stall_count = prev.stall_count
                        ledger.stalled = (
                            ledger.outstanding >= ledger._stall_at
                        )
                fc.edges[(name, consumer_name)] = ledger
        for (producer_name, _), ledger in fc.edges.items():
            if ledger.stalled:
                fc.stalled_edges[producer_name] = (
                    fc.stalled_edges.get(producer_name, 0) + 1
                )
        for name in names:
            paused = fc.stalled_edges.get(name, 0) > 0
            for rt in fc.tasks_of[name]:
                rt.fc_paused = paused
        if old is not None:
            # Carry open stall intervals for spouts still stalled; close
            # (and account) the intervals of spouts the rebuild resumed.
            now = self.sim.now
            for name, since in old.spout_stalled_since.items():
                if fc.stalled_edges.get(name, 0) > 0:
                    fc.spout_stalled_since[name] = since
                else:
                    self.stats.record_spout_throttle(
                        topo_rt.topology_id, now - since
                    )
        topo_rt.flow = fc
        if old is not None:
            # Tasks the rebuild un-paused must drain again.
            for name in names:
                if fc.stalled_edges.get(name, 0) > 0:
                    continue
                for rt in fc.tasks_of[name]:
                    if not rt.alive or not rt.node.node.alive:
                        continue
                    if rt.is_spout:
                        self._try_emit(rt)
                    if rt.work and not rt.queued and not rt.running:
                        rt.queued = True
                        rt.node.ready.append(rt)
                        self._dispatch(rt.node)

    def _recompute_node_factors(self) -> None:
        """Thrash and context-switch factors from current placements.

        A node thrashes when the resident memory of the tasks placed on it
        exceeds its physical capacity — the hard-constraint violation the
        default scheduler can commit and R-Storm never does.
        """
        for node_rt in self._nodes.values():
            resident_mb = sum(
                rt.component.resident_memory_mb for rt in node_rt.tasks
            )
            capacity_mb = node_rt.node.capacity.memory_mb
            if capacity_mb > 0 and resident_mb > capacity_mb:
                node_rt.slowdown = self.config.thrash_factor
            else:
                node_rt.slowdown = 1.0
            extra = max(0, len(node_rt.tasks) - node_rt.cores)
            node_rt.overhead = 1.0 + self.config.context_switch_overhead * extra

    # -- public control ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationReport:
        """Run the simulation and return its report.

        Args:
            until: Stop time (defaults to ``config.duration_s``).  May be
                called repeatedly with increasing times to step through a
                run (e.g. interleaved with failure injection).
        """
        horizon = self.config.duration_s if until is None else until
        if not self._started:
            self._started = True
            for topo_rt in self._topologies:
                if self._open_loop:
                    self._start_arrivals(topo_rt)
                else:
                    for spout in topo_rt.spouts:
                        self._try_emit(spout)
                self._schedule_sweep(topo_rt)
        self.sim.run(horizon)
        return self.report()

    def report(self) -> SimulationReport:
        """Snapshot report at the current simulated time."""
        nodes_used = {
            topo_rt.topology_id: tuple(sorted(topo_rt.assignment.nodes))
            for topo_rt in self._topologies
        }
        node_cores = {
            node_id: rt.cores for node_id, rt in self._nodes.items()
        }
        return SimulationReport(
            config=self.config,
            stats=self.stats,
            duration_s=max(self.sim.now, 1e-9),
            topology_ids=[t.topology_id for t in self._topologies],
            nodes_used=nodes_used,
            node_cores=node_cores,
            events_processed=self.sim.events_processed,
        )

    def on_time(self, time: float, callback: Callable[..., None], *args) -> None:
        """Register an arbitrary callback at simulated ``time`` (failure
        injection, nimbus scheduling ticks, ...).  Extra ``args`` are
        forwarded to the callback at fire time, closure-free."""
        self.sim.schedule_at(time, callback, *args)

    def fail_node_at(self, time: float, node_id: str) -> None:
        """Inject a node failure at simulated ``time``."""
        self.on_time(time, lambda: self._fail_node(node_id))

    def recover_node_at(self, time: float, node_id: str) -> None:
        """Revive a failed node at simulated ``time`` (delayed rejoin)."""
        self.on_time(time, lambda: self._recover_node(node_id))

    def set_node_fault_factor(self, node_id: str, factor: float) -> None:
        """Degrade (or restore) a node's effective CPU speed.

        Service times on the node are multiplied by ``factor`` from now
        on; ``1.0`` restores full speed.  In-flight work keeps the service
        time it was dispatched with, as a real frequency change would.
        """
        if factor <= 0:
            raise SimulationError(f"fault factor must be positive, got {factor}")
        node_rt = self._nodes.get(node_id)
        if node_rt is None:
            raise SimulationError(f"cannot degrade unknown node {node_id!r}")
        node_rt.fault_factor = factor

    def migrate(
        self, topology_id: str, new_assignment: Assignment,
        reason: str = "fault",
    ) -> int:
        """Rebind a topology's tasks to a new assignment immediately.

        Tasks whose slot is unchanged keep their queues; moved tasks carry
        their queued work to the new node.  Without the delivery layer
        (the default) that carry approximates the post-replay state
        without simulating the replay traffic; with ``at_least_once`` on,
        trees stranded by the move genuinely time out and replay.

        ``reason`` tags the move for churn attribution (``"fault"`` for
        Nimbus recovery reschedules, ``"elastic"`` for controller-driven
        rebalances); the runtime itself ignores it, but an installed
        Tracer records it so the RecoveryMonitor can split fault-driven
        from elastic-driven churn.

        Returns the number of tasks that changed slot — the reassignment
        churn the RecoveryMonitor reports per recovery.
        """
        topo_rt = self._topology_runtime(topology_id)
        if not new_assignment.is_complete(topo_rt.topology):
            raise SchedulingError(
                f"migration assignment for {topology_id!r} is incomplete"
            )
        moved = 0
        for task in topo_rt.topology.tasks:
            rt = self._task_runtimes[task]
            new_slot = new_assignment.slot_of(task)
            if new_slot == rt.slot:
                continue
            moved += 1
            new_node = self._nodes.get(new_slot.node_id)
            if new_node is None:
                raise SimulationError(
                    f"migration places {task} on unknown node "
                    f"{new_slot.node_id!r}"
                )
            rt.node.tasks.remove(rt)
            if rt.queued:
                try:
                    rt.node.ready.remove(rt)
                except ValueError:  # pragma: no cover - defensive
                    pass
                rt.queued = False
            rt.slot = new_slot
            rt.node = new_node
            rt.alive = new_node.alive
            new_node.tasks.append(rt)
            if rt.alive and rt.work and not rt.running:
                rt.queued = True
                new_node.ready.append(rt)
                self._dispatch(new_node)
        topo_rt.assignment = new_assignment
        self._placement_version += 1
        self._recompute_node_factors()
        for spout in topo_rt.spouts:
            if spout.alive:
                self._try_emit(spout)
        return moved

    def rescale(
        self,
        topology_id: str,
        new_topology: Topology,
        new_assignment: Assignment,
    ) -> Tuple[int, int, int]:
        """Swap in a rescaled topology (changed bolt parallelism) mid-run.

        ``new_topology`` must come from :meth:`Topology.with_parallelism`
        (or preserve task identity the same way): tasks present in both
        generations keep their ids, so their runtimes — queues, in-flight
        trees, acker state — survive.  Added tasks start empty; removed
        tasks lose their queued work exactly as a decommissioned worker
        would (in-flight trees routed through them time out, and with
        ``at_least_once`` on they replay — the delivery audit stays
        closed).

        Spout parallelism cannot change: arrival streams and pending-tree
        credit are bound to spout task identity, so the elastic layer
        scales bolts only.

        Returns ``(moved, added, removed)`` task counts.
        """
        topo_rt = self._topology_runtime(topology_id)
        if new_topology.topology_id != topology_id:
            raise SimulationError(
                f"rescale topology id mismatch: "
                f"{new_topology.topology_id!r} != {topology_id!r}"
            )
        if not new_assignment.is_complete(new_topology):
            raise SchedulingError(
                f"rescale assignment for {topology_id!r} is incomplete: "
                f"missing {new_assignment.missing_tasks(new_topology)}"
            )
        old_topology = topo_rt.topology
        old_tasks = set(old_topology.tasks)
        new_tasks = set(new_topology.tasks)
        old_spouts = {
            t for t in old_tasks
            if old_topology.component(t.component).is_spout
        }
        new_spouts = {
            t for t in new_tasks
            if new_topology.component(t.component).is_spout
        }
        if old_spouts != new_spouts:
            raise SimulationError(
                f"rescale cannot change spout tasks of {topology_id!r}: "
                "arrival streams are bound to spout task identity"
            )
        removed = sorted(old_tasks - new_tasks)
        added = sorted(new_tasks - old_tasks)
        # Tear down removed tasks: their queued work dies with them.
        for task in removed:
            rt = self._task_runtimes.pop(task)
            rt.alive = False
            if self._fc is not None and rt.work:
                self._fc_release_queue(rt)
            rt.work.clear()
            rt.out_routes = []
            if rt.queued:
                try:
                    rt.node.ready.remove(rt)
                except ValueError:  # pragma: no cover - defensive
                    pass
                rt.queued = False
            rt.node.tasks.remove(rt)
        # Move persisting tasks whose slot changed; rebind all of them to
        # the new generation's component objects.
        moved = 0
        for task in sorted(old_tasks & new_tasks):
            rt = self._task_runtimes[task]
            rt.component = new_topology.component(task.component)
            rt.profile = rt.component.profile
            new_slot = new_assignment.slot_of(task)
            if new_slot == rt.slot:
                continue
            moved += 1
            new_node = self._nodes.get(new_slot.node_id)
            if new_node is None:
                raise SimulationError(
                    f"rescale places {task} on unknown node "
                    f"{new_slot.node_id!r}"
                )
            rt.node.tasks.remove(rt)
            if rt.queued:
                try:
                    rt.node.ready.remove(rt)
                except ValueError:  # pragma: no cover - defensive
                    pass
                rt.queued = False
            rt.slot = new_slot
            rt.node = new_node
            rt.alive = new_node.alive
            new_node.tasks.append(rt)
            if rt.alive and rt.work and not rt.running:
                rt.queued = True
                new_node.ready.append(rt)
                self._dispatch(new_node)
        # Bring up added tasks (empty queues, ready for routed work).
        for task in added:
            slot = new_assignment.slot_of(task)
            node_rt = self._nodes.get(slot.node_id)
            if node_rt is None:
                raise SimulationError(
                    f"rescale places {task} on unknown node {slot.node_id!r}"
                )
            rt = _TaskRuntime(
                task, new_topology.component(task.component), topo_rt,
                slot, node_rt,
            )
            rt.alive = node_rt.alive
            node_rt.tasks.append(rt)
            self._task_runtimes[task] = rt
        # Rewire every producer's routes against the new consumer sets
        # (fresh grouping state, as _add_topology does).
        runtimes = {t: self._task_runtimes[t] for t in new_topology.tasks}
        for task in new_topology.tasks:
            producer = runtimes[task]
            producer.out_routes = []
            for consumer_name in new_topology.downstream_of(task.component):
                consumer_comp = new_topology.component(consumer_name)
                subscription = next(
                    sub
                    for sub in consumer_comp.subscriptions
                    if sub.source == task.component
                )
                consumers = [
                    runtimes[t] for t in new_topology.tasks_of(consumer_name)
                ]
                producer.out_routes.append(
                    _OutRoute(
                        consumer_name,
                        subscription.grouping.fresh(),
                        consumers,
                    )
                )
        topo_rt.topology = new_topology
        topo_rt.assignment = new_assignment
        topo_rt.spouts = [runtimes[t] for t in sorted(new_spouts)]
        self._placement_version += 1
        self._recompute_node_factors()
        if self._fc is not None:
            self._init_flow(topo_rt)
        for spout in topo_rt.spouts:
            if spout.alive:
                self._try_emit(spout)
        return moved, len(added), len(removed)

    # -- load sampling (elastic control loop) ------------------------------

    def component_backlog(self, topology_id: str, component: str) -> int:
        """Input tuples queued (not yet serviced) across a component's
        tasks — the backlog signal the elastic controller samples."""
        topo_rt = self._topology_runtime(topology_id)
        total = 0
        for task in topo_rt.topology.tasks_of(component):
            rt = self._task_runtimes[task]
            for kind, payload in rt.work:
                if kind == _PROCESS:
                    total += payload[1]
                elif kind == _REPLAY:
                    total += payload[0]
                elif payload is not None:  # open-loop _EMIT
                    total += payload[1]
                else:  # closed-loop _EMIT: profile-sized batch
                    total += rt.profile.emit_batch_tuples
        return total

    def task_queue_depths(self, topology_id: str) -> Dict[Task, int]:
        """Queued work items per task (rebalance hot-spot signal)."""
        topo_rt = self._topology_runtime(topology_id)
        return {
            task: len(self._task_runtimes[task].work)
            for task in topo_rt.topology.tasks
        }

    def current_topology(self, topology_id: str) -> Topology:
        """The live (possibly rescaled) topology generation."""
        return self._topology_runtime(topology_id).topology

    # -- failure ------------------------------------------------------------------

    def _fail_node(self, node_id: str) -> None:
        node_rt = self._nodes.get(node_id)
        if node_rt is None:
            raise SimulationError(f"cannot fail unknown node {node_id!r}")
        node_rt.node.fail()
        for rt in node_rt.tasks:
            rt.alive = False
            if self._at_least_once and rt.is_spout and rt.work:
                self._abandon_queued_replays(rt)
            if self._fc is not None and rt.work:
                self._fc_release_queue(rt)
            rt.work.clear()
            rt.queued = False
            # A spout killed mid-emit must not stay blocked forever: its
            # in-flight emit completion will be discarded (dead node), so
            # clear the flag now and revival can emit again.
            rt.emit_blocked = False
            rt.emit_timer_set = False
        node_rt.ready.clear()

    def _recover_node(self, node_id: str) -> None:
        """The machine rejoins: its capacity becomes schedulable again and
        any tasks still bound to it restart (their queued work was lost at
        failure, exactly as a process restart loses its heap)."""
        node_rt = self._nodes.get(node_id)
        if node_rt is None:
            raise SimulationError(f"cannot recover unknown node {node_id!r}")
        node_rt.node.recover()
        for rt in node_rt.tasks:
            rt.alive = True
            if rt.is_spout:
                self._try_emit(rt)
            elif rt.work and not rt.queued and not rt.running:
                rt.queued = True
                node_rt.ready.append(rt)
        self._dispatch(node_rt)

    # -- open-loop arrivals ----------------------------------------------------------

    def _start_arrivals(self, topo_rt: _TopologyRuntime) -> None:
        """Schedule each spout task's first arrival from its substream.

        Every spout task gets an independent RNG derived from
        ``arrival_seed`` and its identity, so arrival sequences survive
        placement changes, migrations and code paths that consume the
        global :mod:`random` state.
        """
        config = self.config
        keygen = config.arrival_keys
        topo_id = topo_rt.topology_id
        for spout in topo_rt.spouts:
            source = (topo_id, spout.component.name, spout.task.instance)
            rng = random.Random(
                derive_stream_seed(config.arrival_seed, *source)
            )
            stream = self._arrival.stream(
                rng, spout.profile.emit_batch_tuples, source=source
            )
            if keygen is not None:
                key_rng = random.Random(
                    derive_stream_seed(config.arrival_seed, "keys", *source)
                )
                stream = _assign_keys(stream, keygen.stream(key_rng))
            first = next(stream, None)
            if first is not None:
                time_s, tuples, key = first
                self.sim.schedule_at(
                    max(time_s, 0.0), self._arrive, spout, stream, source,
                    tuples, key,
                )

    def _arrive(
        self,
        spout: _TaskRuntime,
        stream: Iterator,
        source: Tuple[str, str, int],
        tuples: int,
        key: Optional[int],
    ) -> None:
        """One batch arrives at a spout task, ready or not.

        Offered load is recorded unconditionally — that is what "open
        loop" means — and arrivals hitting a dead spout (crashed worker,
        failed node) are counted as dropped rather than queued: a real
        source keeps sending while the process is down.
        """
        now = self.sim.now
        topo_id = spout.topo.topology_id
        self.stats.record_offered(topo_id, now, tuples)
        self._arrival_log.append((source, now, tuples, key))
        if spout.alive and spout.node.node.alive:
            fc_shed = self._fc_shed
            if fc_shed is not None and fc_shed.should_shed(
                topo_id, len(spout.work)
            ):
                # Ingress shedding: the batch is refused at the spout's
                # bounded queue before it ever becomes a tuple tree —
                # audited, never emitted.
                self._shed(topo_id, spout.component.name, "ingress", tuples)
            else:
                self._push_work(spout, _EMIT, (now, tuples, key))
        else:
            self.stats.record_arrival_dropped(topo_id, tuples)
        nxt = next(stream, None)
        if nxt is not None:
            time_s, ntuples, nkey = nxt
            self.sim.schedule_at(
                time_s if time_s > now else now, self._arrive, spout,
                stream, source, ntuples, nkey,
            )

    def arrival_trace(self):
        """The run's recorded arrivals as a replayable
        :class:`~repro.traffic.trace.ArrivalTrace` (open loop only)."""
        from repro.traffic.trace import ArrivalTrace

        return ArrivalTrace.from_log(self._arrival_log)

    # -- spout emission --------------------------------------------------------------

    def _try_emit(self, spout: _TaskRuntime) -> None:
        # Open-loop runs rebind this to ``_no_emit`` at construction, so
        # the closed-loop hot path (one call per ack) pays no branch.
        pending_cap = self._max_pending
        if (
            not spout.alive
            or not spout.node.node.alive
            or spout.emit_blocked
            or spout.fc_paused
            or (pending_cap is not None and spout.inflight >= pending_cap)
        ):
            return
        if (
            spout.profile.max_rate_tps is not None
            and self.sim.now < spout.next_emit_time
        ):
            if not spout.emit_timer_set:
                # One coalesced wake timer per throttled spout: repeated
                # credit returns (acks, timeouts) while the timer is set
                # schedule nothing.
                spout.emit_timer_set = True
                self.sim.schedule_at(
                    spout.next_emit_time, self._wake_spout, spout
                )
            return
        spout.emit_blocked = True
        self._push_work(spout, _EMIT, None)

    def _no_emit(self, spout: _TaskRuntime) -> None:
        """Open-loop stand-in for :meth:`_try_emit`: arrivals, not
        credit, decide when spouts emit."""

    def _wake_spout(self, spout: _TaskRuntime) -> None:
        spout.emit_timer_set = False
        self._try_emit(spout)

    # -- work dispatch -----------------------------------------------------------------

    def _push_work(self, task: _TaskRuntime, kind: int, payload) -> None:
        task.work.append((kind, payload))
        overflow = self._overflow
        if overflow is not None and len(task.work) > overflow:
            self._crash_task(task)
            return
        if not task.queued and not task.running and not task.fc_paused:
            task.queued = True
            task.node.ready.append(task)
            self._dispatch(task.node)

    def _crash_task(self, task: _TaskRuntime) -> None:
        """The task's worker dies of queue overflow (heap exhaustion);
        its queue is lost and the supervisor restarts it after
        ``worker_restart_s``.  In-flight roots routed through it will
        time out, returning spout credit (or just counting as failed)."""
        task.alive = False
        if self._at_least_once and task.is_spout and task.work:
            self._abandon_queued_replays(task)
        if self._fc is not None and task.work:
            self._fc_release_queue(task)
        task.work.clear()
        task.emit_blocked = False
        task.emit_timer_set = False
        if task.queued:
            try:
                task.node.ready.remove(task)
            except ValueError:  # pragma: no cover - defensive
                pass
            task.queued = False
        self.stats.record_crash(task.topo.topology_id, task.component.name)
        self.sim.schedule_after(
            self.config.worker_restart_s, self._revive_task, task
        )

    def _revive_task(self, task: _TaskRuntime) -> None:
        if not task.node.node.alive:
            return  # node died meanwhile; nimbus must reschedule
        task.alive = True
        if task.is_spout:
            self._try_emit(task)

    def _dispatch(self, node_rt: _NodeRuntime) -> None:
        # Tight loop: payload rides the event as schedule args (no
        # closure per dispatched batch), and the node's liveness is read
        # straight off the Node to skip property-call overhead.
        node = node_rt.node
        ready = node_rt.ready
        cores = node_rt.cores
        schedule_after = self.sim.schedule_after
        complete = self._complete
        service_time = self._service_time
        fc_on = self._fc is not None
        while node.alive and node_rt.active < cores and ready:
            task = ready.popleft()
            task.queued = False
            if not task.alive or not task.work or task.fc_paused:
                continue
            task.running = True
            node_rt.active += 1
            kind, payload = task.work.popleft()
            if fc_on and kind == _PROCESS:
                # The batch left its bounded input queue: return the edge
                # credit (may resume a stalled upstream producer).
                self._fc_drain(task.topo, payload[3], task.component.name)
            service = service_time(task, kind, payload, node_rt)
            schedule_after(service, complete, task, kind, payload, service,
                           node_rt)

    def _service_time(
        self, task: _TaskRuntime, kind: int, payload, node_rt: _NodeRuntime
    ) -> float:
        profile = task.profile
        if kind == _EMIT:
            # Closed-loop emits carry no payload (the batch size is the
            # profile's); open-loop payloads are (arrived_at, tuples, key).
            tuples = (
                profile.emit_batch_tuples if payload is None else payload[1]
            )
            per_tuple_ms = profile.cpu_ms_per_tuple
        elif kind == _REPLAY:
            # Re-emitting a failed tree costs the spout the same CPU as
            # emitting it the first time: payload is (tuples, attempt,
            # origin_root).
            tuples = payload[0]
            per_tuple_ms = profile.cpu_ms_per_tuple
        else:
            tuples = payload[1]
            per_tuple_ms = profile.cpu_ms_per_tuple
            if payload[2] is not _INTRA_PROCESS:
                # Tuples from another worker process arrive serialised and
                # must be decoded before user code runs.
                per_tuple_ms += self._serde_ms
        service = (
            tuples * per_tuple_ms / 1e3
            * node_rt.slowdown * node_rt.overhead * node_rt.fault_factor
        )
        return service if service >= _MIN_SERVICE_S else _MIN_SERVICE_S

    def _complete(
        self,
        task: _TaskRuntime,
        kind: int,
        payload,
        service: float,
        node_rt: _NodeRuntime,
    ) -> None:
        self.stats.record_busy(node_rt.node_id, service)
        task.running = False
        node_rt.active -= 1
        if task.alive and node_rt.node.alive:
            if kind == _EMIT:
                self._finish_emit(task, payload)
            elif kind == _REPLAY:
                self._finish_replay(task, payload)
            else:
                self._finish_process(task, payload)
        elif kind == _REPLAY:
            # The spout (or its node) died while this replay was being
            # serviced: the retry state is gone with the worker, so the
            # origin resolves as explicitly exhausted, never silently.
            self._abandon_replay(task.topo, payload[0])
        if (
            task.alive and task.work and not task.queued
            and not task.running and not task.fc_paused
        ):
            task.queued = True
            task.node.ready.append(task)
            if task.node is not node_rt:
                # Only after a migration mid-flight; the common case (the
                # task completed on its own node) is covered by the
                # dispatch below.
                self._dispatch(task.node)
        self._dispatch(node_rt)

    # -- emit / process effects --------------------------------------------------------

    def _finish_emit(self, spout: _TaskRuntime, payload=None) -> None:
        topo = spout.topo
        now = self.sim.now
        if payload is None:
            # Closed loop: the spout produced its own profile-sized batch.
            # This body is the hot path — kept free of open-loop work.
            tuples = spout.profile.emit_batch_tuples
            root_id = next(topo.next_root)
            self.stats.record_emitted(topo.topology_id, tuples)
            deliveries = self._route(spout, tuples, root_id, root_id)
            if deliveries:
                topo.pending[root_id] = _PendingTree(
                    deliveries, spout, now, tuples, 0, root_id
                )
                spout.inflight += 1
                if self._track_origins:
                    topo.origins_created += 1
            else:
                # A spout with no subscribers is its own sink.
                self.stats.record_sink(
                    topo.topology_id, spout.component.name, now, tuples
                )
            spout.emit_blocked = False
            if spout.profile.max_rate_tps is not None:
                interval = tuples / spout.profile.max_rate_tps
                spout.next_emit_time = max(
                    spout.next_emit_time + interval, now
                )
            self._try_emit(spout)
            return
        # Open loop: the batch was offered by the arrival process; the
        # next emission is the next arrival, so no credit/rate logic.
        arrived_at, tuples, key = payload
        root_id = next(topo.next_root)
        self.stats.record_emitted(topo.topology_id, tuples)
        deliveries = self._route(
            spout, tuples, root_id, root_id if key is None else key
        )
        if deliveries:
            topo.pending[root_id] = _PendingTree(
                deliveries, spout, now, tuples, 0, root_id, arrived_at
            )
            spout.inflight += 1
            if self._track_origins:
                topo.origins_created += 1
        else:
            # A spout with no subscribers is its own sink.
            self.stats.record_sink(
                topo.topology_id, spout.component.name, now, tuples
            )
            if arrived_at is not None:
                self.stats.record_e2e_latency(
                    topo.topology_id, now - arrived_at
                )
        spout.emit_blocked = False

    def _finish_process(self, task: _TaskRuntime, payload) -> None:
        # Positional indexing, not unpacking: flow-control runs extend
        # the _PROCESS payload with a 4th element (source component).
        root_id = payload[0]
        tuples = payload[1]
        topo = task.topo
        now = self.sim.now
        self.stats.record_processed(topo.topology_id, task.component.name, tuples)
        children = 0
        if task.out_routes:
            ratio = task.profile.output_ratio
            out_tuples = int(round(tuples * ratio)) if ratio > 0 else 0
            if ratio > 0 and out_tuples == 0:
                out_tuples = 1
            if out_tuples > 0:
                children = self._route(task, out_tuples, root_id, root_id)
        else:
            self.stats.record_sink(
                topo.topology_id, task.component.name, now, tuples
            )
        entry = topo.pending.get(root_id)
        if entry is None:
            # Root already timed out, or this is a ghost batch (a wire
            # duplicate riding root ``_GHOST_ROOT``): late/duplicate
            # tuples are discarded by the acker.
            return
        entry.remaining += children - 1
        if entry.remaining <= 0:
            del topo.pending[root_id]
            spout = entry.spout
            spout.inflight -= 1
            self.stats.record_ack(topo.topology_id, now - entry.emitted_at)
            if entry.arrived_at is not None:
                # End-to-end latency: arrival at the spout to full ack,
                # including any time spent queued before emission.
                self.stats.record_e2e_latency(
                    topo.topology_id, now - entry.arrived_at
                )
            if self._at_least_once:
                self.stats.record_acked_tuples(
                    topo.topology_id, now, entry.tuples
                )
            self._try_emit(spout)

    # -- at-least-once replay ----------------------------------------------------------

    def _start_replay(
        self, spout: _TaskRuntime, tuples: int, attempt: int,
        origin_root: int, arrived_at: Optional[float] = None,
    ) -> None:
        """Backoff timer fired: queue the replay on its spout.

        Replays bypass the ``max_spout_pending`` gate (Storm's spout
        replays failed tuples ahead of new emissions) but still consume
        credit once re-emitted, so in-flight work stays bounded by
        cap + outstanding replays.
        """
        if not spout.alive or not spout.node.node.alive:
            # The spout's worker (and with it the retry buffer) is gone;
            # the origin is explicitly exhausted, not silently dropped.
            self._abandon_replay(spout.topo, tuples)
            return
        self._push_work(
            spout, _REPLAY, (tuples, attempt, origin_root, arrived_at)
        )

    def _finish_replay(self, spout: _TaskRuntime, payload) -> int:
        """Re-emit a failed tree under a *fresh* root id.

        A new id (from the same monotonic counter) keeps ``pending``
        insertion-ordered by emit time — the invariant the timeout
        sweep's early-exit scan depends on — and lets the Tracer link
        the replay to ``origin_root`` causally.  Returns the new root id.
        """
        tuples, attempt, origin_root, arrived_at = payload
        topo = spout.topo
        now = self.sim.now
        root_id = next(topo.next_root)
        self.stats.record_replayed(topo.topology_id, tuples)
        deliveries = self._route(spout, tuples, root_id, root_id)
        topo.replays_outstanding -= 1
        if deliveries:
            # A replayed tree keeps its original arrival anchor, so the
            # e2e latency of an eventually-acked origin spans its retries.
            topo.pending[root_id] = _PendingTree(
                deliveries, spout, now, tuples, attempt, origin_root,
                arrived_at,
            )
            spout.inflight += 1
        else:  # pragma: no cover - a spout with consumers always routes
            topo.origins_exhausted += 1
            self.stats.record_exhausted(topo.topology_id, tuples)
        return root_id

    def _abandon_replay(self, topo: _TopologyRuntime, tuples: int) -> None:
        """Resolve an outstanding replay whose spout died: the origin is
        counted as exhausted so the at-least-once audit stays closed."""
        topo.replays_outstanding -= 1
        topo.origins_exhausted += 1
        self.stats.record_exhausted(topo.topology_id, tuples)

    def _abandon_queued_replays(self, spout: _TaskRuntime) -> None:
        """Scan a dying spout's work queue for not-yet-serviced replays
        and resolve each as exhausted (callers clear the queue next)."""
        topo = spout.topo
        for kind, payload in spout.work:
            if kind == _REPLAY:
                self._abandon_replay(topo, payload[0])

    def delivery_audit(self) -> Dict[str, Dict[str, int]]:
        """Per-topology at-least-once ledger (for tests/diagnostics).

        Invariant while ``at_least_once`` and/or flow control is on::

            origins_created == origins_acked + origins_exhausted
                               + origins_shed + pending
                               + replays_outstanding

        i.e. every root tuple ever admitted to the acker is acked,
        explicitly exhausted, deliberately shed, or still accounted for
        in flight — nothing is silently dropped.
        """
        audit: Dict[str, Dict[str, int]] = {}
        for topo_rt in self._topologies:
            topo_id = topo_rt.topology_id
            audit[topo_id] = {
                "origins_created": topo_rt.origins_created,
                "origins_acked": len(self.stats.ack_latencies(topo_id)),
                "origins_exhausted": topo_rt.origins_exhausted,
                "origins_shed": topo_rt.origins_shed,
                "pending": len(topo_rt.pending),
                "replays_outstanding": topo_rt.replays_outstanding,
                "spout_inflight": sum(
                    spout.inflight for spout in topo_rt.spouts
                ),
            }
        return audit

    # -- routing -----------------------------------------------------------------------

    def _refresh_route(self, producer: _TaskRuntime, route: _OutRoute) -> None:
        """Recompute a route's placement-derived caches (distance levels,
        NIC flags, local consumer indices).  Only runs when the placement
        version moved — the distance matrix is immutable per placement."""
        slot_level = self.cluster.slot_distance_level
        producer_slot = producer.slot
        levels = [slot_level(producer_slot, c.slot) for c in route.consumers]
        route.levels = levels
        route.remote = [level >= _INTER_NODE for level in levels]
        if route.is_local_or_shuffle:
            route.local_indices = [
                i
                for i, c in enumerate(route.consumers)
                if c.slot == producer_slot
            ]
        else:
            route.local_indices = None
        route.levels_version = self._placement_version

    def _route(
        self, producer: _TaskRuntime, tuples: int, root_id: int,
        route_key: int,
    ) -> int:
        # ``route_key`` feeds fields groupings: the root id in closed
        # loop (and for bolt fan-out), the arrival's key in open loop.
        deliveries = 0
        now = self.sim.now
        num_bytes = tuples * producer.profile.tuple_bytes
        version = self._placement_version
        producer_node_id = producer.slot.node_id
        fc = producer.topo.flow
        src = producer.component.name
        # Hoisted bound methods: one lookup per routed batch instead of
        # one per delivery.  ``self._deliver`` is looked up here (not at
        # construction) so an installed Tracer still intercepts it.
        transfer_model = self.transfer
        transfer = transfer_model.transfer
        lossy = transfer_model.lossy
        schedule_at = self.sim.schedule_at
        deliver = self._deliver
        record_nic = self.stats.record_nic
        for route in producer.out_routes:
            if route.levels_version != version:
                self._refresh_route(producer, route)
            consumers = route.consumers
            levels = route.levels
            remote = route.remote
            targets = route.grouping.route(
                len(consumers), key=route_key,
                local_indices=route.local_indices,
            )
            for idx in targets:
                consumer = consumers[idx]
                level = levels[idx]
                arrival = transfer(
                    now, producer_node_id, consumer.slot.node_id, level,
                    num_bytes,
                )
                if remote[idx]:
                    record_nic(producer_node_id, num_bytes)
                deliveries += 1
                if lossy:
                    copies = transfer_model.copies(
                        producer_node_id, consumer.slot.node_id, level
                    )
                    if copies == 0:
                        # Lost on the trunk: the bandwidth was spent and
                        # the acker still expects this delivery (it was
                        # counted above), so the tree can only resolve by
                        # timing out — exactly Storm's failure mode.
                        self.stats.record_lost(
                            producer.topo.topology_id, tuples
                        )
                        continue
                    if copies == 2:
                        # Wire duplicate: a second, fully-costed transfer
                        # whose delivery rides the ghost root, so it is
                        # processed downstream but invisible to the acker
                        # (the at-least-once dedup) — it inflates raw
                        # sink throughput, not effective throughput.
                        dup_arrival = transfer(
                            now, producer_node_id, consumer.slot.node_id,
                            level, num_bytes,
                        )
                        if remote[idx]:
                            record_nic(producer_node_id, num_bytes)
                        self.stats.record_duplicate(
                            producer.topo.topology_id, tuples
                        )
                        if fc is not None:
                            # Ghost copies occupy real queue space too.
                            self._fc_send(
                                producer.topo, src, route.consumer_component
                            )
                        schedule_at(
                            dup_arrival, deliver, consumer, _GHOST_ROOT,
                            tuples, level, src,
                        )
                if fc is not None:
                    self._fc_send(producer.topo, src, route.consumer_component)
                schedule_at(
                    arrival, deliver, consumer, root_id, tuples, level, src
                )
        return deliveries

    def _deliver(
        self,
        consumer: _TaskRuntime,
        root_id: int,
        tuples: int,
        level: DistanceLevel,
        src: Optional[str] = None,
    ) -> None:
        if not consumer.alive or not consumer.node.node.alive:
            self.stats.record_dropped()
            if self._fc is not None and src is not None:
                # The batch consumed an edge credit when routed; a dead
                # consumer never drains it, so return it here.
                self._fc_drain(consumer.topo, src, consumer.component.name)
            return  # the root will time out and return spout credit
        if self._fc is not None:
            fc_shed = self._fc_shed
            if fc_shed is not None and fc_shed.should_shed(
                consumer.topo.topology_id, len(consumer.work)
            ):
                self._fc_drain(consumer.topo, src, consumer.component.name)
                self._shed_delivery(consumer, root_id, tuples)
                return
            self._push_work(consumer, _PROCESS, (root_id, tuples, level, src))
            return
        self._push_work(consumer, _PROCESS, (root_id, tuples, level))

    # -- flow control (all paths below only run when config.flow is set) ---

    def _fc_send(
        self, topo_rt: _TopologyRuntime, producer: str, consumer: str
    ) -> None:
        """Consume one credit on an edge; stall its producer component
        when this send crosses the high watermark."""
        fc = topo_rt.flow
        ledger = fc.edges.get((producer, consumer))
        if ledger is None:  # pragma: no cover - defensive
            return
        if ledger.send():
            self.stats.record_credit_stall(
                topo_rt.topology_id, producer, consumer
            )
            count = fc.stalled_edges.get(producer, 0) + 1
            fc.stalled_edges[producer] = count
            if count == 1:
                self._fc_stall(topo_rt, producer, consumer)

    def _fc_drain(
        self, topo_rt: _TopologyRuntime, producer: str, consumer: str
    ) -> None:
        """Return one credit on an edge; resume its producer component
        when this drain falls back to the low watermark and no other out
        edge of the producer is still stalled."""
        fc = topo_rt.flow
        ledger = fc.edges.get((producer, consumer))
        if ledger is None:  # pragma: no cover - defensive
            return
        if ledger.drain():
            count = fc.stalled_edges.get(producer, 1) - 1
            fc.stalled_edges[producer] = count
            if count == 0:
                self._fc_resume(topo_rt, producer, consumer)

    def _fc_stall(
        self, topo_rt: _TopologyRuntime, producer: str, consumer: str
    ) -> None:
        """Backpressure bites: pause every task of ``producer``.

        Paused bolts stop draining their own input queues, so their
        upstream edges fill next — pressure propagates edge-by-edge until
        it reaches the spouts, which stop emitting.  An installed Tracer
        wraps this (and :meth:`_fc_resume`) to surface stall events.
        """
        fc = topo_rt.flow
        tasks = fc.tasks_of.get(producer, ())
        for rt in tasks:
            rt.fc_paused = True
        if tasks and tasks[0].is_spout:
            fc.spout_stalled_since.setdefault(producer, self.sim.now)

    def _fc_resume(
        self, topo_rt: _TopologyRuntime, producer: str, consumer: str
    ) -> None:
        """Backpressure releases: unpause ``producer`` and restart its
        tasks (spouts re-emit, bolts drain their backlog)."""
        fc = topo_rt.flow
        tasks = fc.tasks_of.get(producer, ())
        for rt in tasks:
            rt.fc_paused = False
        since = fc.spout_stalled_since.pop(producer, None)
        if since is not None:
            self.stats.record_spout_throttle(
                topo_rt.topology_id, self.sim.now - since
            )
        for rt in tasks:
            if not rt.alive or not rt.node.node.alive:
                continue
            if rt.is_spout:
                self._try_emit(rt)
            if rt.work and not rt.queued and not rt.running:
                rt.queued = True
                rt.node.ready.append(rt)
                self._dispatch(rt.node)

    def _fc_release_queue(self, task: _TaskRuntime) -> None:
        """Return the edge credits held by a dying task's queued batches
        (worker crash, node failure, rescale removal) — without this the
        upstream edge would stall forever."""
        topo_rt = task.topo
        consumer = task.component.name
        for kind, payload in task.work:
            if kind == _PROCESS:
                self._fc_drain(topo_rt, payload[3], consumer)

    def _shed_delivery(
        self, consumer: _TaskRuntime, root_id: int, tuples: int
    ) -> None:
        """The shedding policy refused a batch at a full bolt queue.

        The whole tuple tree resolves as *shed* (popped from the acker,
        spout credit returned, ``origins_shed`` incremented) — a
        deliberate, audited drop, never a silent one.  Shed trees are
        not replayed even under at-least-once: shedding is the load
        regulator, replaying their tuples would defeat it.  Ghost and
        late batches (tree already resolved) count in the shed totals
        only.
        """
        topo = consumer.topo
        entry = None
        if root_id != _GHOST_ROOT:
            entry = topo.pending.pop(root_id, None)
        shed_tuples = entry.tuples if entry is not None else tuples
        self._shed(
            topo.topology_id, consumer.component.name, "queue", shed_tuples
        )
        if entry is not None:
            topo.origins_shed += 1
            spout = entry.spout
            spout.inflight -= 1
            if spout.alive:
                self._try_emit(spout)

    def _shed(
        self, topology_id: str, component: str, stage: str, tuples: int
    ) -> None:
        """Record one audited shed decision (Tracer-visible)."""
        now = self.sim.now
        self.stats.record_shed(topology_id, component, stage, now, tuples)
        self._fc_ledger.record(
            ShedRecord(
                now, topology_id, component, stage, tuples,
                self._fc_policy.name,
            )
        )

    def shed_ledger(self) -> Optional[ShedLedger]:
        """The run's audited shed ledger (None when flow is off)."""
        return self._fc_ledger

    def flow_edges(self, topology_id: str) -> Dict[Tuple[str, str], CreditLedger]:
        """Per-edge credit ledgers (tests/diagnostics; flow on only)."""
        topo_rt = self._topology_runtime(topology_id)
        if topo_rt.flow is None:
            raise SimulationError(
                f"flow control is not enabled for {topology_id!r}"
            )
        return dict(topo_rt.flow.edges)

    # -- ack timeout sweep -------------------------------------------------------------

    def _schedule_sweep(self, topo_rt: _TopologyRuntime) -> None:
        """One coalesced timeout timer per topology (period = a quarter
        of the batch timeout) instead of a timer per pending root."""
        period = self.config.batch_timeout_s / 4.0
        self.sim.schedule_after(period, self._sweep, topo_rt, period)

    def _sweep(self, topo_rt: _TopologyRuntime, period: float) -> None:
        cutoff = self.sim.now - self.config.batch_timeout_s
        # ``pending`` is insertion-ordered by emit time (roots are created
        # at monotonically non-decreasing simulated times), so the expiry
        # scan stops at the first live root instead of walking every
        # in-flight batch each period.
        expired = []
        for root, entry in topo_rt.pending.items():
            if entry.emitted_at <= cutoff:
                expired.append(root)
            else:
                break
        at_least_once = self._at_least_once
        for root in expired:
            entry = topo_rt.pending.pop(root)
            spout = entry.spout
            spout.inflight -= 1
            self.stats.record_failed(topo_rt.topology_id, entry.tuples)
            if not at_least_once and self._track_origins:
                # Flow control without at-least-once: a timed-out tree is
                # given up on for good, so the origin audit resolves it
                # as exhausted (never silently lost).
                topo_rt.origins_exhausted += 1
                self.stats.record_exhausted(
                    topo_rt.topology_id, entry.tuples
                )
            if at_least_once:
                if entry.attempt < self._max_retries:
                    # Exponential backoff before the spout re-emits; the
                    # replay is accounted as outstanding from this moment
                    # so the audit never loses sight of the origin.
                    topo_rt.replays_outstanding += 1
                    self.sim.schedule_after(
                        self._replay_backoff * (2.0 ** entry.attempt),
                        self._start_replay, spout, entry.tuples,
                        entry.attempt + 1, entry.origin_root,
                        entry.arrived_at,
                    )
                else:
                    topo_rt.origins_exhausted += 1
                    self.stats.record_exhausted(
                        topo_rt.topology_id, entry.tuples
                    )
            if spout.alive:
                self._try_emit(spout)
        self.sim.schedule_after(period, self._sweep, topo_rt, period)

    # -- helpers -----------------------------------------------------------------------

    def _topology_runtime(self, topology_id: str) -> _TopologyRuntime:
        for topo_rt in self._topologies:
            if topo_rt.topology_id == topology_id:
                return topo_rt
        raise SimulationError(f"no topology {topology_id!r} in this run")
