"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks scheduled at absolute simulated
times, executed in time order with FIFO tie-breaking (a monotonically
increasing sequence number).  All simulation times are in **seconds** of
simulated time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Heap-based discrete-event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute simulated time ``time``.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, action)

    def run(self, until: float) -> None:
        """Process events in order until simulated time ``until``.

        Events scheduled exactly at ``until`` are processed; the clock
        ends at ``until`` even if the heap drains earlier.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards to {until} from now={self._now}"
            )
        while self._heap and self._heap[0][0] <= until:
            time, _, action = heapq.heappop(self._heap)
            self._now = time
            self._events_processed += 1
            action()
        self._now = until

    def step(self) -> bool:
        """Process a single event; returns False when the heap is empty."""
        if not self._heap:
            return False
        time, _, action = heapq.heappop(self._heap)
        self._now = time
        self._events_processed += 1
        action()
        return True

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
