"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks scheduled at absolute simulated
times, executed in time order with FIFO tie-breaking (a monotonically
increasing sequence number).  All simulation times are in **seconds** of
simulated time.

Hot-path design (the loop carries every experiment in the repo):

* Events are ``(time, seq, action, args)`` heap entries.  Callers pass
  payload via ``*args`` instead of closing over it, so scheduling a
  tuple delivery allocates no closure/cell objects — only the heap
  tuple, which the heap needs anyway.
* :meth:`run` binds the heap, ``heappop`` and the horizon to locals and
  pops in a tight loop; ``__slots__`` keeps attribute access dict-free.
* ``now`` and ``events_processed`` are plain slot attributes, not
  properties: the runtime reads ``sim.now`` several times per event and
  a descriptor call there is measurable.  They are read-only by
  convention — only the engine assigns them.

Horizon convention (the boundary every caller must agree on):

* ``run(until)`` is **inclusive**: events scheduled exactly at ``until``
  are processed, including events an ``until``-timed callback schedules
  at that same instant.  Events strictly after ``until`` stay queued.
* The clock ends at exactly ``until`` even if the heap drains earlier,
  and a repeated ``run(until)`` at the same horizon is a no-op.
* :meth:`peek_time` callers stepping a run manually should therefore use
  ``peek_time() <= horizon`` ("still due this run"), never ``<``.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Simulator"]

_Event = Tuple[float, int, Callable[..., None], Tuple[Any, ...]]


class Simulator:
    """Heap-based discrete-event loop.

    Attributes:
        now: Current simulated time in seconds (read-only by convention).
        events_processed: Events executed so far (read-only by
            convention; coherent between :meth:`run` calls, not while one
            is on the stack).
    """

    __slots__ = ("now", "events_processed", "_seq", "_heap")

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0
        self._seq = 0
        self._heap: List[_Event] = []

    def schedule_at(
        self, time: float, action: Callable[..., None], *args: Any
    ) -> None:
        """Run ``action(*args)`` at absolute simulated time ``time``.

        Passing payload through ``args`` (rather than a closure) keeps
        per-event allocation to the heap entry itself.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        self._seq += 1
        _heappush(self._heap, (time, self._seq, action, args))

    def schedule_after(
        self, delay: float, action: Callable[..., None], *args: Any
    ) -> None:
        """Run ``action(*args)`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Pushed directly rather than via schedule_at: a non-negative
        # delay can never land in the past, and this is the runtime's
        # hottest scheduling call (one per dispatched batch).
        self._seq += 1
        _heappush(self._heap, (self.now + delay, self._seq, action, args))

    def run(self, until: float) -> None:
        """Process events in order until simulated time ``until``.

        Events scheduled exactly at ``until`` are processed (inclusive
        horizon — see the module docstring); the clock ends at ``until``
        even if the heap drains earlier.
        """
        if until < self.now:
            raise SimulationError(
                f"cannot run backwards to {until} from now={self.now}"
            )
        heap = self._heap
        pop = _heappop
        processed = self.events_processed
        try:
            while heap and heap[0][0] <= until:
                time, _seq, action, args = pop(heap)
                self.now = time
                processed += 1
                action(*args)
        finally:
            self.events_processed = processed
        self.now = until

    def step(self) -> bool:
        """Process a single event; returns False when the heap is empty."""
        if not self._heap:
            return False
        time, _seq, action, args = _heappop(self._heap)
        self.now = time
        self.events_processed += 1
        action(*args)
        return True

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={len(self._heap)}, "
            f"processed={self.events_processed})"
        )
