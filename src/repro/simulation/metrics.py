"""StatisticServer — metrics collection (paper Section 5.1).

Collects, per simulated run:

* windowed sink throughput at task, component and topology level
  (the paper reports tuples per 10-second window),
* spout emission and failure counts,
* per-node busy core-seconds (CPU utilisation, Figure 10),
* batch ack latencies.

The server only records; derived views (averages, series) live in
:class:`~repro.simulation.report.SimulationReport`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.traffic.percentiles import TailDigest

__all__ = ["StatisticServer"]


class StatisticServer:
    """Raw metric sink for one simulation run.

    Deliberately *not* ``__slots__``-ed: the opt-in
    :class:`~repro.simulation.tracing.Tracer` observes acks/failures by
    monkeypatching bound hooks onto instances, which needs the instance
    dict.  The hot recorders below stay dict/float arithmetic only.
    """

    def __init__(self, window_s: float = 10.0):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        #: (topology, window_index) -> tuples processed by sinks
        self._sink_windows: Dict[Tuple[str, int], int] = defaultdict(int)
        #: (topology, component, window_index) -> tuples
        self._component_windows: Dict[Tuple[str, str, int], int] = defaultdict(int)
        #: topology -> total sink tuples
        self._sink_totals: Dict[str, int] = defaultdict(int)
        #: (topology, component) -> total tuples processed (all bolts)
        self._processed_totals: Dict[Tuple[str, str], int] = defaultdict(int)
        #: topology -> tuples emitted by spouts
        self._emitted: Dict[str, int] = defaultdict(int)
        #: topology -> tuples in timed-out (failed) batches
        self._failed: Dict[str, int] = defaultdict(int)
        #: node -> busy core-seconds
        self._busy: Dict[str, float] = defaultdict(float)
        #: topology -> ack latency samples (seconds)
        self._ack_latencies: Dict[str, List[float]] = defaultdict(list)
        #: node -> bytes sent over its NIC
        self._nic_bytes: Dict[str, int] = defaultdict(int)
        #: count of batches dropped at dead nodes
        self.dropped_batches: int = 0
        #: (topology, component) -> worker crash count (queue overflow)
        self._crashes: Dict[Tuple[str, str], int] = defaultdict(int)
        # -- delivery-semantics counters (at-least-once layer / message
        # -- loss faults); all stay zero on default runs.
        #: topology -> tuples re-emitted by spouts replaying failed trees
        self._replayed: Dict[str, int] = defaultdict(int)
        #: topology -> replay batches issued
        self._replay_batches: Dict[str, int] = defaultdict(int)
        #: topology -> tuples in trees given up on after max_retries
        self._exhausted: Dict[str, int] = defaultdict(int)
        #: topology -> exhausted tree count
        self._exhausted_batches: Dict[str, int] = defaultdict(int)
        #: topology -> tuples lost on the wire (message-loss faults)
        self._lost: Dict[str, int] = defaultdict(int)
        #: topology -> tuples duplicated on the wire
        self._duplicated: Dict[str, int] = defaultdict(int)
        #: (topology, window_index) -> tuples in trees acked that window
        #: (effective, acked-once throughput vs the raw sink windows)
        self._acked_windows: Dict[Tuple[str, int], int] = defaultdict(int)
        #: topology -> total tuples in acked trees
        self._acked_totals: Dict[str, int] = defaultdict(int)
        # -- open-loop traffic counters (arrival_process runs only; all
        # -- stay empty on default closed-loop runs).
        #: (topology, window_index) -> tuples offered by arrivals
        self._offered_windows: Dict[Tuple[str, int], int] = defaultdict(int)
        #: topology -> total offered tuples
        self._offered_totals: Dict[str, int] = defaultdict(int)
        #: topology -> tuples that arrived while their spout was down
        self._arrivals_dropped: Dict[str, int] = defaultdict(int)
        #: topology -> end-to-end (arrival -> full ack) latency digest
        self._e2e_digests: Dict[str, TailDigest] = {}
        # -- flow-control counters (config.flow runs only; all stay
        # -- empty/zero on default runs).
        #: topology -> tuples shed by the shedding policy (all stages)
        self._shed_totals: Dict[str, int] = defaultdict(int)
        #: topology -> shed batch count
        self._shed_batches: Dict[str, int] = defaultdict(int)
        #: (topology, stage) -> shed tuples (``ingress`` | ``queue``)
        self._shed_stages: Dict[Tuple[str, str], int] = defaultdict(int)
        #: (topology, component) -> shed tuples (elastic demand signal)
        self._shed_components: Dict[Tuple[str, str], int] = defaultdict(int)
        #: (topology, window_index) -> shed tuples (shed-rate series)
        self._shed_windows: Dict[Tuple[str, int], int] = defaultdict(int)
        #: (topology, producer, consumer) -> times the edge stalled
        self._credit_stalls: Dict[Tuple[str, str, str], int] = defaultdict(int)
        #: topology -> seconds spouts spent throttled by backpressure
        self._spout_throttled: Dict[str, float] = defaultdict(float)

    # -- recording ---------------------------------------------------------

    def window_index(self, time: float) -> int:
        # int() truncates toward zero == floor for the non-negative
        # simulated times the runtime produces, without the math.floor
        # call in the per-batch sink path.
        return int(time / self.window_s)

    def record_sink(
        self, topology_id: str, component: str, time: float, tuples: int
    ) -> None:
        w = int(time / self.window_s)
        self._sink_windows[(topology_id, w)] += tuples
        self._component_windows[(topology_id, component, w)] += tuples
        self._sink_totals[topology_id] += tuples

    def record_processed(
        self, topology_id: str, component: str, tuples: int
    ) -> None:
        self._processed_totals[(topology_id, component)] += tuples

    def record_emitted(self, topology_id: str, tuples: int) -> None:
        self._emitted[topology_id] += tuples

    def record_failed(self, topology_id: str, tuples: int) -> None:
        self._failed[topology_id] += tuples

    def record_busy(self, node_id: str, core_seconds: float) -> None:
        self._busy[node_id] += core_seconds

    def record_ack(self, topology_id: str, latency_s: float) -> None:
        self._ack_latencies[topology_id].append(latency_s)

    def record_nic(self, node_id: str, num_bytes: int) -> None:
        self._nic_bytes[node_id] += num_bytes

    def record_dropped(self) -> None:
        self.dropped_batches += 1

    def record_crash(self, topology_id: str, component: str) -> None:
        self._crashes[(topology_id, component)] += 1

    def record_replayed(self, topology_id: str, tuples: int) -> None:
        self._replayed[topology_id] += tuples
        self._replay_batches[topology_id] += 1

    def record_exhausted(self, topology_id: str, tuples: int) -> None:
        self._exhausted[topology_id] += tuples
        self._exhausted_batches[topology_id] += 1

    def record_lost(self, topology_id: str, tuples: int) -> None:
        self._lost[topology_id] += tuples

    def record_duplicate(self, topology_id: str, tuples: int) -> None:
        self._duplicated[topology_id] += tuples

    def record_acked_tuples(
        self, topology_id: str, time: float, tuples: int
    ) -> None:
        w = int(time / self.window_s)
        self._acked_windows[(topology_id, w)] += tuples
        self._acked_totals[topology_id] += tuples

    def record_offered(self, topology_id: str, time: float, tuples: int) -> None:
        w = int(time / self.window_s)
        self._offered_windows[(topology_id, w)] += tuples
        self._offered_totals[topology_id] += tuples

    def record_arrival_dropped(self, topology_id: str, tuples: int) -> None:
        self._arrivals_dropped[topology_id] += tuples

    def record_e2e_latency(self, topology_id: str, latency_s: float) -> None:
        digest = self._e2e_digests.get(topology_id)
        if digest is None:
            digest = self._e2e_digests[topology_id] = TailDigest()
        digest.add(latency_s)

    def record_shed(
        self, topology_id: str, component: str, stage: str, time: float,
        tuples: int,
    ) -> None:
        self._shed_totals[topology_id] += tuples
        self._shed_batches[topology_id] += 1
        self._shed_stages[(topology_id, stage)] += tuples
        self._shed_components[(topology_id, component)] += tuples
        self._shed_windows[(topology_id, int(time / self.window_s))] += tuples

    def record_credit_stall(
        self, topology_id: str, producer: str, consumer: str
    ) -> None:
        self._credit_stalls[(topology_id, producer, consumer)] += 1

    def record_spout_throttle(
        self, topology_id: str, seconds: float
    ) -> None:
        self._spout_throttled[topology_id] += seconds

    # -- raw views --------------------------------------------------------

    def sink_total(self, topology_id: str) -> int:
        return self._sink_totals.get(topology_id, 0)

    def emitted_total(self, topology_id: str) -> int:
        return self._emitted.get(topology_id, 0)

    def failed_total(self, topology_id: str) -> int:
        return self._failed.get(topology_id, 0)

    def processed_total(self, topology_id: str, component: str) -> int:
        return self._processed_totals.get((topology_id, component), 0)

    def busy_core_seconds(self, node_id: str) -> float:
        return self._busy.get(node_id, 0.0)

    def busy_snapshot(self) -> Dict[str, float]:
        """Copy of per-node busy core-seconds — the elastic controller
        diffs consecutive snapshots to estimate node utilisation per
        control period."""
        return dict(self._busy)

    def processed_snapshot(self) -> Dict[Tuple[str, str], int]:
        """Copy of per-(topology, component) processed-tuple totals —
        diffed per control period for observed service throughput."""
        return dict(self._processed_totals)

    def nic_bytes(self, node_id: str) -> int:
        return self._nic_bytes.get(node_id, 0)

    def ack_latencies(self, topology_id: str) -> List[float]:
        return list(self._ack_latencies.get(topology_id, []))

    def throughput_series(
        self, topology_id: str, duration_s: float
    ) -> List[Tuple[float, int]]:
        """(window_start_s, sink tuples) for every window in the run,
        including empty windows."""
        num_windows = int(math.ceil(duration_s / self.window_s))
        return [
            (w * self.window_s, self._sink_windows.get((topology_id, w), 0))
            for w in range(num_windows)
        ]

    def component_series(
        self, topology_id: str, component: str, duration_s: float
    ) -> List[Tuple[float, int]]:
        num_windows = int(math.ceil(duration_s / self.window_s))
        return [
            (
                w * self.window_s,
                self._component_windows.get((topology_id, component, w), 0),
            )
            for w in range(num_windows)
        ]

    def replayed_total(self, topology_id: str) -> int:
        return self._replayed.get(topology_id, 0)

    def replay_batches(self, topology_id: str) -> int:
        return self._replay_batches.get(topology_id, 0)

    def exhausted_total(self, topology_id: str) -> int:
        return self._exhausted.get(topology_id, 0)

    def exhausted_batches(self, topology_id: str) -> int:
        return self._exhausted_batches.get(topology_id, 0)

    def lost_total(self, topology_id: str) -> int:
        return self._lost.get(topology_id, 0)

    def duplicated_total(self, topology_id: str) -> int:
        return self._duplicated.get(topology_id, 0)

    def acked_total(self, topology_id: str) -> int:
        return self._acked_totals.get(topology_id, 0)

    def acked_series(
        self, topology_id: str, duration_s: float
    ) -> List[Tuple[float, int]]:
        """(window_start_s, tuples in trees acked) for every window —
        the effective (acked-once) counterpart of
        :meth:`throughput_series`."""
        num_windows = int(math.ceil(duration_s / self.window_s))
        return [
            (w * self.window_s, self._acked_windows.get((topology_id, w), 0))
            for w in range(num_windows)
        ]

    def offered_total(self, topology_id: str) -> int:
        return self._offered_totals.get(topology_id, 0)

    def arrivals_dropped_total(self, topology_id: str) -> int:
        return self._arrivals_dropped.get(topology_id, 0)

    def offered_series(
        self, topology_id: str, duration_s: float
    ) -> List[Tuple[float, int]]:
        """(window_start_s, offered tuples) for every window — the
        open-loop counterpart of :meth:`throughput_series`."""
        num_windows = int(math.ceil(duration_s / self.window_s))
        return [
            (w * self.window_s, self._offered_windows.get((topology_id, w), 0))
            for w in range(num_windows)
        ]

    def e2e_digest(self, topology_id: str) -> Optional[TailDigest]:
        """The end-to-end latency digest, or ``None`` if no open-loop
        batch has fully acked for this topology."""
        return self._e2e_digests.get(topology_id)

    def merged_e2e_digest(
        self, topology_ids: List[str]
    ) -> Optional[TailDigest]:
        """One digest over the end-to-end latencies of several
        topologies (per-tenant tail rollups), or ``None`` when none of
        them has acked an open-loop batch.  Sources are not mutated."""
        digests = [
            digest
            for digest in (self._e2e_digests.get(t) for t in topology_ids)
            if digest is not None
        ]
        if not digests:
            return None
        return TailDigest.merged(digests)

    def crash_total(self, topology_id: str) -> int:
        return sum(
            count
            for (topo, _), count in self._crashes.items()
            if topo == topology_id
        )

    def crashes_by_component(self, topology_id: str) -> Dict[str, int]:
        return {
            comp: count
            for (topo, comp), count in self._crashes.items()
            if topo == topology_id
        }

    def shed_total(self, topology_id: str) -> int:
        return self._shed_totals.get(topology_id, 0)

    def shed_batches(self, topology_id: str) -> int:
        return self._shed_batches.get(topology_id, 0)

    def shed_by_stage(self, topology_id: str) -> Dict[str, int]:
        return {
            stage: tuples
            for (topo, stage), tuples in sorted(self._shed_stages.items())
            if topo == topology_id
        }

    def shed_by_component(self, topology_id: str) -> Dict[str, int]:
        return {
            comp: tuples
            for (topo, comp), tuples in sorted(self._shed_components.items())
            if topo == topology_id
        }

    def shed_snapshot(self) -> Dict[Tuple[str, str], int]:
        """Copy of per-(topology, component) shed-tuple totals — the
        elastic controller diffs consecutive snapshots to recover the
        demand the shedding policy hid from the backlog signal."""
        return dict(self._shed_components)

    def shed_series(
        self, topology_id: str, duration_s: float
    ) -> List[Tuple[float, int]]:
        """(window_start_s, shed tuples) for every window — alongside
        :meth:`offered_series` this is the achieved-vs-offered picture
        under overload protection."""
        num_windows = int(math.ceil(duration_s / self.window_s))
        return [
            (w * self.window_s, self._shed_windows.get((topology_id, w), 0))
            for w in range(num_windows)
        ]

    def credit_stalls(self, topology_id: str) -> Dict[Tuple[str, str], int]:
        """Per-edge stall counts: (producer, consumer) -> stalls."""
        return {
            (producer, consumer): count
            for (topo, producer, consumer), count in sorted(
                self._credit_stalls.items()
            )
            if topo == topology_id
        }

    def credit_stall_total(self, topology_id: str) -> int:
        return sum(
            count
            for (topo, _, _), count in self._credit_stalls.items()
            if topo == topology_id
        )

    def spout_throttled_s(self, topology_id: str) -> float:
        return self._spout_throttled.get(topology_id, 0.0)

    def topologies_seen(self) -> List[str]:
        seen = set(self._sink_totals) | set(self._emitted)
        return sorted(seen)
