"""Flow control: bounded queues, credit backpressure, load shedding.

The open-loop traffic experiments (PR 6) showed what happens without
flow control: past 1x offered load, queues grow without bound, p99
end-to-end latency diverges, and eventually workers die of queue
overflow.  This module is the missing robustness layer — the simulated
counterpart of Storm 1.x backpressure plus DRS-style load shedding:

* **Bounded input queues.**  Every executor's input queue gets a
  capacity (``queue_capacity`` batches).  Queue occupancy is the credit
  currency below; nothing is ever silently discarded because of the
  bound alone — what happens at the bound is the shedding policy's
  decision.
* **Credit-based backpressure.**  Every edge (producer component ->
  consumer component) of a topology carries a :class:`CreditLedger`
  sized to the total queue capacity of its consumer tasks.  Routing a
  batch consumes one credit; the batch leaving the consumer's queue
  (serviced or shed) returns it.  When an edge's outstanding credit
  crosses the **high watermark**, the producer component *stalls*:
  bolts stop draining their own input queues (so pressure propagates
  upstream edge-by-edge), and spouts stop emitting.  When the edge
  drains back under the **low watermark**, the producer resumes.  The
  watermark gap is the hysteresis that prevents stall/resume flapping.
* **Load shedding.**  A pluggable policy chain decides what happens to
  a batch arriving at a full queue: ``none`` (never shed — backpressure
  only; queues can still overshoot by in-flight deliveries), ``tail-drop``
  (shed at capacity), or ``priority`` (shed *earlier* for low-priority
  tenants, so gold traffic sheds last; thresholds come from the tenant
  registry via :func:`tenant_priorities`).  Every shed batch lands in
  an auditable :class:`ShedLedger` entry and the delivery-audit closure
  is extended — every origin is acked, failed, exhausted **or shed**,
  never silently dropped.

Everything here is opt-in: ``SimulationConfig.flow`` defaults to
``None`` and the runtime's disabled path is byte-identical (CI-asserted
by the ``backpressure`` smoke scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "FlowControlConfig",
    "CreditLedger",
    "ShedLedger",
    "ShedRecord",
    "SheddingPolicy",
    "make_policy",
    "tenant_priorities",
    "SHEDDING_POLICIES",
]

#: Recognised shedding policy names, in escalation order.
SHEDDING_POLICIES = ("none", "tail-drop", "priority")

#: Priority shedding: the *lowest*-priority tenants shed from this
#: fraction of queue capacity; the highest shed only at capacity.
_PRIORITY_FLOOR = 0.5


@dataclass(frozen=True)
class FlowControlConfig:
    """Opt-in flow-control knobs (``simulation.flow.*``).

    Attributes:
        queue_capacity: Bounded input-queue size per executor, in
            batches.  Also the per-consumer contribution to each edge's
            credit pool.
        high_watermark: Edge occupancy fraction (outstanding credits /
            pool size) at which the producing component stalls.
        low_watermark: Occupancy fraction at which a stalled producer
            resumes.  Must be below ``high_watermark`` — the gap is the
            stall/resume hysteresis.
        shedding: ``none`` | ``tail-drop`` | ``priority`` (see module
            docstring).
        priorities: ``(topology_id, priority)`` pairs consulted by the
            ``priority`` policy (higher priority sheds later).
            Topologies absent from the map shed only at full capacity,
            like ``tail-drop``.  Build from a tenant registry with
            :func:`tenant_priorities`.
        shed_ledger_capacity: Most recent shed records kept for audit
            (totals are exact regardless).
    """

    queue_capacity: int = 64
    high_watermark: float = 0.8
    low_watermark: float = 0.4
    shedding: str = "none"
    priorities: Tuple[Tuple[str, int], ...] = ()
    shed_ledger_capacity: int = 10_000

    def __post_init__(self) -> None:
        if not isinstance(self.queue_capacity, int) or isinstance(
            self.queue_capacity, bool
        ) or self.queue_capacity < 1:
            raise ConfigError("flow queue_capacity must be an int >= 1")
        if not 0.0 < self.high_watermark <= 1.0:
            raise ConfigError("flow high_watermark must be in (0, 1]")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ConfigError(
                "flow low_watermark must be in [0, high_watermark)"
            )
        if self.shedding not in SHEDDING_POLICIES:
            raise ConfigError(
                f"flow shedding must be one of {SHEDDING_POLICIES}, "
                f"got {self.shedding!r}"
            )
        for pair in self.priorities:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
                or not isinstance(pair[1], int)
                or isinstance(pair[1], bool)
            ):
                raise ConfigError(
                    "flow priorities must be (topology_id, int) pairs, "
                    f"got {pair!r}"
                )
        if not isinstance(self.shed_ledger_capacity, int) or isinstance(
            self.shed_ledger_capacity, bool
        ) or self.shed_ledger_capacity < 1:
            raise ConfigError("flow shed_ledger_capacity must be >= 1")


def tenant_priorities(
    tenants: Dict[str, object], owners: Dict[str, str]
) -> Tuple[Tuple[str, int], ...]:
    """Topology -> tenant-priority pairs for ``priority`` shedding.

    Args:
        tenants: ``tenant_id -> Tenant`` registry (anything with a
            ``priority`` attribute works).
        owners: ``topology_id -> tenant_id`` ownership map, e.g.
            :meth:`repro.nimbus.tenancy.TenancyController.owners`.

    Topologies owned by an unregistered tenant are skipped (they shed
    at full capacity, like ``tail-drop``).
    """
    pairs = []
    for topology_id in sorted(owners):
        tenant = tenants.get(owners[topology_id])
        if tenant is not None:
            pairs.append((topology_id, int(tenant.priority)))
    return tuple(pairs)


class CreditLedger:
    """Per-edge credit accounting — the backpressure state machine.

    The ledger tracks ``outstanding`` batches on one producer->consumer
    edge: a *send* consumes a credit, a *drain* (the batch leaving the
    consumer's queue, serviced or shed) returns it.  Conservation
    invariant, property-tested with hypothesis::

        sends == drains + outstanding     and     outstanding >= 0

    Watermark semantics: the edge *stalls* its producer when occupancy
    (``outstanding / pool``) reaches ``high_watermark`` and *resumes* it
    when occupancy falls back to ``low_watermark``.  ``outstanding`` may
    legitimately exceed the stall threshold — and even the pool — by
    deliveries that were already in flight on the wire when the producer
    stalled; they are accounted, never lost.
    """

    __slots__ = (
        "pool", "outstanding", "sends", "drains", "stalled",
        "stall_count", "_stall_at", "_resume_at",
    )

    def __init__(self, pool: int, high_watermark: float,
                 low_watermark: float):
        if pool < 1:
            raise ValueError("credit pool must be >= 1")
        self.pool = pool
        self.outstanding = 0
        self.sends = 0
        self.drains = 0
        self.stalled = False
        self.stall_count = 0
        # Precomputed batch thresholds; >= _stall_at stalls, <=
        # _resume_at resumes.  _stall_at is at least 1 so a pool-of-one
        # edge still stalls, and _resume_at is strictly below _stall_at
        # (hysteresis) because low_watermark < high_watermark.
        self._stall_at = max(1, int(round(pool * high_watermark)))
        self._resume_at = min(
            int(pool * low_watermark), self._stall_at - 1
        )

    def send(self) -> bool:
        """Consume one credit; True when this send stalls the edge."""
        self.sends += 1
        self.outstanding += 1
        if not self.stalled and self.outstanding >= self._stall_at:
            self.stalled = True
            self.stall_count += 1
            return True
        return False

    def drain(self) -> bool:
        """Return one credit; True when this drain resumes the edge."""
        self.drains += 1
        self.outstanding -= 1
        if self.outstanding < 0:  # pragma: no cover - invariant guard
            raise ValueError("edge drained more credits than were sent")
        if self.stalled and self.outstanding <= self._resume_at:
            self.stalled = False
            return True
        return False

    @property
    def available(self) -> int:
        """Credits left before the pool is fully consumed (may go
        negative for in-flight overshoot; see class docstring)."""
        return self.pool - self.outstanding

    def conserved(self) -> bool:
        """The conservation invariant (for tests/audits)."""
        return (
            self.sends == self.drains + self.outstanding
            and self.outstanding >= 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CreditLedger(pool={self.pool}, outstanding={self.outstanding},"
            f" stalled={self.stalled})"
        )


@dataclass(frozen=True)
class ShedRecord:
    """One audited shed decision (plain data, picklable)."""

    time_s: float
    topology_id: str
    component: str
    #: ``ingress`` (dropped at the spout before emission) or ``queue``
    #: (dropped at a full bolt queue; the tuple tree resolves as shed).
    stage: str
    tuples: int
    #: the policy that made the call (``tail-drop`` | ``priority``)
    policy: str


class ShedLedger:
    """Bounded audit log of shed decisions with exact totals.

    The record ring keeps the most recent ``capacity`` entries; the
    totals never truncate, so the delivery-audit closure is exact even
    on runs that shed millions of tuples.
    """

    __slots__ = ("capacity", "records", "total_tuples", "total_batches",
                 "dropped_records")

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError("shed ledger capacity must be >= 1")
        self.capacity = capacity
        self.records: List[ShedRecord] = []
        self.total_tuples = 0
        self.total_batches = 0
        #: records evicted from the bounded ring (totals still count them)
        self.dropped_records = 0

    def record(self, entry: ShedRecord) -> None:
        self.total_tuples += entry.tuples
        self.total_batches += 1
        if len(self.records) >= self.capacity:
            del self.records[0]
            self.dropped_records += 1
        self.records.append(entry)


@dataclass(frozen=True)
class SheddingPolicy:
    """Threshold-based shedding decision for one topology's queues.

    ``threshold(topology_id)`` returns the occupancy (in batches, against
    ``queue_capacity``) at which a batch bound for that topology is shed;
    ``None`` means never shed (the ``none`` policy).  The ``priority``
    policy maps tenant priority rank onto a threshold between
    ``_PRIORITY_FLOOR * capacity`` (lowest priority — sheds first) and
    ``capacity`` (highest priority — sheds last, like ``tail-drop``).
    """

    name: str
    capacity: int
    #: topology_id -> shed threshold in batches (missing -> default)
    thresholds: Dict[str, int] = field(default_factory=dict)

    def threshold(self, topology_id: str) -> Optional[int]:
        if self.name == "none":
            return None
        return self.thresholds.get(topology_id, self.capacity)

    def should_shed(self, topology_id: str, occupancy: int) -> bool:
        """Shed a batch arriving while ``occupancy`` batches queue?"""
        cut = self.threshold(topology_id)
        return cut is not None and occupancy >= cut


def make_policy(config: FlowControlConfig) -> SheddingPolicy:
    """Build the configured shedding policy.

    For ``priority``, tenant priorities are normalised by rank: with
    priorities ``{0, 1, 2}`` registered, priority-0 topologies shed at
    50% occupancy, priority-1 at 75%, priority-2 only when full — gold
    sheds last.  A single registered priority class (or none) behaves
    exactly like ``tail-drop``.
    """
    capacity = config.queue_capacity
    if config.shedding != "priority" or not config.priorities:
        return SheddingPolicy(name=config.shedding, capacity=capacity)
    top = max(priority for _, priority in config.priorities)
    thresholds: Dict[str, int] = {}
    for topology_id, priority in config.priorities:
        rank = (priority + 1) / (top + 1)  # (0, 1], 1.0 for the top class
        span = _PRIORITY_FLOOR + (1.0 - _PRIORITY_FLOOR) * rank
        thresholds[topology_id] = max(1, int(round(capacity * span)))
    return SheddingPolicy(
        name="priority", capacity=capacity, thresholds=thresholds
    )
