"""Network transfer model for the simulator.

Transfers pay (a) a locality-dependent latency and (b) serialisation
through shared links: the sender's NIC, the receiver's NIC, and — for
cross-rack traffic — the aggregated inter-rack uplink.  Intra-node
communication (intra/inter-process) is an in-memory hand-off: latency
only, no link occupancy.

The model is a store-and-forward pipeline: a transfer holds the sender
NIC, then the uplink, then the receiver NIC, each for that link's own
serialisation time.  Remote traffic therefore costs real, contended
bandwidth at every hop, while local traffic is nearly free — the property
the paper's evaluation depends on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel

__all__ = ["TransferModel"]


class TransferModel:
    """Tracks link occupancy and computes batch arrival times."""

    def __init__(self, cluster: Cluster, interrack_uplink_mbps: Optional[float] = None):
        """
        Args:
            cluster: Supplies the topography (latency/bandwidth per level).
            interrack_uplink_mbps: Aggregate capacity of the shared link
                between any rack pair.  Defaults to 10x the per-node NIC
                bandwidth — a switched fabric whose trunk is faster than
                any single host, as in the paper's Emulab VLANs (the 4 ms
                RTT there is emulated delay, not a thin pipe).
        """
        self.cluster = cluster
        topo = cluster.topography
        inter_rack_bw = topo.bandwidth_mbps(DistanceLevel.INTER_RACK)
        if interrack_uplink_mbps is not None:
            self.interrack_uplink_mbps = interrack_uplink_mbps
        elif inter_rack_bw is not None:
            self.interrack_uplink_mbps = 10.0 * inter_rack_bw
        else:
            self.interrack_uplink_mbps = None
        self._nic_tx_free: Dict[str, float] = {}
        self._nic_rx_free: Dict[str, float] = {}
        self._uplink_free: Dict[FrozenSet[str], float] = {}
        #: rack-pair -> bandwidth multiplier from injected link faults
        #: (1.0 = healthy, 0.1 = the trunk lost 90% of its capacity).
        self._uplink_scale: Dict[FrozenSet[str], float] = {}

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _serialisation_s(num_bytes: int, bandwidth_mbps: Optional[float]) -> float:
        if bandwidth_mbps is None or bandwidth_mbps <= 0:
            return 0.0
        return (num_bytes * 8.0) / (bandwidth_mbps * 1e6)

    # -- fault injection -----------------------------------------------------

    def set_uplink_scale(self, rack_a: str, rack_b: str, scale: float) -> None:
        """Scale the effective bandwidth of one rack pair's uplink.

        ``scale`` multiplies the healthy uplink capacity: values below 1
        model a degraded trunk, 1.0 restores it.  Only future transfers
        are affected; bytes already serialising keep their booked times.
        """
        if scale <= 0:
            raise ValueError(f"uplink scale must be positive, got {scale}")
        key = frozenset((rack_a, rack_b))
        if scale == 1.0:
            self._uplink_scale.pop(key, None)
        else:
            self._uplink_scale[key] = scale

    def uplink_scale(self, rack_a: str, rack_b: str) -> float:
        return self._uplink_scale.get(frozenset((rack_a, rack_b)), 1.0)

    # -- main API ------------------------------------------------------------

    def transfer(
        self,
        now: float,
        src_node: str,
        dst_node: str,
        level: DistanceLevel,
        num_bytes: int,
    ) -> float:
        """Book a transfer and return its arrival time.

        Mutates link free-times, so calls must be made in simulation-time
        order (which the DES guarantees).
        """
        topo = self.cluster.topography
        latency_s = topo.latency_ms(level) / 1e3
        if level in (DistanceLevel.INTRA_PROCESS, DistanceLevel.INTER_PROCESS):
            return now + latency_s

        nic_bw = topo.bandwidth_mbps(level)
        nic_duration = self._serialisation_s(num_bytes, nic_bw)

        # Store-and-forward pipeline: the sender NIC, the (cross-rack)
        # uplink and the receiver NIC are held one after another, each for
        # its own serialisation time, so a fat uplink genuinely carries
        # more aggregate traffic than one NIC.
        start_tx = max(now, self._nic_tx_free.get(src_node, 0.0))
        end_tx = start_tx + nic_duration
        self._nic_tx_free[src_node] = end_tx

        end_hop = end_tx
        if level is DistanceLevel.INTER_RACK:
            rack_a = self.cluster.node(src_node).rack_id
            rack_b = self.cluster.node(dst_node).rack_id
            uplink_key = frozenset((rack_a, rack_b))
            uplink_mbps = self.interrack_uplink_mbps
            scale = self._uplink_scale.get(uplink_key)
            if uplink_mbps is not None and scale is not None:
                uplink_mbps = uplink_mbps * scale
            uplink_duration = self._serialisation_s(num_bytes, uplink_mbps)
            start_up = max(end_tx, self._uplink_free.get(uplink_key, 0.0))
            end_hop = start_up + uplink_duration
            self._uplink_free[uplink_key] = end_hop

        start_rx = max(end_hop, self._nic_rx_free.get(dst_node, 0.0))
        end_rx = start_rx + nic_duration
        self._nic_rx_free[dst_node] = end_rx
        return end_rx + latency_s

    # -- introspection ---------------------------------------------------------

    def nic_tx_free_at(self, node_id: str) -> float:
        return self._nic_tx_free.get(node_id, 0.0)

    def nic_rx_free_at(self, node_id: str) -> float:
        return self._nic_rx_free.get(node_id, 0.0)

    def uplink_free_at(self, rack_a: str, rack_b: str) -> float:
        return self._uplink_free.get(frozenset((rack_a, rack_b)), 0.0)
