"""Network transfer model for the simulator.

Transfers pay (a) a locality-dependent latency and (b) serialisation
through shared links: the sender's NIC, the receiver's NIC, and — for
cross-rack traffic — the aggregated inter-rack uplink.  Intra-node
communication (intra/inter-process) is an in-memory hand-off: latency
only, no link occupancy.

The model is a store-and-forward pipeline: a transfer holds the sender
NIC, then the uplink, then the receiver NIC, each for that link's own
serialisation time.  Remote traffic therefore costs real, contended
bandwidth at every hop, while local traffic is nearly free — the property
the paper's evaluation depends on.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel

__all__ = ["TransferModel"]


class TransferModel:
    """Tracks link occupancy and computes batch arrival times.

    The per-level latency and bandwidth figures are immutable for the
    lifetime of a run, so they are precomputed into flat lists indexed
    by :class:`DistanceLevel` (an ``IntEnum``) — the transfer hot path
    does no topography method calls.  The cached values feed *exactly*
    the same float expressions as before, keeping arrival times
    bit-identical to the unoptimised model.
    """

    __slots__ = (
        "cluster",
        "interrack_uplink_mbps",
        "_nic_tx_free",
        "_nic_rx_free",
        "_uplink_free",
        "_uplink_scale",
        "_latency_s",
        "_bw_scaled",
        "_uplink_bw_scaled",
        "_rack_of",
        "_link_loss",
        "lossy",
    )

    def __init__(self, cluster: Cluster, interrack_uplink_mbps: Optional[float] = None):
        """
        Args:
            cluster: Supplies the topography (latency/bandwidth per level).
            interrack_uplink_mbps: Aggregate capacity of the shared link
                between any rack pair.  Defaults to 10x the per-node NIC
                bandwidth — a switched fabric whose trunk is faster than
                any single host, as in the paper's Emulab VLANs (the 4 ms
                RTT there is emulated delay, not a thin pipe).
        """
        self.cluster = cluster
        topo = cluster.topography
        inter_rack_bw = topo.bandwidth_mbps(DistanceLevel.INTER_RACK)
        if interrack_uplink_mbps is not None:
            self.interrack_uplink_mbps = interrack_uplink_mbps
        elif inter_rack_bw is not None:
            self.interrack_uplink_mbps = 10.0 * inter_rack_bw
        else:
            self.interrack_uplink_mbps = None
        self._nic_tx_free: Dict[str, float] = {}
        self._nic_rx_free: Dict[str, float] = {}
        self._uplink_free: Dict[FrozenSet[str], float] = {}
        #: rack-pair -> bandwidth multiplier from injected link faults
        #: (1.0 = healthy, 0.1 = the trunk lost 90% of its capacity).
        self._uplink_scale: Dict[FrozenSet[str], float] = {}
        #: per-level one-way latency in seconds, indexed by DistanceLevel.
        self._latency_s = [topo.latency_ms(level) / 1e3 for level in DistanceLevel]
        #: per-level NIC bandwidth pre-scaled to bits/s (0.0 = unlimited),
        #: so serialisation stays ``(bytes * 8.0) / bw_scaled`` verbatim.
        self._bw_scaled = [
            bw * 1e6 if (bw := topo.bandwidth_mbps(level)) and bw > 0 else 0.0
            for level in DistanceLevel
        ]
        uplink = self.interrack_uplink_mbps
        self._uplink_bw_scaled = uplink * 1e6 if uplink and uplink > 0 else 0.0
        #: node id -> rack id, filled lazily (nodes may join mid-run).
        self._rack_of: Dict[str, str] = {}
        #: rack-pair -> (drop probability, duplicate probability, rng)
        #: from injected message-loss faults; empty on healthy links.
        self._link_loss: Dict[
            FrozenSet[str], Tuple[float, float, random.Random]
        ] = {}
        #: hot-path flag: the runtime consults per-delivery fates only
        #: while at least one lossy link is configured, so healthy runs
        #: pay a single falsy check per routed batch.
        self.lossy = False

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _serialisation_s(num_bytes: int, bandwidth_mbps: Optional[float]) -> float:
        if bandwidth_mbps is None or bandwidth_mbps <= 0:
            return 0.0
        return (num_bytes * 8.0) / (bandwidth_mbps * 1e6)

    # -- fault injection -----------------------------------------------------

    def set_uplink_scale(self, rack_a: str, rack_b: str, scale: float) -> None:
        """Scale the effective bandwidth of one rack pair's uplink.

        ``scale`` multiplies the healthy uplink capacity: values below 1
        model a degraded trunk, 1.0 restores it.  Only future transfers
        are affected; bytes already serialising keep their booked times.
        """
        if scale <= 0:
            raise ValueError(f"uplink scale must be positive, got {scale}")
        key = frozenset((rack_a, rack_b))
        if scale == 1.0:
            self._uplink_scale.pop(key, None)
        else:
            self._uplink_scale[key] = scale

    def uplink_scale(self, rack_a: str, rack_b: str) -> float:
        return self._uplink_scale.get(frozenset((rack_a, rack_b)), 1.0)

    def set_link_loss(
        self,
        rack_a: str,
        rack_b: str,
        drop_probability: float,
        duplicate_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Make the rack-pair trunk lossy (and/or duplicating).

        Each batch crossing the link is independently dropped with
        ``drop_probability`` or — if it survives — duplicated with
        ``duplicate_probability``.  Fates are drawn from ``rng``, which
        the caller seeds; the DES books transfers in simulation-time
        order, so a fixed seed gives a byte-identical fate sequence.
        Passing both probabilities as 0 heals the link.
        """
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                "duplicate probability must be in [0, 1), got "
                f"{duplicate_probability}"
            )
        key = frozenset((rack_a, rack_b))
        if drop_probability == 0.0 and duplicate_probability == 0.0:
            self._link_loss.pop(key, None)
        else:
            self._link_loss[key] = (
                drop_probability,
                duplicate_probability,
                rng if rng is not None else random.Random(0),
            )
        self.lossy = bool(self._link_loss)

    def clear_link_loss(self, rack_a: str, rack_b: str) -> None:
        """Heal a lossy link (idempotent)."""
        self._link_loss.pop(frozenset((rack_a, rack_b)), None)
        self.lossy = bool(self._link_loss)

    def copies(self, src_node: str, dst_node: str, level: DistanceLevel) -> int:
        """Delivery fate of one batch: 0 = lost, 1 = delivered, 2 =
        delivered twice (duplicated).  Only inter-rack transfers over a
        configured lossy link can lose or duplicate; everything else is
        exactly-once at the network layer."""
        if level is not DistanceLevel.INTER_RACK or not self._link_loss:
            return 1
        rack_of = self._rack_of
        rack_a = rack_of.get(src_node)
        if rack_a is None:
            rack_a = rack_of[src_node] = self.cluster.node(src_node).rack_id
        rack_b = rack_of.get(dst_node)
        if rack_b is None:
            rack_b = rack_of[dst_node] = self.cluster.node(dst_node).rack_id
        entry = self._link_loss.get(frozenset((rack_a, rack_b)))
        if entry is None:
            return 1
        drop_p, dup_p, rng = entry
        if drop_p and rng.random() < drop_p:
            return 0
        if dup_p and rng.random() < dup_p:
            return 2
        return 1

    # -- main API ------------------------------------------------------------

    def transfer(
        self,
        now: float,
        src_node: str,
        dst_node: str,
        level: DistanceLevel,
        num_bytes: int,
    ) -> float:
        """Book a transfer and return its arrival time.

        Mutates link free-times, so calls must be made in simulation-time
        order (which the DES guarantees).
        """
        latency_s = self._latency_s[level]
        if level < DistanceLevel.INTER_NODE:
            # intra/inter-process: in-memory hand-off, latency only.
            return now + latency_s

        bw_scaled = self._bw_scaled[level]
        nic_duration = (num_bytes * 8.0) / bw_scaled if bw_scaled else 0.0

        # Store-and-forward pipeline: the sender NIC, the (cross-rack)
        # uplink and the receiver NIC are held one after another, each for
        # its own serialisation time, so a fat uplink genuinely carries
        # more aggregate traffic than one NIC.
        tx_free = self._nic_tx_free.get(src_node, 0.0)
        start_tx = now if now >= tx_free else tx_free
        end_tx = start_tx + nic_duration
        self._nic_tx_free[src_node] = end_tx

        end_hop = end_tx
        if level is DistanceLevel.INTER_RACK:
            rack_of = self._rack_of
            rack_a = rack_of.get(src_node)
            if rack_a is None:
                rack_a = rack_of[src_node] = self.cluster.node(src_node).rack_id
            rack_b = rack_of.get(dst_node)
            if rack_b is None:
                rack_b = rack_of[dst_node] = self.cluster.node(dst_node).rack_id
            uplink_key = frozenset((rack_a, rack_b))
            scale = self._uplink_scale.get(uplink_key)
            if scale is None:
                up_scaled = self._uplink_bw_scaled
            elif self.interrack_uplink_mbps is not None:
                # rare fault-injected path: keep the historical float
                # expression ((mbps * scale) * 1e6) bit-for-bit.
                up_scaled = (self.interrack_uplink_mbps * scale) * 1e6
            else:
                up_scaled = 0.0
            uplink_duration = (num_bytes * 8.0) / up_scaled if up_scaled else 0.0
            up_free = self._uplink_free.get(uplink_key, 0.0)
            start_up = end_tx if end_tx >= up_free else up_free
            end_hop = start_up + uplink_duration
            self._uplink_free[uplink_key] = end_hop

        rx_free = self._nic_rx_free.get(dst_node, 0.0)
        start_rx = end_hop if end_hop >= rx_free else rx_free
        end_rx = start_rx + nic_duration
        self._nic_rx_free[dst_node] = end_rx
        return end_rx + latency_s

    # -- introspection ---------------------------------------------------------

    def nic_tx_free_at(self, node_id: str) -> float:
        return self._nic_tx_free.get(node_id, 0.0)

    def nic_rx_free_at(self, node_id: str) -> float:
        return self._nic_rx_free.get(node_id, 0.0)

    def uplink_free_at(self, rack_a: str, rack_b: str) -> float:
        return self._uplink_free.get(frozenset((rack_a, rack_b)), 0.0)
