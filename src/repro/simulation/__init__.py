"""Discrete-event Storm runtime simulator."""

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.export import (
    report_as_dict,
    throughput_series_csv,
    write_report_json,
    write_throughput_series_csv,
)
from repro.simulation.metrics import StatisticServer
from repro.simulation.network import TransferModel
from repro.simulation.report import LatencyStats, SimulationReport
from repro.simulation.runtime import SimulationRun
from repro.simulation.tracing import TraceEvent, Tracer

__all__ = [
    "LatencyStats",
    "SimulationConfig",
    "SimulationReport",
    "SimulationRun",
    "Simulator",
    "StatisticServer",
    "TraceEvent",
    "Tracer",
    "TransferModel",
    "report_as_dict",
    "throughput_series_csv",
    "write_report_json",
    "write_throughput_series_csv",
]
