"""Simulation reports — derived metric views.

Wraps a :class:`~repro.simulation.metrics.StatisticServer` with the
aggregations the paper reports: average throughput per 10-second window
(post-warmup), throughput time series, and average CPU utilisation over
the machines a topology actually uses (Figure 10's metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import StatisticServer
from repro.traffic.percentiles import TailDigest

__all__ = ["SimulationReport", "LatencyStats", "TailLatency"]


@dataclass(frozen=True)
class LatencyStats:
    """Ack (complete) latency summary in seconds."""

    count: int
    mean: float
    p50: float
    p99: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p99=0.0)
        ordered = sorted(samples)

        def percentile(p: float) -> float:
            idx = min(len(ordered) - 1, max(0, int(math.ceil(p * len(ordered))) - 1))
            return ordered[idx]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(0.50),
            p99=percentile(0.99),
        )


@dataclass(frozen=True)
class TailLatency:
    """End-to-end (arrival -> full ack) latency summary in seconds,
    estimated from a bounded-memory :class:`TailDigest` — the open-loop
    metric the mean hides: past saturation p999 explodes first."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float

    @classmethod
    def from_digest(cls, digest: Optional[TailDigest]) -> "TailLatency":
        if digest is None or digest.count == 0:
            return cls(count=0, mean=0.0, p50=0.0, p99=0.0, p999=0.0)
        return cls(
            count=digest.count,
            mean=digest.mean(),
            p50=digest.quantile(0.50),
            p99=digest.quantile(0.99),
            p999=digest.quantile(0.999),
        )


@dataclass
class SimulationReport:
    """Metrics view over one finished (or in-progress) simulation."""

    config: SimulationConfig
    stats: StatisticServer
    duration_s: float
    topology_ids: List[str]
    nodes_used: Dict[str, Tuple[str, ...]]
    node_cores: Dict[str, int]
    events_processed: int = 0

    # -- throughput -----------------------------------------------------------

    def throughput_series(self, topology_id: str) -> List[Tuple[float, int]]:
        """(window_start_s, sink tuples in window) for the whole run."""
        return self.stats.throughput_series(topology_id, self.duration_s)

    def component_series(
        self, topology_id: str, component: str
    ) -> List[Tuple[float, int]]:
        return self.stats.component_series(topology_id, component, self.duration_s)

    def _steady_windows(self, topology_id: str) -> List[int]:
        """Window values after warmup, excluding a trailing partial window."""
        values = []
        for start, tuples in self.throughput_series(topology_id):
            if start < self.config.warmup_s:
                continue
            if start + self.config.window_s > self.duration_s + 1e-9:
                continue
            values.append(tuples)
        return values

    def average_throughput_per_window(self, topology_id: str) -> float:
        """Mean sink tuples per metrics window after warmup — the paper's
        headline number (tuples per 10 seconds)."""
        values = self._steady_windows(topology_id)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def average_throughput_tps(self, topology_id: str) -> float:
        """Mean sink tuples per second after warmup."""
        return self.average_throughput_per_window(topology_id) / self.config.window_s

    # -- counters ----------------------------------------------------------------

    def emitted(self, topology_id: str) -> int:
        return self.stats.emitted_total(topology_id)

    def sunk(self, topology_id: str) -> int:
        return self.stats.sink_total(topology_id)

    def failed(self, topology_id: str) -> int:
        return self.stats.failed_total(topology_id)

    def crashes(self, topology_id: str) -> int:
        """Worker crashes from queue overflow during the run."""
        return self.stats.crash_total(topology_id)

    # -- delivery semantics (at-least-once layer) ---------------------------------

    def replayed(self, topology_id: str) -> int:
        """Tuples re-emitted by spouts replaying timed-out trees."""
        return self.stats.replayed_total(topology_id)

    def exhausted(self, topology_id: str) -> int:
        """Tuples in trees explicitly given up on after ``max_retries``."""
        return self.stats.exhausted_total(topology_id)

    def lost(self, topology_id: str) -> int:
        """Tuples dropped on the wire by message-loss faults."""
        return self.stats.lost_total(topology_id)

    def duplicated(self, topology_id: str) -> int:
        """Tuples duplicated on the wire by message-loss faults."""
        return self.stats.duplicated_total(topology_id)

    def replay_amplification(self, topology_id: str) -> float:
        """(emitted + replayed) / emitted — 1.0 means no replay traffic;
        the overhead factor at-least-once delivery pays under faults."""
        emitted = self.emitted(topology_id)
        if emitted <= 0:
            return 1.0
        return (emitted + self.replayed(topology_id)) / emitted

    def duplicate_rate(self, topology_id: str) -> float:
        """Wire-duplicated tuples as a fraction of emitted tuples."""
        emitted = self.emitted(topology_id)
        if emitted <= 0:
            return 0.0
        return self.duplicated(topology_id) / emitted

    def effective_throughput_series(
        self, topology_id: str
    ) -> List[Tuple[float, int]]:
        """(window_start_s, tuples in trees acked in window): *effective*
        (acked-exactly-once) throughput, vs the raw sink series that
        counts replays and ghost duplicates twice."""
        return self.stats.acked_series(topology_id, self.duration_s)

    def effective_throughput_per_window(self, topology_id: str) -> float:
        """Mean acked tuples per window after warmup (trailing partial
        window excluded) — the delivery-layer counterpart of
        :meth:`average_throughput_per_window`."""
        values = []
        for start, tuples in self.effective_throughput_series(topology_id):
            if start < self.config.warmup_s:
                continue
            if start + self.config.window_s > self.duration_s + 1e-9:
                continue
            values.append(tuples)
        if not values:
            return 0.0
        return sum(values) / len(values)

    # -- open-loop traffic --------------------------------------------------------

    def offered(self, topology_id: str) -> int:
        """Total tuples the arrival process offered (open loop only)."""
        return self.stats.offered_total(topology_id)

    def arrivals_dropped(self, topology_id: str) -> int:
        """Tuples that arrived while their spout's worker was down."""
        return self.stats.arrivals_dropped_total(topology_id)

    def offered_series(self, topology_id: str) -> List[Tuple[float, int]]:
        """(window_start_s, offered tuples) for the whole run."""
        return self.stats.offered_series(topology_id, self.duration_s)

    def offered_per_window(self, topology_id: str) -> float:
        """Mean offered tuples per metrics window after warmup
        (trailing partial window excluded) — what the run was asked to
        sustain, vs :meth:`average_throughput_per_window` (what it did)."""
        values = []
        for start, tuples in self.offered_series(topology_id):
            if start < self.config.warmup_s:
                continue
            if start + self.config.window_s > self.duration_s + 1e-9:
                continue
            values.append(tuples)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def achieved_ratio(self, topology_id: str) -> float:
        """Steady-state sink throughput over offered load.

        ~1.0 while the placement keeps up; falls below 1.0 past
        saturation (queues absorb the difference until workers crash).
        0.0 when nothing was offered.
        """
        offered = self.offered_per_window(topology_id)
        if offered <= 0:
            return 0.0
        return self.average_throughput_per_window(topology_id) / offered

    def e2e_latency(self, topology_id: str) -> TailLatency:
        """End-to-end (arrival -> full ack) latency percentiles."""
        return TailLatency.from_digest(self.stats.e2e_digest(topology_id))

    # -- flow control (backpressure + shedding layer) -----------------------------

    def shed(self, topology_id: str) -> int:
        """Tuples dropped by the shedding policy (ingress + queue)."""
        return self.stats.shed_total(topology_id)

    def shed_by_stage(self, topology_id: str) -> Dict[str, int]:
        """Shed tuples split by stage (``ingress`` vs ``queue``)."""
        return self.stats.shed_by_stage(topology_id)

    def shed_rate(self, topology_id: str) -> float:
        """Shed tuples as a fraction of demand.

        Demand is offered load on open-loop runs; on closed-loop runs
        it is emitted + shed (the traffic the spouts tried to move).
        0.0 when nothing was demanded.
        """
        shed = self.shed(topology_id)
        offered = self.offered(topology_id)
        if offered > 0:
            return shed / offered
        demand = self.emitted(topology_id) + shed
        if demand <= 0:
            return 0.0
        return shed / demand

    def shed_series(self, topology_id: str) -> List[Tuple[float, int]]:
        """(window_start_s, shed tuples) for the whole run."""
        return self.stats.shed_series(topology_id, self.duration_s)

    def spout_throttled_s(self, topology_id: str) -> float:
        """Total seconds the topology's spouts spent backpressure-paused."""
        return self.stats.spout_throttled_s(topology_id)

    def credit_stalls(self, topology_id: str) -> Dict[Tuple[str, str], int]:
        """Per-edge stall counts: (producer, consumer) -> stalls."""
        return self.stats.credit_stalls(topology_id)

    def credit_stall_total(self, topology_id: str) -> int:
        """Total high-watermark stall transitions across all edges."""
        return self.stats.credit_stall_total(topology_id)

    # -- multi-tenant rollups -----------------------------------------------------

    def tenant_e2e_latency(self, topology_ids: Sequence[str]) -> TailLatency:
        """Tail latency over several topologies' merged digests — a
        tenant's p99 is over *all* its traffic, not the mean of
        per-topology percentiles."""
        return TailLatency.from_digest(
            self.stats.merged_e2e_digest(list(topology_ids))
        )

    def tenant_summary(
        self, tenant_of: Dict[str, str]
    ) -> Dict[str, Dict[str, float]]:
        """Per-tenant headline numbers from a topology->tenant mapping.

        Only topologies present in this run contribute; tenants whose
        every topology was deferred appear with zero counters so SLO
        attainment can still be reported against them.
        """
        members: Dict[str, List[str]] = {}
        for topology_id, tenant_id in tenant_of.items():
            members.setdefault(tenant_id, [])
            if topology_id in self.topology_ids:
                members[tenant_id].append(topology_id)
        out: Dict[str, Dict[str, float]] = {}
        for tenant_id in sorted(members):
            ids = sorted(members[tenant_id])
            offered = sum(self.offered_per_window(t) for t in ids)
            achieved = sum(
                self.average_throughput_per_window(t) for t in ids
            )
            latency = self.tenant_e2e_latency(ids)
            out[tenant_id] = {
                "topologies": float(len(ids)),
                "offered_tuples_per_window": round(offered, 1),
                "achieved_tuples_per_window": round(achieved, 1),
                "achieved_ratio": round(achieved / offered, 4)
                if offered > 0
                else 0.0,
                "e2e_p50_ms": round(latency.p50 * 1e3, 3),
                "e2e_p99_ms": round(latency.p99 * 1e3, 3),
            }
        return out

    # -- CPU utilisation -----------------------------------------------------------

    def cpu_utilisation(self, node_id: str) -> float:
        """Busy core-seconds over available core-seconds for one node."""
        cores = self.node_cores.get(node_id, 1)
        denom = self.duration_s * cores
        if denom <= 0:
            return 0.0
        return self.stats.busy_core_seconds(node_id) / denom

    def mean_cpu_utilisation(
        self, node_ids: Optional[Sequence[str]] = None
    ) -> float:
        """Average CPU utilisation over ``node_ids``.

        Defaults to every node used by any topology in the run — "the
        machines used in the cluster", Figure 10's population.
        """
        if node_ids is None:
            used = set()
            for nodes in self.nodes_used.values():
                used.update(nodes)
            node_ids = sorted(used)
        if not node_ids:
            return 0.0
        return sum(self.cpu_utilisation(n) for n in node_ids) / len(node_ids)

    def topology_cpu_utilisation(self, topology_id: str) -> float:
        """Mean CPU utilisation over the nodes hosting ``topology_id``."""
        return self.mean_cpu_utilisation(self.nodes_used.get(topology_id, ()))

    # -- latency ------------------------------------------------------------------

    def ack_latency(self, topology_id: str) -> LatencyStats:
        return LatencyStats.from_samples(self.stats.ack_latencies(topology_id))

    # -- summary ----------------------------------------------------------------------

    def is_empty(self, topology_id: str) -> bool:
        """True when the topology moved no tuples at all this run.

        Percentile and rate rows are meaningless on a zero-tuple run —
        instead of reporting p50=0ms (which reads as "instant"), the
        summary carries an explicit ``empty`` marker.
        """
        return (
            self.emitted(topology_id) == 0
            and self.sunk(topology_id) == 0
            and self.offered(topology_id) == 0
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-topology headline numbers, ready for printing."""
        out: Dict[str, Dict[str, float]] = {}
        for topo_id in self.topology_ids:
            out[topo_id] = {
                "avg_tuples_per_window": round(
                    self.average_throughput_per_window(topo_id), 1
                ),
                "avg_tuples_per_s": round(self.average_throughput_tps(topo_id), 1),
                "emitted": float(self.emitted(topo_id)),
                "sunk": float(self.sunk(topo_id)),
                "failed": float(self.failed(topo_id)),
                "nodes_used": float(len(self.nodes_used.get(topo_id, ()))),
                "mean_cpu_utilisation": round(
                    self.topology_cpu_utilisation(topo_id), 4
                ),
                "ack_p50_ms": round(self.ack_latency(topo_id).p50 * 1e3, 3),
                "worker_crashes": float(self.crashes(topo_id)),
            }
            if self.config.at_least_once:
                # Delivery-semantics keys only appear when the layer is
                # on, keeping default summaries byte-identical.
                out[topo_id].update(
                    {
                        "effective_tuples_per_window": round(
                            self.effective_throughput_per_window(topo_id), 1
                        ),
                        "replayed": float(self.replayed(topo_id)),
                        "exhausted": float(self.exhausted(topo_id)),
                        "lost": float(self.lost(topo_id)),
                        "duplicated": float(self.duplicated(topo_id)),
                        "replay_amplification": round(
                            self.replay_amplification(topo_id), 4
                        ),
                        "duplicate_rate": round(
                            self.duplicate_rate(topo_id), 4
                        ),
                    }
                )
            if self.config.arrival_process is not None:
                # Traffic keys only appear on open-loop runs, keeping
                # default summaries byte-identical.
                latency = self.e2e_latency(topo_id)
                out[topo_id].update(
                    {
                        "offered": float(self.offered(topo_id)),
                        "offered_tuples_per_window": round(
                            self.offered_per_window(topo_id), 1
                        ),
                        "achieved_ratio": round(
                            self.achieved_ratio(topo_id), 4
                        ),
                        "arrivals_dropped": float(
                            self.arrivals_dropped(topo_id)
                        ),
                        "e2e_p50_ms": round(latency.p50 * 1e3, 3),
                        "e2e_p99_ms": round(latency.p99 * 1e3, 3),
                        "e2e_p999_ms": round(latency.p999 * 1e3, 3),
                    }
                )
            if self.config.flow is not None:
                # Flow-control keys only appear when the backpressure
                # layer is on, keeping default summaries byte-identical.
                out[topo_id].update(
                    {
                        "shed": float(self.shed(topo_id)),
                        "shed_rate": round(self.shed_rate(topo_id), 4),
                        "spout_throttled_s": round(
                            self.spout_throttled_s(topo_id), 3
                        ),
                        "credit_stalls": float(
                            self.credit_stall_total(topo_id)
                        ),
                    }
                )
            if self.is_empty(topo_id):
                # Explicit marker: latency/rate rows above are
                # placeholders, not measurements (zero-tuple run).
                out[topo_id]["empty"] = 1.0
        return out
