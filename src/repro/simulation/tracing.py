"""Structured event tracing for simulation runs.

A lightweight, opt-in trace of what happened during a run — spout
emissions, batch deliveries, acks, failures, worker crashes, migrations —
kept in a bounded ring buffer so long runs cannot exhaust memory.  Used
for debugging schedules and for tests that assert on event causality
rather than aggregate counters.

Usage::

    tracer = Tracer(capacity=50_000)
    run = SimulationRun(cluster, placements, config)
    tracer.install(run)
    run.run()
    for event in tracer.query(kind="crash"):
        print(event)

The tracer wraps the runtime's internal hooks without modifying its hot
path when not installed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes:
        time: Simulated time in seconds.
        kind: ``emit`` | ``deliver`` | ``ack`` | ``fail`` | ``crash`` |
            ``migrate`` | ``node_down`` | ``node_up`` | ``inject`` |
            ``expire`` | ``reschedule`` | ``replay`` | ``rescale`` |
            ``stall`` | ``resume`` | ``shed``.
        topology: Topology id (empty for cluster-level events).
        detail: Human-readable specifics (task, node, counts).
    """

    time: float
    kind: str
    topology: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:10.4f}s] {self.kind:9s} {self.topology} {self.detail}"


class Tracer:
    """Bounded event trace attached to a :class:`SimulationRun`."""

    KINDS = (
        "emit", "deliver", "ack", "fail", "crash", "migrate", "node_down",
        "node_up", "inject", "expire", "reschedule", "replay", "rescale",
        "stall", "resume", "shed",
    )

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._installed = False
        self._wrapped: List = []

    @property
    def installed(self) -> bool:
        return self._installed

    # -- recording ---------------------------------------------------------

    def record(self, time: float, kind: str, topology: str, detail: str) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time, kind, topology, detail))

    # -- installation -----------------------------------------------------------

    def install(self, run) -> None:
        """Wrap a run's internal transitions with trace recording.

        Idempotent per tracer; installing a second tracer wraps again.
        """
        if self._installed:
            raise RuntimeError("tracer already installed")
        self._installed = True
        tracer = self

        original_finish_emit = run._finish_emit

        def traced_finish_emit(spout, payload=None):
            # Closed-loop emits carry no payload; open-loop payloads are
            # (arrived_at, tuples, key) and size the batch.
            batch = (
                spout.profile.emit_batch_tuples if payload is None
                else payload[1]
            )
            tracer.record(
                run.sim.now,
                "emit",
                spout.topo.topology_id,
                f"{spout.task} batch={batch}",
            )
            return original_finish_emit(spout, payload)

        run._finish_emit = traced_finish_emit

        original_finish_replay = run._finish_replay

        def traced_finish_replay(spout, payload):
            # Record *after* the call so the fresh root id is known —
            # the causal link from replay back to its original root.
            new_root = original_finish_replay(spout, payload)
            tracer.record(
                run.sim.now,
                "replay",
                spout.topo.topology_id,
                f"root={new_root} origin={payload[2]} attempt={payload[1]} "
                f"tuples={payload[0]}",
            )
            return new_root

        run._finish_replay = traced_finish_replay

        original_deliver = run._deliver

        def traced_deliver(consumer, root_id, tuples, level, src=None):
            tracer.record(
                run.sim.now,
                "deliver",
                consumer.topo.topology_id,
                f"root={root_id} tuples={tuples} -> {consumer.task} ({level.name})",
            )
            return original_deliver(consumer, root_id, tuples, level, src)

        run._deliver = traced_deliver

        # Flow-control transitions (no-ops unless config.flow is set):
        # edge stalls/resumes and audited shed decisions.
        original_fc_stall = run._fc_stall

        def traced_fc_stall(topo_rt, producer, consumer):
            tracer.record(
                run.sim.now,
                "stall",
                topo_rt.topology_id,
                f"{producer} paused ({producer} -> {consumer} edge over "
                "high watermark)",
            )
            return original_fc_stall(topo_rt, producer, consumer)

        run._fc_stall = traced_fc_stall

        original_fc_resume = run._fc_resume

        def traced_fc_resume(topo_rt, producer, consumer):
            tracer.record(
                run.sim.now,
                "resume",
                topo_rt.topology_id,
                f"{producer} resumed ({producer} -> {consumer} edge under "
                "low watermark)",
            )
            return original_fc_resume(topo_rt, producer, consumer)

        run._fc_resume = traced_fc_resume

        original_shed = run._shed

        def traced_shed(topology_id, component, stage, tuples):
            tracer.record(
                run.sim.now,
                "shed",
                topology_id,
                f"{component} shed tuples={tuples} stage={stage}",
            )
            return original_shed(topology_id, component, stage, tuples)

        run._shed = traced_shed

        original_crash = run._crash_task

        def traced_crash(task):
            tracer.record(
                run.sim.now,
                "crash",
                task.topo.topology_id,
                f"{task.task} queue overflow",
            )
            return original_crash(task)

        run._crash_task = traced_crash

        original_fail_node = run._fail_node

        def traced_fail_node(node_id):
            tracer.record(run.sim.now, "node_down", "", node_id)
            return original_fail_node(node_id)

        run._fail_node = traced_fail_node

        original_recover_node = run._recover_node

        def traced_recover_node(node_id):
            tracer.record(run.sim.now, "node_up", "", node_id)
            return original_recover_node(node_id)

        run._recover_node = traced_recover_node

        original_migrate = run.migrate

        def traced_migrate(topology_id, new_assignment, reason="fault"):
            # Call first: the migration's return value is its churn
            # (tasks that changed slot), recorded in the event detail.
            # ``reason`` splits fault-recovery churn from elastic
            # rebalance churn in the RecoveryMonitor.
            moved = original_migrate(topology_id, new_assignment, reason)
            tracer.record(
                run.sim.now,
                "migrate",
                topology_id,
                f"onto {len(new_assignment.nodes)} nodes, "
                f"reason={reason}, moved={moved}",
            )
            return moved

        run.migrate = traced_migrate

        original_rescale = run.rescale

        def traced_rescale(topology_id, new_topology, new_assignment):
            moved, added, removed = original_rescale(
                topology_id, new_topology, new_assignment
            )
            tracer.record(
                run.sim.now,
                "rescale",
                topology_id,
                f"onto {len(new_assignment.nodes)} nodes, "
                f"tasks={new_topology.num_tasks}, added={added}, "
                f"removed={removed}, moved={moved}",
            )
            return moved, added, removed

        run.rescale = traced_rescale

        # acks and failures are observed through the stats hooks
        stats = run.stats
        original_ack = stats.record_ack

        def traced_ack(topology_id, latency_s):
            tracer.record(
                run.sim.now, "ack", topology_id, f"latency={latency_s * 1e3:.3f}ms"
            )
            return original_ack(topology_id, latency_s)

        stats.record_ack = traced_ack

        original_failed = stats.record_failed

        def traced_failed(topology_id, tuples):
            tracer.record(run.sim.now, "fail", topology_id, f"tuples={tuples}")
            return original_failed(topology_id, tuples)

        stats.record_failed = traced_failed
        self._wrapped = [
            (run, "_finish_emit"),
            (run, "_finish_replay"),
            (run, "_deliver"),
            (run, "_fc_stall"),
            (run, "_fc_resume"),
            (run, "_shed"),
            (run, "_crash_task"),
            (run, "_fail_node"),
            (run, "_recover_node"),
            (run, "migrate"),
            (run, "rescale"),
            (stats, "record_ack"),
            (stats, "record_failed"),
        ]

    def uninstall(self) -> None:
        """Remove the wrappers, restoring the run's original hooks.

        The recorded events stay queryable.  Needed before pickling the
        run or anything referencing its stats server (closures are not
        picklable); also strips any tracer installed on top of this one.
        """
        if not self._installed:
            return
        for owner, name in self._wrapped:
            try:
                delattr(owner, name)
            except AttributeError:
                pass
        self._wrapped = []
        self._installed = False

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def query(
        self,
        kind: Optional[str] = None,
        topology: Optional[str] = None,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> List[TraceEvent]:
        """Filter the trace by kind, topology and time window."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (topology is None or event.topology == topology)
            and since <= event.time <= until
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
