"""Simulation configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a simulated run.

    Attributes:
        duration_s: Simulated run length in seconds (the paper runs ~15
            minutes of wall clock; the shapes stabilise far earlier in
            simulation).
        window_s: Metrics window; the paper reports throughput in
            tuples per 10 seconds.
        warmup_s: Leading interval excluded from averaged metrics while
            queues fill and throughput converges.
        max_spout_pending: Storm's ``topology.max.spout.pending`` in
            *batches* per spout task — the acker-enforced credit that
            bounds in-flight work.  ``None`` reproduces Storm's default
            (no flow control): spouts emit as fast as CPU and any
            ``max_rate_tps`` cap allow, and an overloaded bolt's queue
            grows without bound until the worker dies (see
            ``queue_overflow_batches``).
        batch_timeout_s: Storm's tuple timeout: an un-acked batch returns
            its credit after this long (its tuples count as failed).
        thrash_factor: Service-time multiplier on nodes whose resident
            memory footprint exceeds physical capacity — models paging;
            this is what grinds the over-committed Processing topology to
            a near halt in Figure 13.
        context_switch_overhead: Fractional service-time overhead added
            per extra runnable task beyond a node's core count (models
            scheduler churn when a machine is oversubscribed with
            threads). 0 disables.
        serde_ms_per_tuple: CPU milliseconds of serialisation/
            deserialisation charged to the *receiving* task per tuple for
            deliveries that cross a worker-process boundary.  Storm skips
            (de)serialisation entirely for intra-process hand-offs, which
            is part of why co-location wins; intra-process deliveries pay
            nothing.
        queue_overflow_batches: A task whose input queue exceeds this many
            batches crashes its worker (Storm 0.9's unbounded ZeroMQ/
            Disruptor buffers exhaust the heap), losing the queue; the
            supervisor restarts it after ``worker_restart_s``.  ``None``
            disables the crash model (queues grow without bound).
        worker_restart_s: Downtime before a crashed task is restarted.
        at_least_once: Enable Storm's at-least-once delivery layer: a
            tuple tree that times out is *replayed* by its spout (real
            CPU and network cost, a fresh root id) instead of merely
            counting as failed.  Off by default — the historical
            at-most-once behaviour, byte-identical to prior releases.
        max_retries: Replay budget per root tuple when ``at_least_once``
            is on.  A tree that still has not acked after this many
            replays is *exhausted*: explicitly given up on and counted,
            never silently dropped.  ``0`` means acking without replay.
        replay_backoff_s: Base delay before the first replay of a
            timed-out tree; attempt ``n`` waits
            ``replay_backoff_s * 2**n`` (exponential backoff), mirroring
            a backpressure-aware spout.
    """

    duration_s: float = 120.0
    window_s: float = 10.0
    warmup_s: float = 20.0
    max_spout_pending: Optional[int] = 10
    batch_timeout_s: float = 30.0
    thrash_factor: float = 25.0
    context_switch_overhead: float = 0.0
    serde_ms_per_tuple: float = 0.002
    queue_overflow_batches: Optional[int] = 500
    worker_restart_s: float = 10.0
    at_least_once: bool = False
    max_retries: int = 3
    replay_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if self.window_s <= 0:
            raise ConfigError("window_s must be positive")
        if not 0 <= self.warmup_s < self.duration_s:
            raise ConfigError("warmup_s must be in [0, duration_s)")
        if self.max_spout_pending is not None and self.max_spout_pending < 1:
            raise ConfigError("max_spout_pending must be >= 1 or None")
        if self.batch_timeout_s <= 0:
            raise ConfigError("batch_timeout_s must be positive")
        if self.thrash_factor < 1:
            raise ConfigError("thrash_factor must be >= 1")
        if self.context_switch_overhead < 0:
            raise ConfigError("context_switch_overhead must be >= 0")
        if self.serde_ms_per_tuple < 0:
            raise ConfigError("serde_ms_per_tuple must be >= 0")
        if (
            self.queue_overflow_batches is not None
            and self.queue_overflow_batches < 1
        ):
            raise ConfigError("queue_overflow_batches must be >= 1 or None")
        if self.worker_restart_s < 0:
            raise ConfigError("worker_restart_s must be >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.replay_backoff_s <= 0:
            raise ConfigError("replay_backoff_s must be positive")
