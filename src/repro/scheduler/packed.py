"""Packed, flat-array view of cluster resource state.

The schedulers' inner loops evaluate every alive node for every task —
an O(tasks x nodes) search per round (the paper's Algorithm 4).  Walking
``Node``/``ResourceVector`` objects there pays an allocation and several
attribute/dict lookups per candidate per dimension.  A
:class:`PackedClusterState` flattens the same information once per
scheduling round into plain Python lists:

* ``avail[d][i]`` / ``caps[d][i]`` — availability and capacity of
  dimension ``d`` on the ``i``-th alive node, in ``cluster.alive_nodes``
  order.  Availability rows are refreshed **in place** whenever a
  placement reserves or releases resources (see
  :meth:`GlobalState.place <repro.scheduler.global_state.GlobalState.place>`),
  by copying the node's authoritative vector — so the packed floats are
  always bit-identical to ``node.available`` and optimised schedulers
  produce byte-identical assignments.
* per-node availability *scores* and the cluster-wide capacity *scale*
  used by R-Storm's ref-node selection (Algorithm 4 lines 6-9), computed
  once and invalidated incrementally on placement instead of being
  recomputed from scratch for every call.
* memoised network-distance rows per ref node (the ``Distance``
  procedure's network term), one flat list per anchor.

The view is a snapshot of the *alive set*: it must only live inside one
scheduler invocation (Nimbus is stateless across rounds, so every round
builds a fresh ``GlobalState`` and with it a fresh view).  Membership or
liveness changes between rounds therefore never invalidate a live view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import ResourceSchema, ResourceVector
from repro.errors import SchemaMismatchError

__all__ = ["PackedClusterState"]


class PackedClusterState:
    """Flat per-dimension arrays over the alive nodes of a cluster."""

    __slots__ = (
        "cluster",
        "schema",
        "nodes",
        "node_ids",
        "index",
        "avail",
        "caps",
        "hard_dims",
        "num_dims",
        "_scale",
        "_scores",
        "_dist_rows",
        "_rack_rows",
    )

    def __init__(self, cluster: Cluster):
        alive = cluster.alive_nodes
        self.cluster = cluster
        self.nodes: List[Node] = alive
        self.node_ids: List[str] = [n.node_id for n in alive]
        self.index: Dict[str, int] = {
            n.node_id: i for i, n in enumerate(alive)
        }
        schema: Optional[ResourceSchema] = (
            alive[0].schema if alive else None
        )
        if schema is not None:
            for node in alive:
                node_schema = node.schema
                if node_schema is not schema and node_schema != schema:
                    raise SchemaMismatchError(
                        f"cannot pack cluster state over mixed schemas "
                        f"{schema!r} and {node_schema!r}"
                    )
        self.schema = schema
        num_dims = len(schema) if schema is not None else 0
        self.num_dims = num_dims
        #: avail[d][i]: availability of dimension d on alive node i.
        self.avail: List[List[float]] = [
            [n.available.values[d] for n in alive] for d in range(num_dims)
        ]
        #: caps[d][i]: capacity of dimension d on alive node i (immutable).
        self.caps: List[List[float]] = [
            [n.capacity.values[d] for n in alive] for d in range(num_dims)
        ]
        self.hard_dims: Tuple[int, ...] = (
            schema.hard_indices if schema is not None else ()
        )
        self._scale: Optional[List[float]] = None
        self._scores: Optional[List[float]] = None
        self._dist_rows: Dict[str, List[float]] = {}
        self._rack_rows: Optional[List[Tuple[str, List[int]]]] = None

    # -- schema guards -----------------------------------------------------

    def check_schema(self, vector: ResourceVector) -> None:
        """Raise :class:`~repro.errors.SchemaMismatchError` unless
        ``vector`` lives in this view's schema (mirrors the check every
        ``ResourceVector`` operation performs on the slow path)."""
        schema = self.schema
        if schema is None:
            return
        if vector.schema is not schema and vector.schema != schema:
            raise SchemaMismatchError(
                f"cannot combine vectors from schemas {vector.schema!r} "
                f"and {schema!r}"
            )

    # -- in-place refresh --------------------------------------------------

    def refresh_node(self, node: Node) -> None:
        """Re-read one node's availability row after a reservation or
        release.  Copies the node's authoritative float values, so the
        packed state can never drift from ``node.available``."""
        i = self.index.get(node.node_id)
        if i is None:
            return
        values = node.available.values
        avail = self.avail
        for d in range(self.num_dims):
            avail[d][i] = values[d]
        if self._scores is not None:
            self._scores[i] = self._score_of(i)

    # -- ref-node scoring (Algorithm 4, lines 6-9) -------------------------

    @property
    def scale(self) -> List[float]:
        """Per-dimension cluster-wide maximum capacity (``or 1.0``) — the
        normaliser of the ref-node availability score.  Capacities are
        immutable, so this is computed once per view."""
        if self._scale is None:
            # num_dims > 0 implies at least one alive node, so every
            # caps[d] row is non-empty here.
            self._scale = [
                max(self.caps[d]) or 1.0 for d in range(self.num_dims)
            ]
        return self._scale

    def _score_of(self, i: int) -> float:
        scale = self.scale
        avail = self.avail
        return sum(avail[d][i] / scale[d] for d in range(self.num_dims))

    @property
    def scores(self) -> List[float]:
        """Scale-normalised availability score per alive node, kept
        current incrementally by :meth:`refresh_node`."""
        if self._scores is None:
            self._scores = [
                self._score_of(i) for i in range(len(self.nodes))
            ]
        return self._scores

    @property
    def rack_rows(self) -> List[Tuple[str, List[int]]]:
        """``(rack_id, [node indices])`` in ``cluster.racks`` order, with
        each rack's indices in ``rack.alive_nodes`` order — the exact
        iteration order of the unpacked ref-node search."""
        if self._rack_rows is None:
            index = self.index
            self._rack_rows = [
                (
                    rack.rack_id,
                    [
                        index[n.node_id]
                        for n in rack.alive_nodes
                        if n.node_id in index
                    ],
                )
                for rack in self.cluster.racks
            ]
        return self._rack_rows

    # -- network distance --------------------------------------------------

    def dist_row(self, ref_node_id: str) -> List[float]:
        """Network distance from every alive node to ``ref_node_id``,
        memoised per anchor (the distance matrix is immutable within a
        scheduling round)."""
        row = self._dist_rows.get(ref_node_id)
        if row is None:
            node_distance = self.cluster.node_distance
            row = [
                node_distance(node_id, ref_node_id)
                for node_id in self.node_ids
            ]
            self._dist_rows[ref_node_id] = row
        return row
