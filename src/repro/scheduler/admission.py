"""Weighted-DRF admission planning for multi-tenant clusters.

R-Storm (and every per-topology scheduler in this repo) answers *where*
a topology's tasks go; with many tenants contending for one cluster the
prior question is *whether* a topology gets cluster slack at all.  This
module is the pure-math half of that answer — no Nimbus, no cluster
objects, just demand vectors — so the policy is unit-testable and
hypothesis-friendly:

* **Weighted dominant-resource fairness** (Ghodsi et al., adapted to the
  cloud multi-topology setting of Ghaderi et al.): a tenant's *dominant
  share* is its largest per-dimension fraction of cluster capacity,
  divided by its weight; each admission step grants the head of the
  queue of the tenant with the smallest share.
* **Credit-based slack allocation**: a tenant deferred this round
  accrues ``weight x accrual`` credits; credits bias future admission
  order (subtracted from the share with gain ``credit_bias``) and are
  spent in full on the tenant's next admission.  Conservation —
  ``accrued == spent + outstanding balances`` — is a tested invariant.
* **Priority preemption**: when the picked tenant's head topology does
  not fit, running topologies of *strictly lower* priority tenants may
  be evicted (lowest priority, largest share first), bounded by
  ``max_preemptions`` per round.  Same-or-higher priority tenants are
  never victims.

The plan is a value object; applying it (killing victims, submitting
admitted topologies) is :class:`repro.nimbus.tenancy.TenancyController`'s
job, which keeps this layer byte-identical-safe for the single-tenant
default path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError

__all__ = [
    "AdmissionDecision",
    "AdmissionPlan",
    "AdmissionRequest",
    "TenantSpec",
    "dominant_share",
    "jain_index",
    "plan_admission",
]

#: Slack comparisons tolerate float drift from repeated +=/-=.
_EPS = 1e-9


@dataclass(frozen=True)
class TenantSpec:
    """What admission needs to know about a tenant.

    ``weight`` scales the tenant's fair share (2.0 = entitled to twice
    the dominant share of a weight-1.0 tenant); ``priority`` gates
    preemption only — higher-priority tenants may evict strictly
    lower-priority ones, never the reverse.
    """

    tenant_id: str
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SchedulingError(
                f"tenant {self.tenant_id!r} weight must be positive, "
                f"got {self.weight!r}"
            )


@dataclass(frozen=True)
class AdmissionRequest:
    """One topology's aggregate demand, attributed to a tenant.

    ``demand`` maps resource-dimension names (``memory_mb``/``cpu``/
    ``bandwidth_mbps`` for the Storm default schema) to the topology's
    *total* declared demand — the sum over its tasks, the same contract
    R-Storm packs against.
    """

    topology_id: str
    tenant_id: str
    demand: Mapping[str, float]


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit/defer/evict verdict, for reporting and audits."""

    action: str  # "admit" | "defer" | "evict"
    tenant_id: str
    topology_id: str
    #: the tenant's weighted dominant share after the action
    share: float
    #: the tenant's credit balance after the action
    credits: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "tenant": self.tenant_id,
            "topology": self.topology_id,
            "share": round(self.share, 6),
            "credits": round(self.credits, 6),
        }


@dataclass(frozen=True)
class AdmissionPlan:
    """The outcome of one admission round (a pure value object)."""

    #: topology ids granted slack, in admission order
    admitted: Tuple[str, ...]
    #: pending topology ids that stay queued
    deferred: Tuple[str, ...]
    #: running topology ids preempted to make room
    evicted: Tuple[str, ...]
    decisions: Tuple[AdmissionDecision, ...]
    #: final weighted dominant share per tenant (all registered tenants)
    shares: Dict[str, float]
    #: credit balances after the round
    credits: Dict[str, float]
    #: credits accrued this round (by deferred tenants)
    accrued: Dict[str, float]
    #: credits spent this round (by admitted tenants)
    spent: Dict[str, float]


def dominant_share(
    usage: Mapping[str, float],
    capacity: Mapping[str, float],
    weight: float = 1.0,
) -> float:
    """max over dimensions of usage/capacity, divided by ``weight``."""
    if weight <= 0:
        raise SchedulingError(f"weight must be positive, got {weight!r}")
    raw = 0.0
    for dim, cap in capacity.items():
        if cap <= 0:
            continue
        fraction = usage.get(dim, 0.0) / cap
        if fraction > raw:
            raw = fraction
    return raw / weight


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant shares: 1.0 = perfectly
    even, 1/n = one tenant holds everything.  Degenerate inputs (no
    tenants, or nobody holds anything) are reported as fair."""
    values = [max(0.0, s) for s in shares]
    total = sum(values)
    # squares can underflow to exactly 0.0 for denormal shares even
    # when total > 0 — treat that like the nobody-holds-anything case.
    squares = sum(v * v for v in values)
    if not values or total <= 0 or squares <= 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def plan_admission(
    pending: Sequence[AdmissionRequest],
    running: Sequence[AdmissionRequest],
    capacity: Mapping[str, float],
    tenants: Mapping[str, TenantSpec],
    credits: Optional[Mapping[str, float]] = None,
    *,
    headroom: float = 1.0,
    credit_bias: float = 0.05,
    credit_accrual: float = 1.0,
    preemption_enabled: bool = True,
    max_preemptions: int = 2,
) -> AdmissionPlan:
    """Plan one weighted-DRF admission round.

    ``pending`` is FIFO *per tenant* (list order); ``running`` is the
    already-admitted set whose usage seeds the shares.  Only capacity
    dimensions with positive totals participate; ``headroom`` scales
    them (0.9 keeps 10% slack for churn).

    Each step picks the tenant with the smallest credit-biased weighted
    dominant share and tries its head topology.  A fit admits it (and
    spends the tenant's credit balance); a miss first tries preemption
    (strictly lower-priority running topologies, lowest priority and
    largest share first, at most ``max_preemptions`` per round), and if
    the head still does not fit, the tenant is deferred for the round —
    its whole queue waits (FIFO is preserved; later topologies never
    jump their tenant's own queue) and it accrues
    ``credit_accrual x weight`` credits.

    Evicted topologies are reported in :attr:`AdmissionPlan.evicted`;
    the caller re-queues them, so they compete again *next* round (never
    this one — that bounds churn and guarantees termination).
    """
    if headroom <= 0:
        raise SchedulingError(f"headroom must be positive, got {headroom!r}")
    cap = {
        dim: float(value) * headroom
        for dim, value in capacity.items()
        if value > 0
    }

    def _spec(tenant_id: str) -> TenantSpec:
        try:
            return tenants[tenant_id]
        except KeyError:
            raise SchedulingError(
                f"unknown tenant {tenant_id!r} in admission round"
            ) from None

    usage: Dict[str, Dict[str, float]] = {
        tenant_id: dict.fromkeys(cap, 0.0) for tenant_id in tenants
    }
    slack = dict(cap)
    running_pool: List[AdmissionRequest] = []
    for request in running:
        _spec(request.tenant_id)
        for dim in cap:
            amount = float(request.demand.get(dim, 0.0))
            usage[request.tenant_id][dim] += amount
            slack[dim] -= amount
        running_pool.append(request)

    queues: Dict[str, List[AdmissionRequest]] = {}
    for request in pending:
        _spec(request.tenant_id)
        queues.setdefault(request.tenant_id, []).append(request)

    balance: Dict[str, float] = {
        tenant_id: float((credits or {}).get(tenant_id, 0.0))
        for tenant_id in tenants
    }
    accrued = dict.fromkeys(tenants, 0.0)
    spent = dict.fromkeys(tenants, 0.0)

    def share_of(tenant_id: str) -> float:
        return dominant_share(
            usage[tenant_id], cap, _spec(tenant_id).weight
        )

    def fits(demand: Mapping[str, float]) -> bool:
        return all(
            float(demand.get(dim, 0.0)) <= slack[dim] + _EPS for dim in cap
        )

    admitted: List[str] = []
    deferred: List[str] = []
    evicted: List[str] = []
    decisions: List[AdmissionDecision] = []
    out_for_round: set = set()
    preemptions_used = 0

    while True:
        candidates = [
            tenant_id
            for tenant_id, queue in queues.items()
            if queue and tenant_id not in out_for_round
        ]
        if not candidates:
            break
        # Smallest credit-biased weighted dominant share wins; tenant id
        # breaks ties deterministically.
        tenant_id = min(
            candidates,
            key=lambda t: (share_of(t) - credit_bias * balance[t], t),
        )
        head = queues[tenant_id][0]
        ok = fits(head.demand)
        if not ok and preemption_enabled:
            priority = _spec(tenant_id).priority
            while not ok and preemptions_used < max_preemptions:
                victims = [
                    req
                    for req in running_pool
                    if _spec(req.tenant_id).priority < priority
                ]
                if not victims:
                    break
                victim = min(
                    victims,
                    key=lambda req: (
                        _spec(req.tenant_id).priority,
                        -share_of(req.tenant_id),
                        req.topology_id,
                    ),
                )
                running_pool.remove(victim)
                for dim in cap:
                    amount = float(victim.demand.get(dim, 0.0))
                    usage[victim.tenant_id][dim] -= amount
                    slack[dim] += amount
                evicted.append(victim.topology_id)
                preemptions_used += 1
                decisions.append(
                    AdmissionDecision(
                        action="evict",
                        tenant_id=victim.tenant_id,
                        topology_id=victim.topology_id,
                        share=share_of(victim.tenant_id),
                        credits=balance[victim.tenant_id],
                    )
                )
                ok = fits(head.demand)
        if ok:
            queues[tenant_id].pop(0)
            for dim in cap:
                amount = float(head.demand.get(dim, 0.0))
                usage[tenant_id][dim] += amount
                slack[dim] -= amount
            spent[tenant_id] += balance[tenant_id]
            balance[tenant_id] = 0.0
            admitted.append(head.topology_id)
            decisions.append(
                AdmissionDecision(
                    action="admit",
                    tenant_id=tenant_id,
                    topology_id=head.topology_id,
                    share=share_of(tenant_id),
                    credits=0.0,
                )
            )
        else:
            out_for_round.add(tenant_id)
            gained = credit_accrual * _spec(tenant_id).weight
            accrued[tenant_id] += gained
            balance[tenant_id] += gained
            for request in queues[tenant_id]:
                deferred.append(request.topology_id)
                decisions.append(
                    AdmissionDecision(
                        action="defer",
                        tenant_id=tenant_id,
                        topology_id=request.topology_id,
                        share=share_of(tenant_id),
                        credits=balance[tenant_id],
                    )
                )

    return AdmissionPlan(
        admitted=tuple(admitted),
        deferred=tuple(deferred),
        evicted=tuple(evicted),
        decisions=tuple(decisions),
        shares={tenant_id: share_of(tenant_id) for tenant_id in tenants},
        credits=balance,
        accrued=accrued,
        spent=spent,
    )
