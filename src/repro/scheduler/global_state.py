"""GlobalState — scheduling-time bookkeeping (paper Section 5.1).

Nimbus is stateless across scheduler invocations, so R-Storm rebuilds a
``GlobalState`` from the cluster and the currently-live assignments on
every scheduling round.  It tracks:

* where every task of every topology is placed,
* the resource reservations those placements imply on each node, and
* which worker slots are occupied by which topologies.

All mutation of node availability during scheduling goes through this
class so a scheduling round can be reconciled or replayed atomically.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, WorkerSlot
from repro.errors import InsufficientResourcesError, SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.packed import PackedClusterState
from repro.topology.task import Task, task_label
from repro.topology.topology import Topology

__all__ = ["GlobalState"]


class GlobalState:
    """Mutable view of cluster placement state during scheduling."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        #: task -> slot for every placed task across all topologies
        self._placements: Dict[Task, WorkerSlot] = {}
        #: slot -> topology ids using it
        self._slot_users: Dict[WorkerSlot, Set[str]] = {}
        #: lazily-built flat-array resource view (see :attr:`packed`)
        self._packed: Optional[PackedClusterState] = None

    @property
    def packed(self) -> PackedClusterState:
        """Flat per-dimension resource arrays over the alive nodes,
        built on first use and kept in sync by :meth:`place` /
        :meth:`unplace`.  Valid for the lifetime of this state object —
        i.e. one scheduling round (Nimbus rebuilds ``GlobalState`` every
        round, so liveness changes between rounds get a fresh view)."""
        if self._packed is None:
            self._packed = PackedClusterState(self.cluster)
        return self._packed

    # -- construction ------------------------------------------------------

    @classmethod
    def from_assignments(
        cls,
        cluster: Cluster,
        topologies: Mapping[str, Topology],
        assignments: Mapping[str, Assignment],
        reserve: bool = True,
    ) -> "GlobalState":
        """Rebuild state from live assignments (the stateless-Nimbus
        path).  Placements on dead nodes are dropped — those tasks are the
        ones a new scheduling round must place again.

        Args:
            reserve: also re-apply resource reservations for the existing
                placements (True for resource-aware scheduling rounds).
        """
        state = cls(cluster)
        for topo_id, assignment in assignments.items():
            topology = topologies.get(topo_id)
            for task in assignment.tasks:
                slot = assignment.slot_of(task)
                if not cluster.has_node(slot.node_id):
                    continue
                node = cluster.node(slot.node_id)
                if not node.alive:
                    continue
                demand = topology.task_demand(task) if topology else None
                already_reserved = node.has_reservation(task_label(task))
                if reserve and demand is not None and not already_reserved:
                    try:
                        node.reserve(task_label(task), demand)
                    except InsufficientResourcesError:
                        # A previously valid placement can exceed hard
                        # budgets after capacity loss; keep the placement
                        # on the books without a reservation so the
                        # operator sees the over-commit in reports.
                        pass
                state._placements[task] = slot
                state._slot_users.setdefault(slot, set()).add(task.topology_id)
        return state

    # -- queries -------------------------------------------------------------

    def placement_of(self, task: Task) -> Optional[WorkerSlot]:
        return self._placements.get(task)

    def is_placed(self, task: Task) -> bool:
        return task in self._placements

    def placed_tasks(self, topology_id: Optional[str] = None) -> List[Task]:
        if topology_id is None:
            return sorted(self._placements)
        return sorted(
            t for t in self._placements if t.topology_id == topology_id
        )

    def node_of(self, task: Task) -> Optional[str]:
        slot = self._placements.get(task)
        return slot.node_id if slot else None

    def tasks_on_node(self, node_id: str) -> List[Task]:
        return sorted(
            t for t, s in self._placements.items() if s.node_id == node_id
        )

    def slot_users(self, slot: WorkerSlot) -> Set[str]:
        return set(self._slot_users.get(slot, set()))

    def assignment_for(self, topology_id: str) -> Assignment:
        """Freeze the current placements of one topology."""
        return Assignment(
            topology_id,
            {
                t: s
                for t, s in self._placements.items()
                if t.topology_id == topology_id
            },
        )

    # -- slot selection ------------------------------------------------------

    def slot_for_topology_on_node(self, topology_id: str, node: Node) -> WorkerSlot:
        """Pick the worker slot a topology should use on ``node``.

        R-Storm packs all of a topology's tasks on a node into a single
        worker process (intra-process communication is the fastest level);
        this mirrors Apache Storm's Resource-Aware Scheduler, which
        collapses a topology's executors on a node into one worker.
        Preference order: the slot this topology already uses on the node,
        then a completely free slot, then the slot shared with the fewest
        other topologies.
        """
        for slot in node.slots:
            if topology_id in self._slot_users.get(slot, set()):
                return slot
        for slot in node.slots:
            if not self._slot_users.get(slot):
                return slot
        return min(node.slots, key=lambda s: (len(self._slot_users.get(s, set())), s))

    # -- mutation ------------------------------------------------------------

    def place(
        self,
        task: Task,
        slot: WorkerSlot,
        demand=None,
    ) -> None:
        """Place ``task`` on ``slot``, reserving ``demand`` on the node if
        given.

        Raises:
            SchedulingError: if the task is already placed.
            InsufficientResourcesError: if the reservation violates a hard
                constraint (the placement is not recorded in that case).
        """
        if task in self._placements:
            raise SchedulingError(f"task {task} is already placed")
        node = self.cluster.node(slot.node_id)
        if demand is not None:
            node.reserve(task_label(task), demand)
            if self._packed is not None:
                self._packed.refresh_node(node)
        self._placements[task] = slot
        self._slot_users.setdefault(slot, set()).add(task.topology_id)

    def unplace(self, task: Task) -> None:
        """Remove a task's placement and release its reservation (if any)."""
        slot = self._placements.pop(task, None)
        if slot is None:
            raise SchedulingError(f"task {task} is not placed")
        node = self.cluster.node(slot.node_id)
        if node.has_reservation(task_label(task)):
            node.release(task_label(task))
            if self._packed is not None:
                self._packed.refresh_node(node)
        remaining = any(
            t.topology_id == task.topology_id and s == slot
            for t, s in self._placements.items()
        )
        if not remaining:
            users = self._slot_users.get(slot)
            if users:
                users.discard(task.topology_id)
                if not users:
                    del self._slot_users[slot]

    def unplace_topology(self, topology_id: str) -> None:
        for task in self.placed_tasks(topology_id):
            self.unplace(task)

    def __repr__(self) -> str:
        return (
            f"GlobalState(placements={len(self._placements)}, "
            f"slots={len(self._slot_users)})"
        )
