"""Storm's default scheduler (the paper's baseline).

Reproduces the ``EvenScheduler``'s behaviour: worker slots are sorted so
consecutive slots land on *different* nodes (Storm interleaves by port:
``node-a:6700, node-b:6700, ..., node-a:6701, ...``), one worker slot is
taken per requested worker, and executors are dealt round-robin across
those slots.  The result is the pseudo-random round-robin placement the
paper criticises: tasks of adjacent components almost always end up on
different machines, and no resource demand or availability is consulted.
"""

from __future__ import annotations

import weakref
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import WorkerSlot
from repro.errors import SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["DefaultScheduler", "interleaved_slots"]


def _node_shuffle_key(node_id: str) -> int:
    """Stable pseudo-random ordering key.

    The paper describes default Storm as "pseudo-random round robin": the
    slot ordering visits nodes in an effectively arbitrary order rather
    than a rack-contiguous one.  Hashing the node id reproduces that
    behaviour deterministically, so runs are repeatable."""
    return zlib.crc32(node_id.encode())


#: Slot-ordering cache: the interleaved ordering depends only on the set
#: of alive nodes (each node's slots are fixed at construction), yet the
#: crc32 sort used to run on every scheduling round.  Entries are keyed
#: weakly by cluster and validated against the current alive-node ids, so
#: node failures and repairs invalidate naturally.
_SlotOrderEntry = Tuple[Tuple[str, ...], List[WorkerSlot]]
_SLOT_ORDER_CACHE: "weakref.WeakKeyDictionary[Cluster, _SlotOrderEntry]" = (
    weakref.WeakKeyDictionary()
)


def interleaved_slots(cluster: Cluster) -> List[WorkerSlot]:
    """All alive slots ordered port-major, node-minor — Storm's
    ``sortSlots``: the first N slots are on N distinct nodes whenever the
    cluster has at least N nodes.  Nodes are visited in a stable
    pseudo-random order (see :func:`_node_shuffle_key`)."""
    alive = cluster.alive_nodes
    alive_ids = tuple(n.node_id for n in alive)
    cached = _SLOT_ORDER_CACHE.get(cluster)
    if cached is not None and cached[0] == alive_ids:
        return list(cached[1])
    node_order = sorted(
        alive, key=lambda n: (_node_shuffle_key(n.node_id), n.node_id)
    )
    by_node: Dict[str, List[WorkerSlot]] = {
        node.node_id: sorted(node.slots, key=lambda s: s.port)
        for node in node_order
    }
    ordered: List[WorkerSlot] = []
    depth = max((len(slots) for slots in by_node.values()), default=0)
    for level in range(depth):
        for node in node_order:
            slots = by_node[node.node_id]
            if level < len(slots):
                ordered.append(slots[level])
    _SLOT_ORDER_CACHE[cluster] = (alive_ids, ordered)
    return list(ordered)


class DefaultScheduler(IScheduler):
    """Round-robin scheduling with disregard for resources.

    Args:
        workers_per_topology: How many worker slots each topology
            requests (Storm's ``topology.workers``).  ``None`` mirrors the
            paper's experimental setup — one worker per alive node, so
            "Storm's default scheduler will schedule executors on all the
            12 machines".
    """

    name = "default"

    def __init__(self, workers_per_topology: Optional[int] = None):
        if workers_per_topology is not None and workers_per_topology < 1:
            raise ValueError("workers_per_topology must be >= 1")
        self.workers_per_topology = workers_per_topology

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        existing = dict(existing or {})
        slots = interleaved_slots(cluster)
        if not slots:
            raise SchedulingError(
                "no alive worker slots in the cluster",
                unassigned=[t for topo in topologies for t in topo.tasks],
            )
        #: round-robin cursor over the global slot ordering, shared across
        #: topologies in the round — successive topologies start where the
        #: previous one left off, like successive EvenScheduler calls.
        cursor = 0
        alive = {n.node_id for n in cluster.alive_nodes}
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            prior = existing.get(topology.topology_id)
            surviving: Dict[Task, WorkerSlot] = {}
            if prior is not None:
                for task, slot in prior.as_dict().items():
                    if slot.node_id in alive:
                        surviving[task] = slot
            missing = [t for t in topology.tasks if t not in surviving]
            if not missing:
                result[topology.topology_id] = Assignment(
                    topology.topology_id, surviving
                )
                continue
            num_workers = self.workers_per_topology or len(cluster.alive_nodes)
            num_workers = max(1, min(num_workers, len(slots)))
            chosen = [
                slots[(cursor + i) % len(slots)] for i in range(num_workers)
            ]
            cursor = (cursor + num_workers) % len(slots)
            mapping = dict(surviving)
            for i, task in enumerate(sorted(missing, key=lambda t: t.task_id)):
                mapping[task] = chosen[i % len(chosen)]
            result[topology.topology_id] = Assignment(
                topology.topology_id, mapping
            )
        return result
