"""Offline scheduler of Aniello, Baldoni & Querzoni (DEBS 2013).

The related-work baseline the paper compares its approach against: the
offline variant linearises the topology's components (it only supports
acyclic topologies — the limitation the paper calls out) and deals
executors of consecutive components to worker slots in round-robin
fashion, so *some* adjacent pairs co-locate, but no resource demand or
availability is consulted and anchoring/packing is absent.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import WorkerSlot
from repro.errors import SchedulingError, TopologyValidationError
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.scheduler.default import interleaved_slots
from repro.scheduler.ordering import TaskOrderingStrategy, ordered_tasks
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["AnielloOfflineScheduler"]


class AnielloOfflineScheduler(IScheduler):
    """Linearise components topologically, then round-robin tasks over a
    per-topology set of worker slots in linearised order.

    Unlike :class:`~repro.scheduler.default.DefaultScheduler`, consecutive
    tasks in the linearisation go to consecutive slots, so a chain of
    components partially folds onto the same workers; unlike R-Storm, no
    resource accounting or rack-locality anchoring happens.

    Args:
        workers_per_topology: Slots each topology spreads over (defaults
            to one per alive node, matching the paper's setup).
    """

    name = "aniello-offline"

    def __init__(self, workers_per_topology: Optional[int] = None):
        if workers_per_topology is not None and workers_per_topology < 1:
            raise ValueError("workers_per_topology must be >= 1")
        self.workers_per_topology = workers_per_topology

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        existing = dict(existing or {})
        slots = interleaved_slots(cluster)
        if not slots:
            raise SchedulingError(
                "no alive worker slots in the cluster",
                unassigned=[t for topo in topologies for t in topo.tasks],
            )
        cursor = 0
        alive = {n.node_id for n in cluster.alive_nodes}
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            self._check_acyclic(topology)
            prior = existing.get(topology.topology_id)
            surviving: Dict[Task, WorkerSlot] = {}
            if prior is not None:
                for task, slot in prior.as_dict().items():
                    if slot.node_id in alive:
                        surviving[task] = slot
            order = ordered_tasks(topology, TaskOrderingStrategy.TOPOLOGICAL)
            missing = [t for t in order if t not in surviving]
            if not missing:
                result[topology.topology_id] = Assignment(
                    topology.topology_id, surviving
                )
                continue
            num_workers = self.workers_per_topology or len(cluster.alive_nodes)
            num_workers = max(1, min(num_workers, len(slots)))
            chosen = [
                slots[(cursor + i) % len(slots)] for i in range(num_workers)
            ]
            cursor = (cursor + num_workers) % len(slots)
            mapping = dict(surviving)
            # Deal tasks in linearised order: task i of the linearisation
            # lands on worker i % W, so a producer at position p and its
            # consumer at position p+W collide on the same worker only by
            # accident — but consecutive tasks of *adjacent components*
            # (interleaved ordering) frequently land adjacently.
            for i, task in enumerate(missing):
                mapping[task] = chosen[i % len(chosen)]
            result[topology.topology_id] = Assignment(
                topology.topology_id, mapping
            )
        return result

    @staticmethod
    def _check_acyclic(topology: Topology) -> None:
        """The DEBS'13 offline scheduler only handles acyclic topologies;
        reject cyclic ones explicitly (R-Storm has no such limit)."""
        in_degree = {name: 0 for name in topology.components}
        for _, target, _ in topology.edges():
            in_degree[target] += 1
        queue = [n for n, d in in_degree.items() if d == 0]
        seen = 0
        while queue:
            name = queue.pop()
            seen += 1
            for target in topology.downstream_of(name):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    queue.append(target)
        if seen != len(in_degree):
            raise TopologyValidationError(
                f"topology {topology.topology_id!r} is cyclic; the Aniello "
                "offline scheduler only supports acyclic topologies"
            )
