"""The R-Storm resource-aware scheduler (Algorithms 1, 3 and 4).

Scheduling proceeds in two phases per topology:

1. **Task selection** (Algorithm 3): BFS over components from the spouts,
   tasks interleaved round-robin across components, so communicating
   tasks are adjacent in the ordering.
2. **Node selection** (Algorithm 4): each task goes to the feasible node
   minimising a weighted Euclidean distance in resource space.  The first
   task anchors on the *ref node* — the node with the most available
   resources inside the rack with the most available resources — and
   every subsequent distance includes a network-distance term from the
   ref node, so tasks pack tightly on or around the anchor.

Hard constraints (memory) are never violated: nodes that cannot host a
task's memory demand are filtered out before the distance comparison.
Soft constraints (CPU, bandwidth) may be over-committed; minimising the
squared availability-demand gap simultaneously avoids both waste
(availability far above demand) and heavy over-commit (availability far
below demand).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, WorkerSlot
from repro.cluster.rack import Rack
from repro.cluster.resources import BANDWIDTH, ResourceVector
from repro.errors import SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.scheduler.global_state import GlobalState
from repro.scheduler.ordering import TaskOrderingStrategy, ordered_tasks
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["DistanceWeights", "RStormScheduler"]


@dataclass(frozen=True)
class DistanceWeights:
    """Weights of the node-selection distance (the paper's ``weight_m``,
    ``weight_c``, ``weight_b``).

    ``network`` weights the network-distance term that stands in for the
    bandwidth dimension; ``memory`` and ``cpu`` weight the squared
    availability-demand gaps.  With capacity-normalised gaps the defaults
    put all three terms on a comparable scale.
    """

    memory: float = 0.5
    cpu: float = 1.0
    network: float = 1.0

    def __post_init__(self) -> None:
        for name in ("memory", "cpu", "network"):
            if getattr(self, name) < 0:
                raise ValueError(f"distance weight {name!r} must be >= 0")


class RStormScheduler(IScheduler):
    """Resource-aware scheduler from the paper.

    Args:
        weights: Distance weights (see :class:`DistanceWeights`).
        ordering: Component linearisation strategy (BFS is the paper's;
            DFS/TOPOLOGICAL exist for ablations).
        normalise_gaps: Divide availability-demand gaps by node capacity
            before squaring, so megabytes and CPU points are comparable.
            Disabling this reproduces the naive unnormalised distance.
        use_network_distance: Include the ref-node network-distance term.
            Disabling it ablates the paper's locality optimisation.
        prefer_no_overcommit: Prefer nodes whose *soft* availability also
            covers the demand, over-committing soft resources only when no
            such node exists.  This mirrors how the production
            Resource-Aware Scheduler fills nodes to (not past) capacity
            while retaining the paper's soft-constraint semantics — soft
            budgets can still be exceeded when the cluster is tight.
        best_effort: If True, tasks with no feasible node are left
            unassigned (partial assignment) instead of raising
            :class:`~repro.errors.SchedulingError`.
    """

    name = "r-storm"

    def __init__(
        self,
        weights: DistanceWeights = DistanceWeights(),
        ordering: TaskOrderingStrategy = TaskOrderingStrategy.BFS,
        normalise_gaps: bool = True,
        use_network_distance: bool = True,
        prefer_no_overcommit: bool = True,
        best_effort: bool = False,
    ):
        self.weights = weights
        self.ordering = ordering
        self.normalise_gaps = normalise_gaps
        self.use_network_distance = use_network_distance
        self.prefer_no_overcommit = prefer_no_overcommit
        self.best_effort = best_effort

    # -- IScheduler ---------------------------------------------------------

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        topo_by_id = {t.topology_id: t for t in topologies}
        state = GlobalState.from_assignments(
            cluster, topo_by_id, existing or {}, reserve=True
        )
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            self._schedule_topology(topology, cluster, state)
            result[topology.topology_id] = state.assignment_for(
                topology.topology_id
            )
        return result

    # -- per-topology scheduling ----------------------------------------------

    def _schedule_topology(
        self, topology: Topology, cluster: Cluster, state: GlobalState
    ) -> None:
        pending = [
            task
            for task in ordered_tasks(topology, self.ordering)
            if not state.is_placed(task)
        ]
        if not pending:
            return
        ref_node = self._initial_ref_node(topology, cluster, state)
        placed_this_round: List[Task] = []
        try:
            for task in pending:
                demand = topology.task_demand(task)
                node = self._select_node(cluster, demand, ref_node)
                if node is None:
                    if self.best_effort:
                        continue
                    raise SchedulingError(
                        f"no feasible node for task {task} "
                        f"(demand {demand!r}): every alive node violates a "
                        f"hard constraint",
                        unassigned=[
                            t for t in pending if not state.is_placed(t)
                        ],
                    )
                if ref_node is None:
                    ref_node = node
                slot = state.slot_for_topology_on_node(
                    topology.topology_id, node
                )
                state.place(task, slot, demand)
                placed_this_round.append(task)
        except SchedulingError:
            # Assignment is atomic per topology (paper Section 4.1): undo
            # this topology's partial placements before propagating.
            for task in placed_this_round:
                state.unplace(task)
            raise

    def _initial_ref_node(
        self, topology: Topology, cluster: Cluster, state: GlobalState
    ) -> Optional[Node]:
        """Resume anchoring for partially-scheduled topologies: the node
        already hosting the most of this topology's tasks.  Fresh
        topologies anchor lazily via :meth:`_find_ref_node` once the first
        task's feasible set is known."""
        counts: Dict[str, int] = {}
        for task in state.placed_tasks(topology.topology_id):
            node_id = state.node_of(task)
            if node_id is not None:
                counts[node_id] = counts.get(node_id, 0) + 1
        if not counts:
            return None
        best = max(sorted(counts), key=lambda n: counts[n])
        return cluster.node(best)

    # -- node selection (Algorithm 4) -----------------------------------------

    def _select_node(
        self,
        cluster: Cluster,
        demand: ResourceVector,
        ref_node: Optional[Node],
    ) -> Optional[Node]:
        feasible = [n for n in cluster.alive_nodes if n.can_host(demand)]
        if not feasible:
            return None
        if self.prefer_no_overcommit:
            uncommitted = [
                n for n in feasible if n.available.dominates(demand)
            ]
            if uncommitted:
                feasible = uncommitted
        if ref_node is None:
            anchor = self._find_ref_node(cluster, feasible)
            if anchor is not None:
                return anchor
            ref_node = feasible[0]

        def sort_key(node: Node) -> Tuple[float, str]:
            net = cluster.node_distance(node.node_id, ref_node.node_id)
            return (self.distance(node, demand, net), node.node_id)

        return min(feasible, key=sort_key)

    @staticmethod
    def _find_ref_node(
        cluster: Cluster, feasible: Sequence[Node]
    ) -> Optional[Node]:
        """The paper's lines 6-9: the most-available node inside the
        most-available rack (restricted to nodes that can host the task).

        "Most resources" compares absolute availability, with each
        dimension scaled by the cluster-wide maximum capacity so a
        megabyte-dominated sum does not drown the CPU dimension, and a
        big empty machine outranks a small empty one.
        """
        feasible_ids = {n.node_id for n in feasible}
        alive = cluster.alive_nodes
        if not alive:
            return None
        schema = alive[0].capacity.schema
        scale = {
            dim: max(node.capacity[dim] for node in alive) or 1.0
            for dim in schema.names
        }

        def node_score(node: Node) -> float:
            return sum(
                node.available[dim] / scale[dim] for dim in schema.names
            )

        racks = sorted(
            cluster.racks,
            key=lambda r: (
                -sum(node_score(n) for n in r.alive_nodes),
                r.rack_id,
            ),
        )
        for rack in racks:
            candidates = [n for n in rack.alive_nodes if n.node_id in feasible_ids]
            if candidates:
                return min(
                    candidates, key=lambda n: (-node_score(n), n.node_id)
                )
        return None

    def distance(
        self, node: Node, demand: ResourceVector, net_distance: float
    ) -> float:
        """The Distance procedure of Algorithm 4.

        ``sqrt(w_m * gap_mem^2 + w_c * gap_cpu^2 + w_b * netdist(ref, node))``
        with gaps optionally normalised by node capacity.  Generalised
        schemas contribute every non-bandwidth dimension, weighted by the
        dimension's default weight (memory/cpu weights override the
        standard dimensions).

        Args:
            node: Candidate node (already hard-constraint feasible).
            demand: The task's declared demand vector.
            net_distance: Abstract network distance from the ref node to
                ``node`` (see :meth:`Cluster.node_distance`).
        """
        schema = node.available.schema
        if self.normalise_gaps:
            gaps = node.available.normalised_gap(demand, node.capacity)
        else:
            gaps = node.available.gap(demand)
        total = 0.0
        for dim in schema:
            if dim.name == BANDWIDTH:
                continue  # replaced by the network-distance term
            weight = {
                "memory_mb": self.weights.memory,
                "cpu": self.weights.cpu,
            }.get(dim.name, dim.default_weight)
            gap = gaps[dim.name]
            total += weight * gap * gap
        if self.use_network_distance:
            total += self.weights.network * net_distance
        return math.sqrt(max(0.0, total))
