"""The R-Storm resource-aware scheduler (Algorithms 1, 3 and 4).

Scheduling proceeds in two phases per topology:

1. **Task selection** (Algorithm 3): BFS over components from the spouts,
   tasks interleaved round-robin across components, so communicating
   tasks are adjacent in the ordering.
2. **Node selection** (Algorithm 4): each task goes to the feasible node
   minimising a weighted Euclidean distance in resource space.  The first
   task anchors on the *ref node* — the node with the most available
   resources inside the rack with the most available resources — and
   every subsequent distance includes a network-distance term from the
   ref node, so tasks pack tightly on or around the anchor.

Hard constraints (memory) are never violated: nodes that cannot host a
task's memory demand are filtered out before the distance comparison.
Soft constraints (CPU, bandwidth) may be over-committed; minimising the
squared availability-demand gap simultaneously avoids both waste
(availability far above demand) and heavy over-commit (availability far
below demand).

The hot path runs on the packed flat-array view of the cluster
(:class:`~repro.scheduler.packed.PackedClusterState`): the per-candidate
distance loop reads plain per-dimension float lists, weights and
normalisation factors are hoisted once per (topology, schema), ref-node
scores and network-distance rows are memoised per round and invalidated
incrementally on placement, and nodes that can no longer host *any*
pending task are pruned from the candidate list instead of being
re-scanned per task.  The arithmetic performs bit-identical operations
in the same order as the per-vector formulation (kept as
:meth:`RStormScheduler.distance` and verified by the differential suite
in ``tests/scheduler/test_differential.py``), so assignments are
byte-identical to the unpacked implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import BANDWIDTH, ResourceSchema, ResourceVector
from repro.errors import SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.scheduler.global_state import GlobalState
from repro.scheduler.ordering import TaskOrderingStrategy, ordered_tasks
from repro.scheduler.packed import PackedClusterState
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["DistanceWeights", "RStormScheduler"]


@dataclass(frozen=True)
class DistanceWeights:
    """Weights of the node-selection distance (the paper's ``weight_m``,
    ``weight_c``, ``weight_b``).

    ``network`` weights the network-distance term that stands in for the
    bandwidth dimension; ``memory`` and ``cpu`` weight the squared
    availability-demand gaps.  With capacity-normalised gaps the defaults
    put all three terms on a comparable scale.
    """

    memory: float = 0.5
    cpu: float = 1.0
    network: float = 1.0

    def __post_init__(self) -> None:
        for name in ("memory", "cpu", "network"):
            if getattr(self, name) < 0:
                raise ValueError(f"distance weight {name!r} must be >= 0")


class RStormScheduler(IScheduler):
    """Resource-aware scheduler from the paper.

    Args:
        weights: Distance weights (see :class:`DistanceWeights`).
        ordering: Component linearisation strategy (BFS is the paper's;
            DFS/TOPOLOGICAL exist for ablations).
        normalise_gaps: Divide availability-demand gaps by node capacity
            before squaring, so megabytes and CPU points are comparable.
            Disabling this reproduces the naive unnormalised distance.
        use_network_distance: Include the ref-node network-distance term.
            Disabling it ablates the paper's locality optimisation.
        prefer_no_overcommit: Prefer nodes whose *soft* availability also
            covers the demand, over-committing soft resources only when no
            such node exists.  This mirrors how the production
            Resource-Aware Scheduler fills nodes to (not past) capacity
            while retaining the paper's soft-constraint semantics — soft
            budgets can still be exceeded when the cluster is tight.
        best_effort: If True, tasks with no feasible node are left
            unassigned (partial assignment) instead of raising
            :class:`~repro.errors.SchedulingError`.
    """

    name = "r-storm"

    def __init__(
        self,
        weights: DistanceWeights = DistanceWeights(),
        ordering: TaskOrderingStrategy = TaskOrderingStrategy.BFS,
        normalise_gaps: bool = True,
        use_network_distance: bool = True,
        prefer_no_overcommit: bool = True,
        best_effort: bool = False,
    ):
        self.weights = weights
        self.ordering = ordering
        self.normalise_gaps = normalise_gaps
        self.use_network_distance = use_network_distance
        self.prefer_no_overcommit = prefer_no_overcommit
        self.best_effort = best_effort
        #: (schema, weights) -> ((dim index, weight), ...) over the
        #: non-bandwidth dimensions, hoisted out of the distance loop.
        self._dim_weight_cache: Dict[
            Tuple[ResourceSchema, DistanceWeights],
            Tuple[Tuple[int, float], ...],
        ] = {}

    # -- IScheduler ---------------------------------------------------------

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        topo_by_id = {t.topology_id: t for t in topologies}
        state = GlobalState.from_assignments(
            cluster, topo_by_id, existing or {}, reserve=True
        )
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            self._schedule_topology(topology, cluster, state)
            result[topology.topology_id] = state.assignment_for(
                topology.topology_id
            )
        return result

    # -- per-topology scheduling ----------------------------------------------

    def _schedule_topology(
        self, topology: Topology, cluster: Cluster, state: GlobalState
    ) -> None:
        pending = [
            task
            for task in ordered_tasks(topology, self.ordering)
            if not state.is_placed(task)
        ]
        if not pending:
            return
        ref_node = self._initial_ref_node(topology, cluster, state)
        placed_this_round: List[Task] = []
        try:
            self._place_pending(topology, state, pending, ref_node,
                                placed_this_round)
        except SchedulingError:
            # Assignment is atomic per topology (paper Section 4.1): undo
            # this topology's partial placements before propagating.
            for task in placed_this_round:
                state.unplace(task)
            raise

    def _place_pending(
        self,
        topology: Topology,
        state: GlobalState,
        pending: List[Task],
        ref_node: Optional[Node],
        placed_this_round: List[Task],
    ) -> None:
        """Greedy node selection over the packed cluster view."""
        view = state.packed
        demand_of: Dict[str, ResourceVector] = {}
        for task in pending:
            component = task.component
            if component not in demand_of:
                demand = topology.task_demand(task)
                view.check_schema(demand)
                demand_of[component] = demand

        avail = view.avail
        nodes = view.nodes
        hard = view.hard_dims
        num_dims = view.num_dims
        best_effort = self.best_effort
        prefer = self.prefer_no_overcommit
        topology_id = topology.topology_id

        # Candidate structure: alive-node indices still able to host at
        # least one pending task.  ``floors[d]`` is the smallest demand
        # of any pending task in hard dimension ``d``; a node below a
        # floor is infeasible for *every* pending task, and availability
        # only shrinks within the topology's round, so it is pruned
        # permanently instead of being rescanned per task.
        floors: Dict[int, float] = {
            d: min(demand_of[t.component].values[d] for t in pending)
            for d in hard
        }
        candidates = [
            i
            for i in range(len(nodes))
            if all(avail[d][i] >= floors[d] for d in hard)
        ]

        for task in pending:
            demand = demand_of[task.component]
            dvals = demand.values
            # Hard-constraint filter (the paper's H_theta > H_tau guard).
            feasible: List[int] = []
            append = feasible.append
            if len(hard) == 1:
                d0 = hard[0]
                a0 = avail[d0]
                need0 = dvals[d0]
                for i in candidates:
                    if a0[i] >= need0:
                        append(i)
            else:
                for i in candidates:
                    for d in hard:
                        if avail[d][i] < dvals[d]:
                            break
                    else:
                        append(i)
            if not feasible:
                if best_effort:
                    continue
                raise SchedulingError(
                    f"no feasible node for task {task} "
                    f"(demand {demand!r}): every alive node violates a "
                    f"hard constraint",
                    unassigned=[
                        t for t in pending if not state.is_placed(t)
                    ],
                )
            pool = feasible
            if prefer:
                uncommitted: List[int] = []
                uappend = uncommitted.append
                for i in feasible:
                    for d in range(num_dims):
                        if avail[d][i] < dvals[d]:
                            break
                    else:
                        uappend(i)
                if uncommitted:
                    pool = uncommitted

            if ref_node is None:
                best_i = self._find_ref_index(view, pool)
                if best_i is None:
                    # Defensive fallback (an empty alive set cannot reach
                    # here): anchor the distance on the first feasible
                    # node, like the unpacked formulation.
                    best_i = self._min_distance_index(
                        view, pool, dvals, nodes[pool[0]]
                    )
            else:
                best_i = self._min_distance_index(
                    view, pool, dvals, ref_node
                )
            node = nodes[best_i]
            if ref_node is None:
                ref_node = node
            slot = state.slot_for_topology_on_node(topology_id, node)
            state.place(task, slot, demand)
            placed_this_round.append(task)
            for d in hard:
                if avail[d][best_i] < floors[d]:
                    candidates.remove(best_i)
                    break

    def _initial_ref_node(
        self, topology: Topology, cluster: Cluster, state: GlobalState
    ) -> Optional[Node]:
        """Resume anchoring for partially-scheduled topologies: the node
        already hosting the most of this topology's tasks.  Fresh
        topologies anchor lazily via :meth:`_find_ref_index` once the
        first task's feasible set is known."""
        counts: Dict[str, int] = {}
        for task in state.placed_tasks(topology.topology_id):
            node_id = state.node_of(task)
            if node_id is not None:
                counts[node_id] = counts.get(node_id, 0) + 1
        if not counts:
            return None
        best = max(sorted(counts), key=lambda n: counts[n])
        return cluster.node(best)

    # -- node selection (Algorithm 4) -----------------------------------------

    def _dim_weights(
        self, schema: Optional[ResourceSchema]
    ) -> Tuple[Tuple[int, float], ...]:
        """``(dimension index, weight)`` pairs over the non-bandwidth
        dimensions in schema order, computed once per (schema, weights)
        instead of per candidate node per dimension."""
        if schema is None:
            return ()
        key = (schema, self.weights)
        cached = self._dim_weight_cache.get(key)
        if cached is None:
            overrides = {
                "memory_mb": self.weights.memory,
                "cpu": self.weights.cpu,
            }
            cached = tuple(
                (d, overrides.get(dim.name, dim.default_weight))
                for d, dim in enumerate(schema.dimensions)
                if dim.name != BANDWIDTH
            )
            self._dim_weight_cache[key] = cached
        return cached

    def _min_distance_index(
        self,
        view: PackedClusterState,
        pool: List[int],
        dvals: Tuple[float, ...],
        ref_node: Node,
    ) -> int:
        """The Distance procedure of Algorithm 4 fused over the packed
        candidate pool; returns the index of the distance-minimal node
        (ties broken by node id, exactly like ``min`` over
        ``(distance, node_id)`` keys)."""
        avail = view.avail
        caps = view.caps
        node_ids = view.node_ids
        net_row = view.dist_row(ref_node.node_id)
        dim_weights = self._dim_weights(view.schema)
        w_net = self.weights.network
        use_net = self.use_network_distance
        normalise = self.normalise_gaps
        sqrt = math.sqrt

        best_i = pool[0]
        best_dist: Optional[float] = None
        best_id = ""
        for i in pool:
            total = 0.0
            for d, w in dim_weights:
                gap = avail[d][i] - dvals[d]
                if normalise:
                    cap = caps[d][i]
                    gap = gap / cap if cap > 0 else 0.0
                total += w * gap * gap
            if use_net:
                total += w_net * net_row[i]
            dist = sqrt(total if total > 0.0 else 0.0)
            if (
                best_dist is None
                or dist < best_dist
                or (dist == best_dist and node_ids[i] < best_id)
            ):
                best_dist = dist
                best_id = node_ids[i]
                best_i = i
        return best_i

    @staticmethod
    def _find_ref_index(
        view: PackedClusterState, pool: List[int]
    ) -> Optional[int]:
        """The paper's lines 6-9 on the packed view: the most-available
        node inside the most-available rack (restricted to the feasible
        pool).

        "Most resources" compares absolute availability, with each
        dimension scaled by the cluster-wide maximum capacity so a
        megabyte-dominated sum does not drown the CPU dimension, and a
        big empty machine outranks a small empty one.  Node scores are
        cached on the view and invalidated incrementally on placement.
        """
        if not view.nodes:
            return None
        scores = view.scores
        node_ids = view.node_ids
        pool_set = set(pool)
        racks = sorted(
            view.rack_rows,
            key=lambda row: (-sum(scores[i] for i in row[1]), row[0]),
        )
        for _, row in racks:
            best_i: Optional[int] = None
            best_key: Optional[Tuple[float, str]] = None
            for i in row:
                if i in pool_set:
                    key = (-scores[i], node_ids[i])
                    if best_key is None or key < best_key:
                        best_key = key
                        best_i = i
            if best_i is not None:
                return best_i
        return None

    def distance(
        self, node: Node, demand: ResourceVector, net_distance: float
    ) -> float:
        """The Distance procedure of Algorithm 4 — reference (unpacked)
        formulation.

        ``sqrt(w_m * gap_mem^2 + w_c * gap_cpu^2 + w_b * netdist(ref, node))``
        with gaps optionally normalised by node capacity.  Generalised
        schemas contribute every non-bandwidth dimension, weighted by the
        dimension's default weight (memory/cpu weights override the
        standard dimensions).

        The scheduling hot path uses :meth:`_min_distance_index`, which
        performs these operations in the same order over the packed
        arrays; this method remains the executable specification and the
        two are held identical by the differential test suite.

        Args:
            node: Candidate node (already hard-constraint feasible).
            demand: The task's declared demand vector.
            net_distance: Abstract network distance from the ref node to
                ``node`` (see :meth:`Cluster.node_distance`).
        """
        schema = node.available.schema
        if self.normalise_gaps:
            gaps = node.available.normalised_gap(demand, node.capacity)
        else:
            gaps = node.available.gap(demand)
        total = 0.0
        for dim in schema:
            if dim.name == BANDWIDTH:
                continue  # replaced by the network-distance term
            weight = {
                "memory_mb": self.weights.memory,
                "cpu": self.weights.cpu,
            }.get(dim.name, dim.default_weight)
            gap = gaps[dim.name]
            total += weight * gap * gap
        if self.use_network_distance:
            total += self.weights.network * net_distance
        return math.sqrt(max(0.0, total))
