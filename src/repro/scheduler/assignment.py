"""Schedule assignments.

An :class:`Assignment` is the output of a scheduler for one topology: a
complete mapping from every task to a worker slot.  Assignments are
immutable value objects; the mutable bookkeeping used *while* scheduling
lives in :class:`~repro.scheduler.global_state.GlobalState`.

Schedulers construct an ``Assignment`` per topology per round, but most
rounds only ever look up ``slot_of``/``tasks`` — the per-slot and
per-node indexes are needed by quality metrics and the rebalancer, not
by the scheduling hot path.  They are therefore built lazily on first
use; construction only validates ownership and copies the mapping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.node import WorkerSlot
from repro.errors import SchedulingError
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["Assignment"]


class Assignment:
    """An immutable task -> worker-slot mapping for one topology."""

    __slots__ = (
        "topology_id",
        "_slot_of",
        "_tasks_by_slot",
        "_tasks_by_node",
        "_sorted_tasks",
    )

    def __init__(self, topology_id: str, mapping: Mapping[Task, WorkerSlot]):
        self.topology_id = topology_id
        for task in mapping:
            if task.topology_id != topology_id:
                raise SchedulingError(
                    f"task {task} does not belong to topology {topology_id!r}"
                )
        self._slot_of: Dict[Task, WorkerSlot] = dict(mapping)
        self._tasks_by_slot: Optional[Dict[WorkerSlot, Tuple[Task, ...]]] = None
        self._tasks_by_node: Optional[Dict[str, Tuple[Task, ...]]] = None
        self._sorted_tasks: Optional[Tuple[Task, ...]] = None

    def _by_slot(self) -> Dict[WorkerSlot, Tuple[Task, ...]]:
        if self._tasks_by_slot is None:
            self._build_indexes()
        return self._tasks_by_slot  # type: ignore[return-value]

    def _by_node(self) -> Dict[str, Tuple[Task, ...]]:
        if self._tasks_by_node is None:
            self._build_indexes()
        return self._tasks_by_node  # type: ignore[return-value]

    def _build_indexes(self) -> None:
        by_slot: Dict[WorkerSlot, List[Task]] = {}
        by_node: Dict[str, List[Task]] = {}
        for task, slot in self._slot_of.items():
            by_slot.setdefault(slot, []).append(task)
            by_node.setdefault(slot.node_id, []).append(task)
        self._tasks_by_slot = {
            slot: tuple(sorted(tasks)) for slot, tasks in by_slot.items()
        }
        self._tasks_by_node = {
            node_id: tuple(sorted(tasks)) for node_id, tasks in by_node.items()
        }

    # -- queries -------------------------------------------------------------

    def slot_of(self, task: Task) -> WorkerSlot:
        try:
            return self._slot_of[task]
        except KeyError:
            raise SchedulingError(f"task {task} is not assigned") from None

    def node_of(self, task: Task) -> str:
        return self.slot_of(task).node_id

    def has(self, task: Task) -> bool:
        return task in self._slot_of

    @property
    def tasks(self) -> Tuple[Task, ...]:
        if self._sorted_tasks is None:
            self._sorted_tasks = tuple(sorted(self._slot_of))
        return self._sorted_tasks

    @property
    def slots(self) -> Tuple[WorkerSlot, ...]:
        return tuple(sorted(self._by_slot()))

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_node()))

    def tasks_on_slot(self, slot: WorkerSlot) -> Tuple[Task, ...]:
        return self._by_slot().get(slot, ())

    def tasks_on_node(self, node_id: str) -> Tuple[Task, ...]:
        return self._by_node().get(node_id, ())

    def is_complete(self, topology: Topology) -> bool:
        """True if every task of ``topology`` is assigned."""
        slot_of = self._slot_of
        if len(topology.tasks) != len(slot_of):
            return False
        return all(t in slot_of for t in topology.tasks)

    def missing_tasks(self, topology: Topology) -> Tuple[Task, ...]:
        return tuple(sorted(set(topology.tasks) - set(self._slot_of)))

    def as_dict(self) -> Dict[Task, WorkerSlot]:
        return dict(self._slot_of)

    def restricted_to_nodes(self, node_ids: Iterable[str]) -> "Assignment":
        """The sub-assignment on the given nodes (used when reconciling
        after node failures: keep what survived, reschedule the rest)."""
        keep = set(node_ids)
        return Assignment(
            self.topology_id,
            {t: s for t, s in self._slot_of.items() if s.node_id in keep},
        )

    def merged_with(self, other: "Assignment") -> "Assignment":
        """Union of two partial assignments for the same topology; the
        other assignment wins on conflicts."""
        if other.topology_id != self.topology_id:
            raise SchedulingError(
                "cannot merge assignments of different topologies"
            )
        merged = dict(self._slot_of)
        merged.update(other._slot_of)
        return Assignment(self.topology_id, merged)

    def __len__(self) -> int:
        return len(self._slot_of)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return (
            self.topology_id == other.topology_id
            and self._slot_of == other._slot_of
        )

    def __hash__(self) -> int:
        return hash((self.topology_id, frozenset(self._slot_of.items())))

    def __repr__(self) -> str:
        nodes = {slot.node_id for slot in self._slot_of.values()}
        return (
            f"Assignment({self.topology_id!r}, tasks={len(self._slot_of)}, "
            f"nodes={len(nodes)})"
        )
