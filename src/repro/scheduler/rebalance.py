"""Online rebalancing controller.

The paper's related-work section contrasts R-Storm with Aniello et al.'s
*online* scheduler, which monitors CPU usage and rebalances a running
topology.  R-Storm itself schedules offline (before execution), but the
authors note rescheduling after profiling as the natural extension; this
module provides that loop on top of the library's primitives:

1. every ``interval_s`` of simulated time, compare each node's measured
   CPU utilisation over the last interval against a high watermark;
2. if a node is hot, evict its most CPU-hungry task (by declared load),
   release the reservation, and re-place the task with the wrapped
   scheduler while the hot node is temporarily excluded;
3. migrate the task in the running simulation.

The controller is deliberately conservative — one migration per hot node
per tick — because each migration costs a queue hand-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.topology.task import Task, task_label
from repro.topology.topology import Topology

__all__ = ["OnlineRebalancer"]


class OnlineRebalancer:
    """Watch a running simulation and migrate tasks off hot nodes.

    Args:
        cluster: The cluster being watched.
        scheduler: Used to re-place evicted tasks (defaults to R-Storm).
        high_watermark: Per-node CPU utilisation (measured over the last
            interval) above which the node is considered hot.
        interval_s: Simulated seconds between checks.
        max_migrations: Safety cap on total migrations.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Optional[IScheduler] = None,
        high_watermark: float = 0.95,
        interval_s: float = 30.0,
        max_migrations: int = 100,
    ):
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.cluster = cluster
        self.scheduler = scheduler or RStormScheduler(best_effort=True)
        self.high_watermark = high_watermark
        self.interval_s = interval_s
        self.max_migrations = max_migrations
        self.migrations: List[Tuple[float, Task, str, str]] = []
        self._last_busy: Dict[str, float] = {}

    # -- measurement ----------------------------------------------------------

    def _interval_utilisation(self, run) -> Dict[str, float]:
        """Per-node CPU utilisation over the last interval."""
        utilisation = {}
        for node in self.cluster.alive_nodes:
            busy = run.stats.busy_core_seconds(node.node_id)
            delta = busy - self._last_busy.get(node.node_id, 0.0)
            self._last_busy[node.node_id] = busy
            cores = max(1, round(node.capacity.cpu / 100.0))
            utilisation[node.node_id] = delta / (self.interval_s * cores)
        return utilisation

    # -- rebalancing ---------------------------------------------------------

    def _pick_victim(
        self,
        node_id: str,
        placements: Dict[str, Tuple[Topology, Assignment]],
    ) -> Optional[Tuple[Topology, Task]]:
        """The most CPU-hungry task on the hot node."""
        best: Optional[Tuple[float, Topology, Task]] = None
        for topology, assignment in placements.values():
            cpu_of: Dict[str, float] = {}
            for task in assignment.tasks_on_node(node_id):
                load = cpu_of.get(task.component)
                if load is None:
                    load = topology.task_demand(task).cpu
                    cpu_of[task.component] = load
                if best is None or load > best[0]:
                    best = (load, topology, task)
        if best is None:
            return None
        return best[1], best[2]

    def _replace_task(
        self, topology: Topology, assignment: Assignment, task: Task, hot: str
    ) -> Optional[Assignment]:
        """Re-place one task with the hot node blocked for new placements;
        returns the new assignment, or ``None`` if no better home exists.

        Blocking works by reserving the hot node's remaining memory under
        a sentinel label: the node fails the hard-constraint filter for
        the evicted task but its other tasks stay pinned exactly where
        they are.
        """
        node = self.cluster.node(hot)
        if node.has_reservation(task_label(task)):
            node.release(task_label(task))
        remaining = Assignment(
            topology.topology_id,
            {t: s for t, s in assignment.as_dict().items() if t != task},
        )
        blocker = "__rebalance_blocker__"
        schema = node.capacity.schema
        node.reserve(
            blocker,
            schema.vector(
                **{
                    dim: max(0.0, node.available[dim])
                    for dim in schema.hard_names
                }
            ),
        )
        try:
            new = self.scheduler.schedule(
                [topology],
                self.cluster,
                {topology.topology_id: remaining},
            )[topology.topology_id]
        except SchedulingError:
            new = None
        finally:
            node.release(blocker)
        if (
            new is None
            or not new.has(task)
            or not new.is_complete(topology)
            or new.node_of(task) == hot
        ):
            # nowhere better; restore the reservation and give up
            try:
                node.reserve(task_label(task), topology.task_demand(task))
            except Exception:  # pragma: no cover - best effort restore
                pass
            return None
        return new

    def attach(self, run, placements: Dict[str, Tuple[Topology, Assignment]]) -> None:
        """Start the periodic rebalancing loop inside ``run``.

        Args:
            run: A :class:`~repro.simulation.runtime.SimulationRun`.
            placements: topology id -> (topology, current assignment);
                updated in place as migrations happen.
        """

        def tick() -> None:
            utilisation = self._interval_utilisation(run)
            hot_nodes = sorted(
                (
                    node_id
                    for node_id, value in utilisation.items()
                    if value > self.high_watermark
                ),
                key=lambda n: -utilisation[n],
            )
            for hot in hot_nodes:
                if len(self.migrations) >= self.max_migrations:
                    break
                victim = self._pick_victim(hot, placements)
                if victim is None:
                    continue
                topology, task = victim
                assignment = placements[topology.topology_id][1]
                new = self._replace_task(topology, assignment, task, hot)
                if new is None:
                    continue
                placements[topology.topology_id] = (topology, new)
                run.migrate(topology.topology_id, new)
                self.migrations.append(
                    (run.sim.now, task, hot, new.node_of(task))
                )
            run.on_time(run.sim.now + self.interval_s, tick)

        run.on_time(self.interval_s, tick)
