"""Scheduler interface.

Mirrors Storm's ``IScheduler`` contract (paper Section 5): Nimbus invokes
the configured scheduler periodically with the set of topologies and the
current cluster; the scheduler returns a complete task -> worker-slot
assignment per topology.  Schedulers are stateless across invocations —
anything they need is rebuilt from the cluster and the live assignments
(see :class:`~repro.scheduler.global_state.GlobalState`).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.scheduler.assignment import Assignment
from repro.topology.topology import Topology

__all__ = ["IScheduler", "SchedulingRound"]


@dataclass
class SchedulingRound:
    """Diagnostics for one scheduler invocation."""

    scheduler: str
    topologies: Sequence[str]
    duration_s: float
    assignments: Dict[str, Assignment] = field(default_factory=dict)
    newly_scheduled: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"SchedulingRound({self.scheduler!r}, "
            f"topologies={list(self.topologies)}, "
            f"duration={self.duration_s * 1e3:.2f}ms)"
        )


class IScheduler(abc.ABC):
    """Base class for all schedulers.

    Subclasses implement :meth:`schedule`.  The convenience wrapper
    :meth:`run` measures wall-clock scheduling latency (the paper's
    real-time requirement: scheduling must be "snappy").
    """

    #: human-readable scheduler name used in configs and reports
    name = "scheduler"

    @abc.abstractmethod
    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        """Produce an assignment for every topology.

        Args:
            topologies: All topologies that should be running, in
                submission order (order matters: earlier topologies claim
                resources first, exactly as in Storm).
            cluster: The physical cluster.  Implementations must not leave
                stray reservations behind: either reserve through a
                :class:`GlobalState` they own or leave node accounting
                untouched.
            existing: Live assignments from previous rounds.  Tasks whose
                placements survive (their node is still alive) must keep
                them; only missing/orphaned tasks get new placements.

        Returns:
            topology id -> complete :class:`Assignment`.

        Raises:
            SchedulingError: if a topology cannot be fully placed and the
                scheduler is not configured for partial results.
        """

    def run(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> SchedulingRound:
        """Invoke :meth:`schedule` and capture latency diagnostics."""
        started = time.perf_counter()
        assignments = self.schedule(topologies, cluster, existing)
        duration = time.perf_counter() - started
        newly = {}
        for topo in topologies:
            before = existing.get(topo.topology_id) if existing else None
            after = assignments.get(topo.topology_id)
            if after is None:
                newly[topo.topology_id] = 0
                continue
            if before is None:
                newly[topo.topology_id] = len(after)
                continue
            newly[topo.topology_id] = sum(
                1 for task in after.as_dict() if not before.has(task)
            )
        return SchedulingRound(
            scheduler=self.name,
            topologies=[t.topology_id for t in topologies],
            duration_s=duration,
            assignments=assignments,
            newly_scheduled=newly,
        )
