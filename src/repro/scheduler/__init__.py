"""Schedulers: R-Storm (the paper's contribution) and baselines."""

from repro.scheduler.admission import (
    AdmissionDecision,
    AdmissionPlan,
    AdmissionRequest,
    TenantSpec,
    jain_index,
    plan_admission,
)
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler, SchedulingRound
from repro.scheduler.default import DefaultScheduler, interleaved_slots
from repro.scheduler.global_state import GlobalState
from repro.scheduler.ordering import (
    TaskOrderingStrategy,
    interleave_component_tasks,
    ordered_tasks,
)
from repro.scheduler.packed import PackedClusterState
from repro.scheduler.quality import (
    ScheduleQuality,
    aggregate_node_load,
    evaluate_assignment,
)
from repro.scheduler.rebalance import OnlineRebalancer
from repro.scheduler.rstorm import DistanceWeights, RStormScheduler
from repro.scheduler.visualise import render_assignments, render_node_loads

__all__ = [
    "AdmissionDecision",
    "AdmissionPlan",
    "AdmissionRequest",
    "AnielloOfflineScheduler",
    "Assignment",
    "DefaultScheduler",
    "DistanceWeights",
    "GlobalState",
    "IScheduler",
    "OnlineRebalancer",
    "PackedClusterState",
    "RStormScheduler",
    "ScheduleQuality",
    "SchedulingRound",
    "TaskOrderingStrategy",
    "TenantSpec",
    "aggregate_node_load",
    "evaluate_assignment",
    "interleave_component_tasks",
    "interleaved_slots",
    "jain_index",
    "ordered_tasks",
    "plan_admission",
    "render_assignments",
    "render_node_loads",
]
