"""Plain-text visualisation of schedules.

Renders the rack/node/slot layout of one or more assignments the way the
paper's Figure 3 sketches a scheduled cluster — which machine runs which
tasks, plus per-node resource loads — so placement differences between
schedulers are visible at a glance in terminals, logs and docs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.scheduler.assignment import Assignment
from repro.scheduler.quality import aggregate_node_load
from repro.topology.topology import Topology

__all__ = ["render_assignments", "render_node_loads"]


def _task_labels_by_slot(
    placements: Sequence[Tuple[Topology, Assignment]],
) -> Dict[object, List[str]]:
    by_slot: Dict[object, List[str]] = defaultdict(list)
    multiple = len(placements) > 1
    for topology, assignment in placements:
        for task in assignment.tasks:
            slot = assignment.slot_of(task)
            label = f"{task.component}[{task.instance}]"
            if multiple:
                label = f"{topology.topology_id}/{label}"
            by_slot[slot].append(label)
    return by_slot


def render_assignments(
    cluster: Cluster,
    placements: Sequence[Tuple[Topology, Assignment]],
    show_empty_nodes: bool = False,
    max_width: int = 100,
) -> str:
    """A rack -> node -> slot text tree of the given placements.

    Args:
        cluster: The cluster the assignments refer to.
        placements: ``(topology, assignment)`` pairs to overlay.
        show_empty_nodes: Include nodes hosting nothing.
        max_width: Wrap task lists at roughly this many columns.
    """
    by_slot = _task_labels_by_slot(placements)
    load = aggregate_node_load(list(placements))
    lines: List[str] = []
    for rack in sorted(cluster.racks, key=lambda r: r.rack_id):
        rack_nodes = sorted(rack.nodes, key=lambda n: n.node_id)
        used_nodes = [
            node
            for node in rack_nodes
            if show_empty_nodes
            or any(by_slot.get(slot) for slot in node.slots)
        ]
        if not used_nodes:
            continue
        lines.append(f"{rack.rack_id}/")
        for node in used_nodes:
            demand = load.get(node.node_id)
            if demand is not None:
                mem = f"{demand.memory_mb:.0f}/{node.capacity.memory_mb:.0f}MB"
                cpu = f"{demand.cpu:.0f}/{node.capacity.cpu:.0f}pts"
                suffix = f"  [{mem}, {cpu}]"
                if demand.memory_mb > node.capacity.memory_mb:
                    suffix += "  !! MEMORY OVER-COMMITTED"
            else:
                suffix = "  [idle]"
            status = "" if node.alive else "  (DEAD)"
            lines.append(f"  {node.node_id}{status}{suffix}")
            for slot in node.slots:
                labels = by_slot.get(slot)
                if not labels:
                    continue
                prefix = f"    :{slot.port}  "
                line = prefix
                for label in sorted(labels):
                    candidate = (
                        f"{line}{label} "
                        if line != prefix
                        else f"{line}{label} "
                    )
                    if len(candidate) > max_width and line != prefix:
                        lines.append(line.rstrip())
                        line = " " * len(prefix) + f"{label} "
                    else:
                        line = candidate
                lines.append(line.rstrip())
    if not lines:
        return "(no tasks placed)"
    return "\n".join(lines)


def render_node_loads(
    cluster: Cluster,
    placements: Sequence[Tuple[Topology, Assignment]],
    bar_width: int = 30,
) -> str:
    """Per-node CPU/memory load bars, paper-Figure-10 style."""
    load = aggregate_node_load(list(placements))
    lines = []

    def bar(fraction: float) -> str:
        filled = int(round(min(fraction, 1.0) * bar_width))
        over = "+" if fraction > 1.0 else ""
        return "#" * filled + "." * (bar_width - filled) + over

    for node in sorted(cluster.nodes, key=lambda n: n.node_id):
        demand = load.get(node.node_id)
        if demand is None:
            continue
        cpu_frac = (
            demand.cpu / node.capacity.cpu if node.capacity.cpu > 0 else 0.0
        )
        mem_frac = (
            demand.memory_mb / node.capacity.memory_mb
            if node.capacity.memory_mb > 0
            else 0.0
        )
        lines.append(
            f"{node.node_id:12s} cpu |{bar(cpu_frac)}| {cpu_frac * 100:5.1f}%  "
            f"mem |{bar(mem_frac)}| {mem_frac * 100:5.1f}%"
        )
    return "\n".join(lines) if lines else "(no tasks placed)"
