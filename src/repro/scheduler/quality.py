"""Schedule quality metrics.

Static (pre-simulation) measures of how good an assignment is: how many
machines it touches, how much network distance communicating task pairs
pay, how balanced the load is, and whether any hard constraint is
over-committed.  The experiments report these alongside the simulated
throughput to explain *why* one scheduler beats another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel
from repro.cluster.resources import ResourceSchema, ResourceVector
from repro.errors import SchemaMismatchError
from repro.scheduler.assignment import Assignment
from repro.topology.topology import Topology

__all__ = ["ScheduleQuality", "evaluate_assignment", "aggregate_node_load"]


@dataclass(frozen=True)
class ScheduleQuality:
    """Summary statistics for one topology's assignment.

    Attributes:
        topology_id: The topology measured.
        nodes_used: Distinct nodes hosting at least one task.
        slots_used: Distinct worker slots used.
        task_pairs: Communicating task pairs (producer task x consumer
            task over every stream edge).
        total_network_distance: Sum of abstract network distance over all
            communicating pairs (lower = better locality).
        mean_network_distance: ``total_network_distance / task_pairs``.
        pairs_by_level: Communicating pairs bucketed by locality level.
        hard_violations: Count of (node, dimension) pairs where summed
            hard demand exceeds capacity — always 0 for R-Storm.
        max_cpu_overcommit: Largest per-node ratio of summed CPU demand to
            capacity (1.0 = exactly full; >1 over-committed).
    """

    topology_id: str
    nodes_used: int
    slots_used: int
    task_pairs: int
    total_network_distance: float
    mean_network_distance: float
    pairs_by_level: Dict[DistanceLevel, int]
    hard_violations: int
    max_cpu_overcommit: float


def _edge_task_pairs(topology: Topology) -> List[Tuple[object, object]]:
    pairs = []
    for source, target, _ in topology.edges():
        for producer in topology.tasks_of(source):
            for consumer in topology.tasks_of(target):
                pairs.append((producer, consumer))
    return pairs


def evaluate_assignment(
    topology: Topology,
    assignment: Assignment,
    cluster: Cluster,
    extra_assignments: Optional[Mapping[str, Tuple[Topology, Assignment]]] = None,
) -> ScheduleQuality:
    """Compute :class:`ScheduleQuality` for one topology's assignment.

    Args:
        extra_assignments: Other topologies sharing the cluster
            (topology_id -> (topology, assignment)); their demands count
            toward the violation/over-commit figures since they share
            node budgets.
    """
    pairs = _edge_task_pairs(topology)
    total_distance = 0.0
    by_level: Dict[DistanceLevel, int] = {level: 0 for level in DistanceLevel}
    # Pair counts grow quadratically in parallelism, but distinct slot
    # pairs do not: memoise the level per (slot, slot) within this call.
    slot_of = assignment.slot_of
    level_cache: Dict[Tuple[object, object], DistanceLevel] = {}
    distance_of = {
        level: cluster.topography.distance(level) for level in DistanceLevel
    }
    for producer, consumer in pairs:
        slot_p = slot_of(producer)
        slot_c = slot_of(consumer)
        key = (slot_p, slot_c)
        level = level_cache.get(key)
        if level is None:
            level = cluster.slot_distance_level(slot_p, slot_c)
            level_cache[key] = level
        by_level[level] += 1
        total_distance += distance_of[level]

    load = aggregate_node_load(
        [(topology, assignment)]
        + [pair for pair in (extra_assignments or {}).values()]
    )
    hard_violations = 0
    max_cpu_overcommit = 0.0
    for node_id, demand in load.items():
        node = cluster.node(node_id)
        for dim in node.schema.hard_names:
            if demand[dim] > node.capacity[dim] + 1e-9:
                hard_violations += 1
        cpu_cap = node.capacity["cpu"]
        if cpu_cap > 0:
            max_cpu_overcommit = max(
                max_cpu_overcommit, demand["cpu"] / cpu_cap
            )

    return ScheduleQuality(
        topology_id=topology.topology_id,
        nodes_used=len(assignment.nodes),
        slots_used=len(assignment.slots),
        task_pairs=len(pairs),
        total_network_distance=total_distance,
        mean_network_distance=(
            total_distance / len(pairs) if pairs else 0.0
        ),
        pairs_by_level=by_level,
        hard_violations=hard_violations,
        max_cpu_overcommit=max_cpu_overcommit,
    )


def aggregate_node_load(
    placements: Sequence[Tuple[Topology, Assignment]],
) -> Dict[str, ResourceVector]:
    """Summed declared demand per node across the given placements.

    Accumulates into flat per-dimension floats (one demand lookup per
    component, no intermediate vectors); additions happen per node in
    task-sorted order per dimension, exactly like the vector-sum
    formulation, so results are bit-identical.
    """
    totals: Dict[str, List[float]] = {}
    schemas: Dict[str, ResourceSchema] = {}
    for topology, assignment in placements:
        demand_values: Dict[
            str, Tuple[Tuple[float, ...], ResourceSchema]
        ] = {}
        for task in assignment.tasks:
            component = task.component
            cached = demand_values.get(component)
            if cached is None:
                demand = topology.task_demand(task)
                cached = (demand.values, demand.schema)
                demand_values[component] = cached
            values, schema = cached
            node_id = assignment.node_of(task)
            acc = totals.get(node_id)
            if acc is None:
                totals[node_id] = list(values)
                schemas[node_id] = schema
            else:
                node_schema = schemas[node_id]
                if node_schema is not schema and node_schema != schema:
                    raise SchemaMismatchError(
                        f"cannot combine vectors from schemas "
                        f"{node_schema!r} and {schema!r}"
                    )
                for d, value in enumerate(values):
                    acc[d] += value
    return {
        node_id: ResourceVector(schemas[node_id], values)
        for node_id, values in totals.items()
    }
