"""Task selection — Algorithm 3 of the paper.

Given a component ordering (BFS from the spouts by default, Algorithm 2),
the task ordering repeatedly sweeps the component list taking one task
from each component that still has tasks left.  Adjacent components thus
contribute tasks in close succession, and the greedy node selection packs
them onto nearby nodes — the paper's first desired property.
"""

from __future__ import annotations

import enum
import weakref
from typing import Callable, Dict, List, Sequence, Tuple

from repro.topology.task import Task
from repro.topology.topology import Topology
from repro.topology.traversal import (
    bfs_component_order,
    dfs_component_order,
    topological_component_order,
)

__all__ = ["TaskOrderingStrategy", "ordered_tasks", "interleave_component_tasks"]


class TaskOrderingStrategy(enum.Enum):
    """How components are linearised before task interleaving.

    BFS is the paper's choice; DFS and TOPOLOGICAL are ablation baselines
    (DESIGN.md, "design choices called out for ablation").
    """

    BFS = "bfs"
    DFS = "dfs"
    TOPOLOGICAL = "topological"


_ORDERERS: Dict[TaskOrderingStrategy, Callable[[Topology], List[str]]] = {
    TaskOrderingStrategy.BFS: bfs_component_order,
    TaskOrderingStrategy.DFS: dfs_component_order,
    TaskOrderingStrategy.TOPOLOGICAL: topological_component_order,
}


def interleave_component_tasks(
    topology: Topology, component_order: Sequence[str]
) -> List[Task]:
    """Algorithm 3's while-loop: sweep the component ordering, taking one
    task per component per sweep, until every task is taken."""
    remaining: Dict[str, List[Task]] = {
        name: list(topology.tasks_of(name)) for name in component_order
    }
    ordering: List[Task] = []
    total = sum(len(ts) for ts in remaining.values())
    while len(ordering) < total:
        progressed = False
        for name in component_order:
            tasks = remaining[name]
            if tasks:
                ordering.append(tasks.pop(0))
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return ordering


#: Per-topology ordering cache.  A topology's structure (components,
#: parallelism, edges) is frozen once built, so the linearisation never
#: changes; schedulers call this every round, which used to redo the BFS
#: and the interleaving sweep each time.  Weak keys let topologies be
#: collected normally.
_OrderEntry = Dict[TaskOrderingStrategy, Tuple[Task, ...]]
_ORDER_CACHE: "weakref.WeakKeyDictionary[Topology, _OrderEntry]" = (
    weakref.WeakKeyDictionary()
)


def ordered_tasks(
    topology: Topology,
    strategy: TaskOrderingStrategy = TaskOrderingStrategy.BFS,
) -> List[Task]:
    """The full task-selection procedure: component linearisation followed
    by round-robin task interleaving.

    The ordering depends only on immutable topology structure, so it is
    memoised per (topology, strategy); a fresh list is returned each call
    so callers may mutate their copy freely.
    """
    per_topology = _ORDER_CACHE.get(topology)
    if per_topology is None:
        per_topology = {}
        _ORDER_CACHE[topology] = per_topology
    cached = per_topology.get(strategy)
    if cached is None:
        component_order = _ORDERERS[strategy](topology)
        cached = tuple(interleave_component_tasks(topology, component_order))
        per_topology[strategy] = cached
    return list(cached)
