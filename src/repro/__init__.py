"""R-Storm: resource-aware scheduling for Storm-like stream processors.

A complete Python reproduction of *R-Storm: Resource-Aware Scheduling in
Storm* (Peng et al., Middleware 2015): the R-Storm scheduler, Storm's
default scheduler, the full execution substrate (topologies, a two-level
cluster/network model, a discrete-event Storm runtime simulator, and a
Nimbus/supervisor/ZooKeeper coordination plane), the paper's evaluation
workloads, and an experiment harness regenerating every figure.

Quickstart::

    from repro import (
        TopologyBuilder, RStormScheduler, SimulationRun, emulab_testbed,
    )

    builder = TopologyBuilder("wordcount")
    builder.set_spout("sentences", 4).set_memory_load(512.0).set_cpu_load(25.0)
    builder.set_bolt("split", 4).shuffle_grouping("sentences")
    topology = builder.build()

    cluster = emulab_testbed()
    assignment = RStormScheduler().schedule([topology], cluster)["wordcount"]
    report = SimulationRun(cluster, [(topology, assignment)]).run()
    print(report.summary())
"""

from repro.cluster import (
    Cluster,
    DistanceLevel,
    NetworkTopography,
    Node,
    Rack,
    ResourceSchema,
    ResourceVector,
    WorkerSlot,
    emulab_testbed,
    heterogeneous_cluster,
    single_rack_cluster,
    uniform_cluster,
)
from repro.errors import (
    ConfigError,
    InsufficientResourcesError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyValidationError,
)
from repro.nimbus import InMemoryZooKeeper, Nimbus, StormConfig, Supervisor
from repro.scheduler import (
    AnielloOfflineScheduler,
    Assignment,
    DefaultScheduler,
    DistanceWeights,
    GlobalState,
    IScheduler,
    RStormScheduler,
    TaskOrderingStrategy,
    evaluate_assignment,
)
from repro.simulation import (
    SimulationConfig,
    SimulationReport,
    SimulationRun,
    Simulator,
    StatisticServer,
)
from repro.topology import (
    ExecutionProfile,
    Task,
    Topology,
    TopologyBuilder,
    bfs_component_order,
)

__version__ = "1.0.0"

__all__ = [
    "AnielloOfflineScheduler",
    "Assignment",
    "Cluster",
    "ConfigError",
    "DefaultScheduler",
    "DistanceLevel",
    "DistanceWeights",
    "ExecutionProfile",
    "GlobalState",
    "IScheduler",
    "InMemoryZooKeeper",
    "InsufficientResourcesError",
    "NetworkTopography",
    "Nimbus",
    "Node",
    "RStormScheduler",
    "Rack",
    "ReproError",
    "ResourceSchema",
    "ResourceVector",
    "SchedulingError",
    "SimulationConfig",
    "SimulationError",
    "SimulationReport",
    "SimulationRun",
    "Simulator",
    "StatisticServer",
    "StormConfig",
    "Supervisor",
    "Task",
    "TaskOrderingStrategy",
    "Topology",
    "TopologyBuilder",
    "TopologyValidationError",
    "WorkerSlot",
    "bfs_component_order",
    "emulab_testbed",
    "evaluate_assignment",
    "heterogeneous_cluster",
    "single_rack_cluster",
    "uniform_cluster",
    "__version__",
]
