"""Analytical steady-state flow model.

A fast, closed-form-ish complement to the discrete-event simulator:
given placements, it predicts steady-state throughput by propagating
tuple rates through the topology DAG and scaling them down until every
shared resource fits its capacity.

The model captures the first-order effects the scheduling comparison
depends on:

* **single-thread ceilings** — one task processes at most
  ``1 / cpu_ms_per_tuple`` tuples per second;
* **node CPU** — co-located tasks share ``cores`` worth of CPU, with
  serde surcharges on tuples arriving from other worker processes;
* **NIC bandwidth** — per-node transmit and receive byte budgets;
* **the inter-rack uplink** — a shared byte budget per rack pair;
* **memory thrash** — a node whose resident memory exceeds physical
  capacity divides its effective CPU by the thrash factor.

It deliberately ignores latency, queueing and acker credit dynamics, so
it *over*-estimates latency-bound workloads; use the DES when those
matter.  Its role here is bottleneck attribution and quick what-if
sweeps (it evaluates a placement in microseconds instead of seconds).

Solution method: start from each spout's offered rate (its rate cap, or
its single-core ceiling), then repeatedly find the most-overloaded
resource and scale down the rates of every topology that uses it until
all constraints hold (within a small tolerance).  This is a standard
iterative bottleneck-scaling scheme; it converges because every step
reduces some topology's scale and scales are bounded below by zero.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import DistanceLevel
from repro.errors import SimulationError
from repro.scheduler.assignment import Assignment
from repro.simulation.config import SimulationConfig
from repro.topology.grouping import AllGrouping, GlobalGrouping
from repro.topology.task import Task
from repro.topology.topology import Topology

__all__ = ["FlowResult", "FlowModel"]

#: Stand-in offered rate for uncapped spouts before CPU ceilings apply.
_UNBOUNDED_TPS = 1e12

#: Convergence tolerance on resource over-utilisation.
_TOLERANCE = 1e-6

_MAX_ITERATIONS = 10_000


@dataclass
class FlowResult:
    """Steady-state prediction for one set of placements."""

    #: tuples/s processed per task
    task_rates: Dict[Task, float]
    #: tuples/s entering each (topology, component)
    component_rates: Dict[Tuple[str, str], float]
    #: tuples/s absorbed by each topology's sinks
    topology_throughput_tps: Dict[str, float]
    #: per-topology final scale factor (1.0 = offered load fully served)
    scales: Dict[str, float]
    #: description of each topology's binding constraint
    bottlenecks: Dict[str, str]
    #: node id -> predicted CPU utilisation (0..1)
    node_cpu_utilisation: Dict[str, float]
    #: node id -> predicted NIC utilisation, max of tx and rx (0..1)
    node_nic_utilisation: Dict[str, float]
    #: frozenset({rack_a, rack_b}) -> predicted uplink utilisation
    uplink_utilisation: Dict[frozenset, float]

    def throughput_per_window(self, topology_id: str, window_s: float = 10.0) -> float:
        """Predicted sink tuples per metrics window (the paper's unit)."""
        return self.topology_throughput_tps.get(topology_id, 0.0) * window_s


class FlowModel:
    """Evaluate placements analytically.

    Args:
        cluster: Supplies capacities and the topography.
        config: Only ``serde_ms_per_tuple`` and ``thrash_factor`` are
            consulted.
        interrack_uplink_mbps: Shared rack-pair capacity; defaults to the
            same 10x-NIC rule as :class:`~repro.simulation.network.TransferModel`.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SimulationConfig] = None,
        interrack_uplink_mbps: Optional[float] = None,
    ):
        self.cluster = cluster
        self.config = config or SimulationConfig()
        topo = cluster.topography
        nic = topo.bandwidth_mbps(DistanceLevel.INTER_RACK)
        if interrack_uplink_mbps is not None:
            self.uplink_mbps = interrack_uplink_mbps
        else:
            self.uplink_mbps = 10.0 * nic if nic else None
        self.nic_mbps = topo.bandwidth_mbps(DistanceLevel.INTER_NODE)

    # -- public API ---------------------------------------------------------

    def solve(
        self, placements: Sequence[Tuple[Topology, Assignment]]
    ) -> FlowResult:
        """Predict steady-state rates for the given placements."""
        for topology, assignment in placements:
            if not assignment.is_complete(topology):
                raise SimulationError(
                    f"assignment for {topology.topology_id!r} is incomplete"
                )
        scales = {t.topology_id: 1.0 for t, _ in placements}
        bottlenecks = {t.topology_id: "offered load" for t, _ in placements}

        for _ in range(_MAX_ITERATIONS):
            usage = self._usage_at(placements, scales)
            worst = self._most_overloaded(usage)
            if worst is None:
                break
            resource_key, factor, description = worst
            involved = usage.contributors[resource_key]
            for topo_id in involved:
                share = 1.0 / factor
                if scales[topo_id] * share < scales[topo_id]:
                    scales[topo_id] *= share
                    bottlenecks[topo_id] = description
        else:  # pragma: no cover - defensive
            raise SimulationError("flow model failed to converge")

        usage = self._usage_at(placements, scales)
        throughput = {}
        for topology, assignment in placements:
            sink_rate = 0.0
            for sink in topology.sinks:
                sink_rate += usage.component_rates[
                    (topology.topology_id, sink.name)
                ]
            throughput[topology.topology_id] = sink_rate

        cpu_utilisation = {}
        for node in self.cluster.nodes:
            load = usage.node_cpu.get(node.node_id)
            if load is None:
                continue
            cores = max(1.0, round(node.capacity.cpu / 100.0))
            cpu_utilisation[node.node_id] = load / cores
        nic_bps = self.nic_mbps * 1e6 / 8.0 if self.nic_mbps else None
        nic_utilisation = {}
        for node_id in set(usage.node_tx) | set(usage.node_rx):
            peak = max(
                usage.node_tx.get(node_id, 0.0), usage.node_rx.get(node_id, 0.0)
            )
            nic_utilisation[node_id] = peak / nic_bps if nic_bps else 0.0
        uplink_bps = (
            self.uplink_mbps * 1e6 / 8.0 if self.uplink_mbps else None
        )
        uplink_utilisation = {
            key: (bps / uplink_bps if uplink_bps else 0.0)
            for key, bps in usage.uplink.items()
        }
        return FlowResult(
            task_rates=usage.task_rates,
            component_rates=usage.component_rates,
            topology_throughput_tps=throughput,
            scales=scales,
            bottlenecks=bottlenecks,
            node_cpu_utilisation=cpu_utilisation,
            node_nic_utilisation=nic_utilisation,
            uplink_utilisation=uplink_utilisation,
        )

    # -- rate propagation -----------------------------------------------------

    def _component_input_rates(
        self, topology: Topology, scale: float
    ) -> Dict[str, float]:
        """Tuples/s entering each component at the given spout scale.

        Spout "input" is defined as its emission rate.  Cyclic topologies
        are handled by fixed-point iteration with a feedback damping cap.
        """
        rates: Dict[str, float] = {}
        for spout in topology.spouts:
            cap = spout.profile.max_rate_tps
            per_task = cap if cap is not None else _UNBOUNDED_TPS
            ceiling = (
                1e3 / spout.profile.cpu_ms_per_tuple
                if spout.profile.cpu_ms_per_tuple > 0
                else _UNBOUNDED_TPS
            )
            rates[spout.name] = (
                min(per_task, ceiling) * spout.parallelism * scale
            )
        # iterate to a fixed point (topologies may be cyclic)
        for _ in range(len(topology.components) + 5):
            changed = False
            for comp in topology.components.values():
                if comp.is_spout:
                    continue
                inbound = 0.0
                for sub in comp.subscriptions:
                    producer = topology.component(sub.source)
                    produced = rates.get(sub.source, 0.0)
                    out = produced * (
                        producer.profile.output_ratio
                        if producer.is_bolt
                        else 1.0
                    )
                    if isinstance(sub.grouping, AllGrouping):
                        out *= comp.parallelism
                    inbound += out
                if not math.isclose(
                    rates.get(comp.name, -1.0), inbound, rel_tol=1e-9
                ):
                    rates[comp.name] = inbound
                    changed = True
            if not changed:
                break
        return rates

    # -- usage accounting ---------------------------------------------------------

    class _Usage:
        def __init__(self):
            self.task_rates: Dict[Task, float] = {}
            self.component_rates: Dict[Tuple[str, str], float] = {}
            self.node_cpu: Dict[str, float] = defaultdict(float)
            self.node_tx: Dict[str, float] = defaultdict(float)
            self.node_rx: Dict[str, float] = defaultdict(float)
            self.uplink: Dict[frozenset, float] = defaultdict(float)
            self.single_thread: Dict[Task, float] = {}
            #: resource key -> topology ids contributing to it
            self.contributors: Dict[object, set] = defaultdict(set)

    def _node_thrash(self, placements) -> Dict[str, float]:
        resident: Dict[str, float] = defaultdict(float)
        for topology, assignment in placements:
            for task in assignment.tasks:
                resident[assignment.node_of(task)] += topology.component(
                    task.component
                ).resident_memory_mb
        factors = {}
        for node in self.cluster.nodes:
            if (
                node.capacity.memory_mb > 0
                and resident[node.node_id] > node.capacity.memory_mb
            ):
                factors[node.node_id] = self.config.thrash_factor
            else:
                factors[node.node_id] = 1.0
        return factors

    def _usage_at(self, placements, scales) -> "_Usage":
        usage = self._Usage()
        thrash = self._node_thrash(placements)
        serde_ms = self.config.serde_ms_per_tuple
        for topology, assignment in placements:
            topo_id = topology.topology_id
            scale = scales[topo_id]
            comp_rates = self._component_input_rates(topology, scale)
            for name, rate in comp_rates.items():
                usage.component_rates[(topo_id, name)] = rate
            for task in topology.tasks:
                comp = topology.component(task.component)
                grouping_share = self._task_share(topology, task)
                rate = comp_rates[comp.name] * grouping_share
                usage.task_rates[task] = rate
                node_id = assignment.node_of(task)
                remote_frac = self._remote_input_fraction(
                    topology, assignment, task
                )
                effective_ms = (
                    comp.profile.cpu_ms_per_tuple
                    + (serde_ms * remote_frac if comp.is_bolt else 0.0)
                ) * thrash[node_id]
                usage.node_cpu[node_id] += rate * effective_ms / 1e3
                usage.single_thread[task] = rate * effective_ms / 1e3
                usage.contributors[("cpu", node_id)].add(topo_id)
                usage.contributors[("task", task)].add(topo_id)
                # outbound bytes
                self._account_transfers(usage, topology, assignment, task, rate)
        return usage

    @staticmethod
    def _task_share(topology: Topology, task: Task) -> float:
        comp = topology.component(task.component)
        if comp.is_spout:
            return 1.0 / comp.parallelism
        for sub in comp.subscriptions:
            if isinstance(sub.grouping, GlobalGrouping):
                return 1.0 if task.instance == 0 else 0.0
        return 1.0 / comp.parallelism

    def _remote_input_fraction(
        self, topology: Topology, assignment: Assignment, task: Task
    ) -> float:
        """Fraction of a task's inbound tuples arriving from other worker
        processes (pays serde)."""
        comp = topology.component(task.component)
        if comp.is_spout or not comp.subscriptions:
            return 0.0
        my_slot = assignment.slot_of(task)
        total = 0
        local = 0
        for sub in comp.subscriptions:
            for producer_task in topology.tasks_of(sub.source):
                total += 1
                if assignment.slot_of(producer_task) == my_slot:
                    local += 1
        if total == 0:
            return 0.0
        return 1.0 - local / total

    def _account_transfers(
        self, usage, topology, assignment, task, rate
    ) -> None:
        comp = topology.component(task.component)
        out_rate = rate * (comp.profile.output_ratio if comp.is_bolt else 1.0)
        if out_rate <= 0:
            return
        bytes_per_tuple = comp.profile.tuple_bytes
        src_slot = assignment.slot_of(task)
        src_node = src_slot.node_id
        topo_id = topology.topology_id
        for consumer_name in topology.downstream_of(comp.name):
            consumer = topology.component(consumer_name)
            sub = next(
                s for s in consumer.subscriptions if s.source == comp.name
            )
            copies = (
                consumer.parallelism
                if isinstance(sub.grouping, AllGrouping)
                else 1.0
            )
            stream_bps = out_rate * copies * bytes_per_tuple
            for consumer_task in topology.tasks_of(consumer_name):
                share = self._task_share(topology, consumer_task)
                if isinstance(sub.grouping, AllGrouping):
                    share = 1.0 / consumer.parallelism
                flow_bps = stream_bps * share
                dst_slot = assignment.slot_of(consumer_task)
                level = self.cluster.slot_distance_level(src_slot, dst_slot)
                if level in (
                    DistanceLevel.INTRA_PROCESS,
                    DistanceLevel.INTER_PROCESS,
                ):
                    continue
                dst_node = dst_slot.node_id
                usage.node_tx[src_node] += flow_bps
                usage.node_rx[dst_node] += flow_bps
                usage.contributors[("tx", src_node)].add(topo_id)
                usage.contributors[("rx", dst_node)].add(topo_id)
                if level is DistanceLevel.INTER_RACK:
                    key = frozenset(
                        (
                            self.cluster.node(src_node).rack_id,
                            self.cluster.node(dst_node).rack_id,
                        )
                    )
                    usage.uplink[key] += flow_bps
                    usage.contributors[("uplink", key)].add(topo_id)

    # -- bottleneck search ---------------------------------------------------------

    def _most_overloaded(self, usage) -> Optional[Tuple[object, float, str]]:
        worst_key = None
        worst_factor = 1.0 + _TOLERANCE
        worst_desc = ""
        for node in self.cluster.nodes:
            cores = max(1.0, round(node.capacity.cpu / 100.0))
            load = usage.node_cpu.get(node.node_id, 0.0)
            factor = load / cores
            if factor > worst_factor:
                worst_key = ("cpu", node.node_id)
                worst_factor = factor
                worst_desc = f"CPU on {node.node_id}"
        for task, load in usage.single_thread.items():
            if load > worst_factor:
                worst_key = ("task", task)
                worst_factor = load
                worst_desc = f"single-thread ceiling of {task}"
        if self.nic_mbps:
            nic_bps = self.nic_mbps * 1e6 / 8.0
            for direction, table in (("tx", usage.node_tx), ("rx", usage.node_rx)):
                for node_id, bps in table.items():
                    factor = bps / nic_bps
                    if factor > worst_factor:
                        worst_key = (direction, node_id)
                        worst_factor = factor
                        worst_desc = f"NIC {direction} on {node_id}"
        if self.uplink_mbps:
            uplink_bps = self.uplink_mbps * 1e6 / 8.0
            for key, bps in usage.uplink.items():
                factor = bps / uplink_bps
                if factor > worst_factor:
                    worst_key = ("uplink", key)
                    worst_factor = factor
                    worst_desc = f"inter-rack uplink {sorted(key)}"
        if worst_key is None:
            return None
        return worst_key, worst_factor, worst_desc
