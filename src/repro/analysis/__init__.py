"""Analytical models complementing the discrete-event simulator."""

from repro.analysis.flow import FlowModel, FlowResult

__all__ = ["FlowModel", "FlowResult"]
