"""Exception hierarchy for the R-Storm reproduction.

Every error raised by this library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaMismatchError(ReproError):
    """Two resource vectors with different schemas were combined."""


class UnknownResourceError(ReproError, KeyError):
    """A resource dimension name was not found in the schema."""


class InsufficientResourcesError(ReproError):
    """A hard resource constraint would be violated by a reservation."""

    def __init__(self, message: str, *, node_id: str = "", resource: str = ""):
        super().__init__(message)
        self.node_id = node_id
        self.resource = resource


class TopologyValidationError(ReproError):
    """A topology definition is structurally invalid."""


class SchedulingError(ReproError):
    """The scheduler could not produce a complete assignment."""

    def __init__(self, message: str, *, unassigned=None):
        super().__init__(message)
        self.unassigned = list(unassigned) if unassigned is not None else []


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid or missing configuration value."""


class ClusterStateError(ReproError):
    """The cluster model was mutated into an inconsistent state."""


class MembershipError(ReproError):
    """A node or supervisor referenced in coordination does not exist."""
