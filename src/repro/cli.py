"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig8 [--duration 120]
    python -m repro chaos [--duration 120]    # fault-injection recovery study
    python -m repro chaos --loss-rate 0.05 --quarantine   # delivery semantics
    python -m repro traffic [--duration 120]  # open-loop overload sweep
    python -m repro all [--duration 120] [--series] [--save results/]
    python -m repro all --jobs 4              # fan misses out over processes
    python -m repro all --no-cache            # force fresh simulations
    python -m repro fig9 --cache-dir /tmp/c   # alternate cache location
    python -m repro bench [--check]           # microbenchmarks (see --help)

Results are memoised on disk (default ``.repro-cache/``, overridable via
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable): re-running
a figure whose inputs and code have not changed re-reads the cached
outcomes instead of simulating.  ``--jobs N`` runs cache misses in ``N``
worker processes.
"""

from __future__ import annotations

import argparse
import csv
import os
import pathlib
import sys
from typing import List, Optional

from repro.experiments import REGISTRY
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext

__all__ = ["main", "build_parser", "build_context", "save_result"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rstorm",
        description=(
            "Reproduce the evaluation of 'R-Storm: Resource-Aware "
            "Scheduling in Storm' (Middleware 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY) + ["all", "list"],
        help="experiment id (figure) to run, 'all', or 'list'",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="simulated seconds per run (default 120; the paper ran ~15 min)",
    )
    parser.add_argument(
        "--series",
        action="store_true",
        help="also print per-window throughput series",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="write the table (.txt) and each series (.csv) into DIR",
    )
    parser.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "chaos only: add a lossy-link scenario with this per-batch "
            "drop probability and enable at-least-once replay"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help=(
            "chaos only: replay budget per root tuple in extended mode "
            "(default 3)"
        ),
    )
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "chaos only: enable Nimbus node quarantine and add a "
            "flapping-node scenario (extended mode)"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached work units (default 1: inline)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (always simulate)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "result-cache directory (default $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR!r})"
        ),
    )
    return parser


def build_context(args) -> ExperimentContext:
    """The :class:`ExperimentContext` implied by parsed CLI flags."""
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            "REPRO_CACHE_DIR", DEFAULT_CACHE_DIR
        )
        cache = ResultCache(cache_dir)
    return ExperimentContext(jobs=args.jobs, cache=cache)


def save_result(result: ExperimentResult, directory: str) -> List[str]:
    """Persist a result: one text table plus one CSV per series.

    Returns the written paths.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    table_path = out_dir / f"{result.experiment_id}.txt"
    table_path.write_text(result.format(include_series=False) + "\n")
    written.append(str(table_path))
    if result.series:
        csv_path = out_dir / f"{result.experiment_id}_series.csv"
        starts = sorted(
            {start for points in result.series.values() for start, _ in points}
        )
        labels = sorted(result.series)
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["window_start_s"] + labels)
            for start in starts:
                row = [f"{start:g}"]
                for label in labels:
                    values = dict(result.series[label])
                    row.append(values.get(start, ""))
                writer.writerow(row)
        written.append(str(csv_path))
    return written


def _run_one(name: str, args, context: ExperimentContext) -> None:
    runner = REGISTRY[name]
    if name == "overhead":
        result = runner(context=context)
    elif name == "chaos":
        result = runner(
            duration_s=args.duration,
            context=context,
            loss_rate=args.loss_rate,
            max_retries=args.max_retries,
            quarantine=args.quarantine,
        )
    else:
        result = runner(duration_s=args.duration, context=context)
    print(result.format(include_series=args.series))
    if args.save:
        for path in save_result(result, args.save):
            print(f"wrote {path}")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # The bench subcommand owns its flags; import lazily so figure
        # runs never pay for it.
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(REGISTRY):
            print(name)
        return 0
    context = build_context(args)
    if args.experiment == "all":
        for name in sorted(REGISTRY):
            _run_one(name, args, context)
    else:
        _run_one(args.experiment, args, context)
    if context.cache is not None:
        print(
            f"cache: {context.cache.hits} hit(s), "
            f"{context.cache.misses} miss(es) in {context.cache.root}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
