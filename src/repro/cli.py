"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig8 [--duration 120]
    python -m repro all [--duration 120] [--series] [--save results/]
"""

from __future__ import annotations

import argparse
import csv
import pathlib
import sys
from typing import List, Optional

from repro.experiments import REGISTRY
from repro.experiments.harness import ExperimentResult

__all__ = ["main", "build_parser", "save_result"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rstorm",
        description=(
            "Reproduce the evaluation of 'R-Storm: Resource-Aware "
            "Scheduling in Storm' (Middleware 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY) + ["all", "list"],
        help="experiment id (figure) to run, 'all', or 'list'",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="simulated seconds per run (default 120; the paper ran ~15 min)",
    )
    parser.add_argument(
        "--series",
        action="store_true",
        help="also print per-window throughput series",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="write the table (.txt) and each series (.csv) into DIR",
    )
    return parser


def save_result(result: ExperimentResult, directory: str) -> List[str]:
    """Persist a result: one text table plus one CSV per series.

    Returns the written paths.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    table_path = out_dir / f"{result.experiment_id}.txt"
    table_path.write_text(result.format(include_series=False) + "\n")
    written.append(str(table_path))
    if result.series:
        csv_path = out_dir / f"{result.experiment_id}_series.csv"
        starts = sorted(
            {start for points in result.series.values() for start, _ in points}
        )
        labels = sorted(result.series)
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["window_start_s"] + labels)
            for start in starts:
                row = [f"{start:g}"]
                for label in labels:
                    values = dict(result.series[label])
                    row.append(values.get(start, ""))
                writer.writerow(row)
        written.append(str(csv_path))
    return written


def _run_one(name: str, args) -> None:
    runner = REGISTRY[name]
    if name == "overhead":
        result = runner()
    else:
        result = runner(duration_s=args.duration)
    print(result.format(include_series=args.series))
    if args.save:
        for path in save_result(result, args.save):
            print(f"wrote {path}")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(REGISTRY):
            print(name)
        return 0
    if args.experiment == "all":
        for name in sorted(REGISTRY):
            _run_one(name, args)
        return 0
    _run_one(args.experiment, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
