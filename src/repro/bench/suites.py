"""The benchmark registry: what ``repro bench`` measures.

Thirteen probes, ordered cheapest first:

* ``engine-churn`` — raw DES event loop: payload-carrying events that
  perpetually reschedule themselves through the heap.
* ``tuple-routing`` — the full tuple-batch path (routing, grouping,
  transfer model, stats) on a default-scheduled network-bound linear
  topology, where most traffic leaves the node.
* ``sched-rstorm`` / ``sched-default`` / ``sched-aniello`` — repeated
  scheduling rounds of the three compute micro-topologies on the Emulab
  testbed cluster.
* ``sched-scale`` — R-Storm scheduling rounds of five concurrent
  topologies on a 512-node, 8-rack synthetic cluster: the large-cluster
  scaling headline (ROADMAP's production-size target).
* ``chaos-replay`` — a fault-injected coordination-plane run (heartbeat
  detector, Nimbus rescheduling, busiest-node crash), replayed from the
  deterministic chaos scenario the ``chaos`` experiment uses.
* ``delivery-replay`` — the at-least-once delivery layer under a lossy
  inter-rack trunk: tuple-tree timeouts, spout replays with backoff,
  duplicate (ghost) deliveries, and the Nimbus quarantine bookkeeping,
  replayed from the extended chaos ``lossy-link`` scenario.
* ``fig9-e2e`` — the six fig9 work units end to end at ``--duration
  60``: schedule + simulate, the wall-clock the figure suite pays.
* ``traffic-overload`` — the open-loop traffic layer at 1.5x nominal
  capacity: Poisson arrival scheduling, per-arrival key assignment, and
  the end-to-end latency digest, on an R-Storm-packed mid-size linear
  topology deliberately driven past saturation.
* ``overload-protect`` — the flow-control layer's hot path: the hotspot
  fan-in topology at 1.5x nominal with bounded queues, credit
  backpressure and tail-drop shedding enabled, so per-delivery credit
  accounting, watermark checks and the shed ledger are all on the
  measured path under sustained stall/resume churn.
* ``elastic-adapt`` — the elastic control loop adapting to sustained
  1.5x overload: per-period queue sampling, M/M/k sizing, live
  scale-up rescales and hot-executor rebalances on an R-Storm-packed
  linear topology.
* ``tenant-admission`` — the multi-tenant admission plane at scale:
  dozens of queued topologies from four tenant classes on the 512-node
  cluster, weighted-DRF rounds with credit accrual and priority
  preemption feeding R-Storm placement.

Every probe's event count is a deterministic function of the constants
below; changing them invalidates the committed baselines (see
``docs/performance.md`` for the re-record procedure).
"""

from __future__ import annotations

import inspect
import random
from typing import Callable, Dict, List

from repro.bench.core import Benchmark
from repro.simulation.engine import Simulator

__all__ = ["REGISTRY"]

#: Total events the engine-churn probe pushes through the loop.
ENGINE_CHURN_EVENTS = 300_000
#: Concurrent self-rescheduling event streams (heap width).
ENGINE_CHURN_STREAMS = 512
ENGINE_CHURN_SEED = 0x5EED
#: Horizon handed to ``Simulator.run`` — far past the last churn event,
#: so the probe exercises the production drain path (the tight ``run``
#: loop that carries every simulation), not per-event ``step`` calls.
ENGINE_CHURN_HORIZON_S = 1e9

#: Simulated seconds of the network-bound routing run.
TUPLE_ROUTING_DURATION_S = 30.0

#: Scheduling rounds per scheduler benchmark, scaled per scheduler so
#: every probe's timed section lands in the same ~0.2-0.5 s band (the
#: round-robin default is ~30x faster per round than R-Storm).
SCHEDULER_ROUNDS = {"r-storm": 100, "default": 1000, "aniello": 800}

#: Simulated seconds of the chaos replay and fig9 end-to-end probes.
CHAOS_DURATION_S = 180.0
FIG9_DURATION_S = 60.0

#: Simulated seconds of the delivery-replay probe, and its replay budget.
#: The default scheduler is used on purpose: it splits the linear chain
#: across racks, so the lossy trunk actually carries tuple traffic and
#: the replay/dedup machinery does real work (R-Storm co-locates the
#: chain and would dodge the loss entirely).
DELIVERY_REPLAY_DURATION_S = 180.0
DELIVERY_REPLAY_MAX_RETRIES = 3

#: The open-loop traffic probe: a parallelism-8 compute linear chain
#: (32 tasks on the 12-node testbed) offered Poisson traffic at 1.5x
#: the closed-loop rate cap — deep enough past saturation to exercise
#: the backlog path, with keys flowing so the Zipf generator and the
#: fields-grouped first hop are on the measured path.
TRAFFIC_OVERLOAD_DURATION_S = 120.0
TRAFFIC_OVERLOAD_MULTIPLIER = 1.5
TRAFFIC_OVERLOAD_PARALLELISM = 8

#: The overload-protection probe: the ``protection`` experiment's 1.5x
#: backpressure+shed operating point — the hotspot fan-in topology with
#: bounded queues (32 batches), credit backpressure and tail-drop
#: shedding, sized so the narrow stage stalls and sheds continuously.
OVERLOAD_PROTECT_DURATION_S = 120.0
OVERLOAD_PROTECT_MULTIPLIER = 1.5

#: The elastic-adaptation probe: the sustained-overload scenario of the
#: ``elastic`` experiment — Poisson at 1.5x nominal on the parallelism-6
#: compute chain with the control loop enabled, so the measured path
#: includes control-period sampling, M/M/k sizing, scheduler-delta
#: scale-ups and live rescales.
ELASTIC_ADAPT_DURATION_S = 120.0
ELASTIC_ADAPT_MULTIPLIER = 1.5

#: The large-cluster scaling probe: 8 racks x 64 production-size nodes
#: (16 GB / 8 cores / 1 Gbps each) scheduling five concurrent
#: topologies with R-Storm for SCHED_SCALE_ROUNDS full rounds.
SCHED_SCALE_RACKS = 8
SCHED_SCALE_NODES_PER_RACK = 64
SCHED_SCALE_ROUNDS = 2

#: The multi-tenant admission probe: 60 parallelism-8 compute chains
#: (one full 800-cpu-point node each) queued by four tenant classes on
#: the 512-node cluster, with admission headroom capping usable slack
#: at 8% — so roughly a third of the queue must be deferred and the
#: credit/preemption machinery runs on every round.
TENANT_ADMISSION_TOPOLOGIES = 60
TENANT_ADMISSION_PARALLELISM = 8
TENANT_ADMISSION_ROUNDS = 6
TENANT_ADMISSION_HEADROOM = 0.08


def _engine_supports_args() -> bool:
    """True when ``Simulator.schedule_at`` forwards ``*args`` to the
    action (the optimised engine); the bench then schedules bare
    callables with payload args instead of allocating a closure per
    event — exactly the difference the optimisation makes in the
    runtime's transfer path."""
    parameters = inspect.signature(Simulator.schedule_at).parameters.values()
    return any(p.kind is inspect.Parameter.VAR_POSITIONAL for p in parameters)


#: Churn delay table size (power of two: index wrap is a mask, not ``%``).
_DELAY_MASK = 4095


class _ChurnStream:
    """One self-rescheduling stream of payload-carrying events.

    In args mode the reschedule passes the **prebound** ``self._fire``
    plus the payload as schedule args (the optimised engine's idiom: no
    per-event callable allocation at all).  In closure mode — the only
    idiom the pre-optimisation engine supports — every reschedule
    allocates a fresh lambda capturing the payload.
    """

    __slots__ = ("sim", "delays", "index", "remaining", "use_args", "_fire")

    def __init__(self, sim: Simulator, delays: List[float], start: int,
                 budget: int, use_args: bool):
        self.sim = sim
        self.delays = delays
        self.index = start
        self.remaining = budget
        self.use_args = use_args
        self._fire = self.fire

    def fire(self, payload: int) -> None:
        remaining = self.remaining
        if remaining <= 0:
            return
        self.remaining = remaining - 1
        i = self.index
        self.index = i + 1
        sim = self.sim
        delay = self.delays[i & _DELAY_MASK]
        if self.use_args:
            sim.schedule_at(sim.now + delay, self._fire, payload + 1)
        else:
            sim.schedule_at(
                sim.now + delay, lambda p=payload + 1: self.fire(p)
            )


def _prepare_engine_churn() -> Callable[[], int]:
    rng = random.Random(ENGINE_CHURN_SEED)
    delays = [rng.uniform(1e-4, 1e-2) for _ in range(_DELAY_MASK + 1)]
    sim = Simulator()
    use_args = _engine_supports_args()
    # Reschedule budget split evenly over the streams (the first
    # ``remainder`` streams take one extra), so the initial events plus
    # every reschedule total exactly ENGINE_CHURN_EVENTS.
    reschedules = ENGINE_CHURN_EVENTS - ENGINE_CHURN_STREAMS
    base, remainder = divmod(reschedules, ENGINE_CHURN_STREAMS)
    streams = [
        _ChurnStream(sim, delays, i * 7, base + (1 if i < remainder else 0),
                     use_args)
        for i in range(ENGINE_CHURN_STREAMS)
    ]
    start_delays = [rng.uniform(1e-4, 1e-2) for _ in range(len(streams))]

    def workload() -> int:
        for stream, delay in zip(streams, start_delays):
            if use_args:
                sim.schedule_at(delay, stream._fire, 0)
            else:
                sim.schedule_at(delay, lambda s=stream: s.fire(0))
        sim.run(ENGINE_CHURN_HORIZON_S)
        return sim.events_processed

    return workload


def _prepare_tuple_routing() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.scheduler.default import DefaultScheduler
    from repro.simulation.config import SimulationConfig
    from repro.simulation.runtime import SimulationRun
    from repro.workloads.micro import NETWORK_BOUND_UPLINK_MBPS, micro_topology

    topology = micro_topology("linear", "network")
    cluster = emulab_testbed()
    round_info = DefaultScheduler().run([topology], cluster)
    config = SimulationConfig(duration_s=TUPLE_ROUTING_DURATION_S, warmup_s=5.0)
    run = SimulationRun(
        cluster,
        [(topology, round_info.assignments[topology.topology_id])],
        config,
        interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS,
    )

    def workload() -> int:
        return run.run().events_processed

    return workload


def _prepare_scheduler(factory_name: str) -> Callable[[], Callable[[], int]]:
    def prepare() -> Callable[[], int]:
        from repro.cluster.builders import emulab_testbed
        from repro.scheduler.aniello import AnielloOfflineScheduler
        from repro.scheduler.default import DefaultScheduler
        from repro.scheduler.rstorm import RStormScheduler
        from repro.workloads.micro import micro_topology

        factories = {
            "r-storm": RStormScheduler,
            "default": DefaultScheduler,
            "aniello": AnielloOfflineScheduler,
        }
        scheduler = factories[factory_name]()
        rounds = SCHEDULER_ROUNDS[factory_name]
        cluster = emulab_testbed()
        topologies = [
            micro_topology(kind, "compute")
            for kind in ("linear", "diamond", "star")
        ]
        tasks_per_round = sum(len(t.tasks) for t in topologies)

        def workload() -> int:
            for _ in range(rounds):
                cluster.release_all()
                round_info = scheduler.run(topologies, cluster)
                for topology in topologies:
                    if not round_info.assignments[
                        topology.topology_id
                    ].is_complete(topology):  # pragma: no cover - sanity
                        raise AssertionError("incomplete schedule in bench")
            return rounds * tasks_per_round

        return workload

    return prepare


def _sched_scale_cluster():
    from repro.cluster.builders import uniform_cluster
    from repro.cluster.network import (
        DEFAULT_PROFILES,
        DistanceLevel,
        LinkProfile,
        NetworkTopography,
    )
    from repro.cluster.resources import ResourceVector

    profiles = dict(DEFAULT_PROFILES)
    profiles[DistanceLevel.INTER_RACK] = LinkProfile(
        distance=4.0, latency_ms=0.5, bandwidth_mbps=10_000.0
    )
    profiles[DistanceLevel.INTER_NODE] = LinkProfile(
        distance=1.0, latency_ms=0.1, bandwidth_mbps=1_000.0
    )
    return uniform_cluster(
        nodes_per_rack=SCHED_SCALE_NODES_PER_RACK,
        racks=SCHED_SCALE_RACKS,
        capacity=ResourceVector.of(
            memory_mb=16_384.0, cpu=800.0, bandwidth_mbps=1_000.0
        ),
        topography=NetworkTopography(profiles),
        name="sched-scale",
    )


def _sched_scale_topologies():
    from repro.workloads.micro import (
        diamond_topology,
        linear_topology,
        star_topology,
    )

    return [
        linear_topology("compute", parallelism=24, name="scale-linear-a"),
        diamond_topology(
            "compute", branches=3, parallelism=16, name="scale-diamond-a"
        ),
        star_topology("compute", arms=4, name="scale-star-a"),
        linear_topology("compute", parallelism=16, name="scale-linear-b"),
        diamond_topology(
            "compute", branches=2, parallelism=12, name="scale-diamond-b"
        ),
    ]


def _prepare_sched_scale() -> Callable[[], int]:
    from repro.scheduler.rstorm import RStormScheduler

    scheduler = RStormScheduler()
    cluster = _sched_scale_cluster()
    topologies = _sched_scale_topologies()
    tasks_per_round = sum(len(t.tasks) for t in topologies)

    def workload() -> int:
        for _ in range(SCHED_SCALE_ROUNDS):
            cluster.release_all()
            round_info = scheduler.run(topologies, cluster)
            for topology in topologies:
                if not round_info.assignments[
                    topology.topology_id
                ].is_complete(topology):  # pragma: no cover - sanity
                    raise AssertionError("incomplete schedule in bench")
        return SCHED_SCALE_ROUNDS * tasks_per_round

    return workload


def _prepare_chaos_replay() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.experiments.fault_recovery import single_crash
    from repro.experiments.parallel import ChaosUnit, spec
    from repro.scheduler.rstorm import RStormScheduler
    from repro.simulation.config import SimulationConfig
    from repro.workloads.micro import micro_topology

    unit = ChaosUnit(
        scheduler=spec(RStormScheduler),
        topologies=(spec(micro_topology, "linear", "compute"),),
        cluster=spec(emulab_testbed),
        config=SimulationConfig(duration_s=CHAOS_DURATION_S, warmup_s=15.0),
        faults=spec(single_crash),
        label="bench:chaos-replay",
    )

    def workload() -> int:
        return unit.execute().report.events_processed

    return workload


def _prepare_delivery_replay() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.experiments.fault_recovery import lossy_link
    from repro.experiments.parallel import ChaosUnit, spec
    from repro.scheduler.default import DefaultScheduler
    from repro.simulation.config import SimulationConfig
    from repro.workloads.micro import micro_topology

    unit = ChaosUnit(
        scheduler=spec(DefaultScheduler),
        topologies=(spec(micro_topology, "linear", "compute"),),
        cluster=spec(emulab_testbed),
        config=SimulationConfig(
            duration_s=DELIVERY_REPLAY_DURATION_S,
            warmup_s=15.0,
            at_least_once=True,
            max_retries=DELIVERY_REPLAY_MAX_RETRIES,
        ),
        faults=spec(lossy_link),
        quarantine=True,
        label="bench:delivery-replay",
    )

    def workload() -> int:
        return unit.execute().report.events_processed

    return workload


def _prepare_fig9_e2e() -> Callable[[], int]:
    from repro.experiments.fig9_compute_bound import compute_bound_units
    from repro.simulation.config import SimulationConfig

    config = SimulationConfig(duration_s=FIG9_DURATION_S, warmup_s=15.0)

    def workload() -> int:
        units = compute_bound_units(config)
        return sum(unit.execute().report.events_processed for unit in units)

    return workload


def _prepare_traffic_overload() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.experiments.overload import (
        BASE_RATE_TPS,
        keyed_linear_topology,
    )
    from repro.experiments.parallel import SimulationUnit, spec
    from repro.scheduler.rstorm import RStormScheduler
    from repro.simulation.config import SimulationConfig
    from repro.traffic.arrivals import PoissonArrivals
    from repro.traffic.keys import ZipfKeys

    unit = SimulationUnit(
        scheduler=spec(RStormScheduler),
        topologies=(
            spec(keyed_linear_topology, TRAFFIC_OVERLOAD_PARALLELISM),
        ),
        cluster=spec(emulab_testbed),
        config=SimulationConfig(
            duration_s=TRAFFIC_OVERLOAD_DURATION_S,
            warmup_s=15.0,
            arrival_process=PoissonArrivals(
                rate_tps=BASE_RATE_TPS * TRAFFIC_OVERLOAD_MULTIPLIER
            ),
            arrival_keys=ZipfKeys(num_keys=64, exponent=1.4),
        ),
        label="bench:traffic-overload",
    )

    def workload() -> int:
        return unit.execute().report.events_processed

    return workload


def _prepare_overload_protect() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.experiments.parallel import SimulationUnit, spec
    from repro.experiments.protection import (
        BASE_RATE_TPS,
        QUEUE_CAPACITY,
        TOPO_ID,
    )
    from repro.scheduler.rstorm import RStormScheduler
    from repro.simulation.config import SimulationConfig
    from repro.simulation.flowcontrol import FlowControlConfig
    from repro.traffic.arrivals import PoissonArrivals
    from repro.workloads.micro import hotspot_topology

    unit = SimulationUnit(
        scheduler=spec(RStormScheduler),
        topologies=(spec(hotspot_topology),),
        cluster=spec(emulab_testbed),
        config=SimulationConfig(
            duration_s=OVERLOAD_PROTECT_DURATION_S,
            warmup_s=15.0,
            arrival_process=PoissonArrivals(
                rate_tps=BASE_RATE_TPS * OVERLOAD_PROTECT_MULTIPLIER
            ),
            flow=FlowControlConfig(
                queue_capacity=QUEUE_CAPACITY, shedding="tail-drop"
            ),
        ),
        label="bench:overload-protect",
    )

    def workload() -> int:
        report = unit.execute().report
        if report.shed(TOPO_ID) <= 0:  # pragma: no cover - sanity
            raise AssertionError("overload-protect bench shed nothing")
        if report.spout_throttled_s(TOPO_ID) <= 0:  # pragma: no cover
            raise AssertionError("overload-protect bench never throttled")
        return report.events_processed

    return workload


def _prepare_elastic_adapt() -> Callable[[], int]:
    from repro.cluster.builders import emulab_testbed
    from repro.experiments.overload import BASE_RATE_TPS
    from repro.experiments.parallel import ElasticUnit, spec
    from repro.scheduler.rstorm import RStormScheduler
    from repro.simulation.config import SimulationConfig
    from repro.traffic.arrivals import PoissonArrivals
    from repro.workloads.micro import linear_topology

    unit = ElasticUnit(
        scheduler=spec(RStormScheduler),
        topologies=(spec(linear_topology, "compute"),),
        cluster=spec(emulab_testbed),
        config=SimulationConfig(
            duration_s=ELASTIC_ADAPT_DURATION_S,
            warmup_s=15.0,
            arrival_process=PoissonArrivals(
                rate_tps=BASE_RATE_TPS * ELASTIC_ADAPT_MULTIPLIER
            ),
        ),
        storm=(("nimbus.elastic.enabled", True),),
        label="bench:elastic-adapt",
    )

    def workload() -> int:
        outcome = unit.execute()
        if not outcome.decisions:  # pragma: no cover - sanity
            raise AssertionError("elastic bench committed no scale actions")
        return outcome.report.events_processed

    return workload


def _prepare_tenant_admission() -> Callable[[], int]:
    from repro.nimbus.config import StormConfig
    from repro.nimbus.nimbus import Nimbus
    from repro.nimbus.tenancy import TenancyController, Tenant
    from repro.scheduler.rstorm import RStormScheduler
    from repro.workloads.micro import linear_topology

    tenant_classes = (
        Tenant("gold", weight=3.0, priority=2),
        Tenant("silver", weight=2.0, priority=1),
        Tenant("bronze", weight=1.0, priority=0),
        Tenant("free", weight=0.5, priority=0),
    )
    per_tenant = TENANT_ADMISSION_TOPOLOGIES // len(tenant_classes)
    # bronze/free flood round 0, silver arrives round 1, gold round 2 —
    # into a full cluster, so priority preemption fires every round.
    arrival_round = {"bronze": 0, "free": 0, "silver": 1, "gold": 2}
    submissions = [
        (
            arrival_round[tenant.tenant_id],
            tenant.tenant_id,
            linear_topology(
                "compute",
                parallelism=TENANT_ADMISSION_PARALLELISM,
                name=f"{tenant.tenant_id}-{index}",
            ),
        )
        for tenant in tenant_classes
        for index in range(per_tenant)
    ]

    def workload() -> int:
        nimbus = Nimbus(
            _sched_scale_cluster(),
            scheduler=RStormScheduler(),
            config=StormConfig(
                {
                    "nimbus.tenancy.enabled": True,
                    "nimbus.tenancy.headroom": TENANT_ADMISSION_HEADROOM,
                }
            ),
        )
        controller = TenancyController(nimbus)
        for tenant in tenant_classes:
            controller.register_tenant(tenant)
        for round_index in range(TENANT_ADMISSION_ROUNDS):
            for due, tenant_id, topology in submissions:
                if due == round_index:
                    controller.submit(topology, tenant_id)
            nimbus.schedule_round(now=round_index * 10.0)
        placed_tasks = sum(
            len(assignment.tasks)
            for assignment in nimbus.assignments.values()
        )
        return len(controller.decisions) + placed_tasks

    return workload


REGISTRY: Dict[str, Benchmark] = {
    bench.name: bench
    for bench in (
        Benchmark(
            name="engine-churn",
            description=(
                f"raw DES loop: {ENGINE_CHURN_EVENTS:,} self-rescheduling "
                f"payload events over {ENGINE_CHURN_STREAMS} streams"
            ),
            prepare=_prepare_engine_churn,
            repeats=5,
        ),
        Benchmark(
            name="tuple-routing",
            description=(
                "full tuple-batch path: default-scheduled network-bound "
                f"linear topology, {TUPLE_ROUTING_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_tuple_routing,
            repeats=5,
        ),
        Benchmark(
            name="sched-rstorm",
            description=(
                f"{SCHEDULER_ROUNDS['r-storm']} R-Storm scheduling rounds "
                "of the three compute micro-topologies"
            ),
            prepare=_prepare_scheduler("r-storm"),
            repeats=5,
        ),
        Benchmark(
            name="sched-default",
            description=(
                f"{SCHEDULER_ROUNDS['default']} default-Storm (round-robin) "
                "scheduling rounds of the three compute micro-topologies"
            ),
            prepare=_prepare_scheduler("default"),
            repeats=5,
        ),
        Benchmark(
            name="sched-aniello",
            description=(
                f"{SCHEDULER_ROUNDS['aniello']} Aniello offline scheduling "
                "rounds of the three compute micro-topologies"
            ),
            prepare=_prepare_scheduler("aniello"),
            repeats=5,
        ),
        Benchmark(
            name="sched-scale",
            description=(
                f"{SCHED_SCALE_ROUNDS} R-Storm rounds of five concurrent "
                f"topologies on a {SCHED_SCALE_RACKS * SCHED_SCALE_NODES_PER_RACK}"
                f"-node, {SCHED_SCALE_RACKS}-rack cluster"
            ),
            prepare=_prepare_sched_scale,
            repeats=3,
        ),
        Benchmark(
            name="chaos-replay",
            description=(
                "fault-injected coordination plane: busiest-node crash on "
                f"R-Storm, {CHAOS_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_chaos_replay,
            repeats=3,
        ),
        Benchmark(
            name="delivery-replay",
            description=(
                "at-least-once delivery layer: lossy inter-rack trunk on "
                "the default scheduler, replay + dedup + quarantine, "
                f"{DELIVERY_REPLAY_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_delivery_replay,
            repeats=3,
        ),
        Benchmark(
            name="fig9-e2e",
            description=(
                "end-to-end fig9 work units (6 schedule+simulate runs, "
                f"{FIG9_DURATION_S:g} simulated s each)"
            ),
            prepare=_prepare_fig9_e2e,
            repeats=2,
        ),
        Benchmark(
            name="traffic-overload",
            description=(
                "open-loop traffic layer: Poisson arrivals at "
                f"{TRAFFIC_OVERLOAD_MULTIPLIER:g}x capacity with Zipf "
                "keys on an R-Storm-packed keyed linear topology, "
                f"{TRAFFIC_OVERLOAD_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_traffic_overload,
            repeats=3,
        ),
        Benchmark(
            name="overload-protect",
            description=(
                "flow-control hot path: hotspot fan-in at "
                f"{OVERLOAD_PROTECT_MULTIPLIER:g}x with bounded queues, "
                "credit backpressure and tail-drop shedding, "
                f"{OVERLOAD_PROTECT_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_overload_protect,
            repeats=3,
        ),
        Benchmark(
            name="elastic-adapt",
            description=(
                "elastic control loop adapting to sustained "
                f"{ELASTIC_ADAPT_MULTIPLIER:g}x overload: sampling, "
                "M/M/k sizing, live rescales and rebalances, "
                f"{ELASTIC_ADAPT_DURATION_S:g} simulated s"
            ),
            prepare=_prepare_elastic_adapt,
            repeats=3,
        ),
        Benchmark(
            name="tenant-admission",
            description=(
                f"{TENANT_ADMISSION_ROUNDS} weighted-DRF admission + "
                f"R-Storm placement rounds of "
                f"{TENANT_ADMISSION_TOPOLOGIES} queued topologies from "
                "four tenant classes on the 512-node cluster"
            ),
            prepare=_prepare_tenant_admission,
            repeats=3,
        ),
    )
}
