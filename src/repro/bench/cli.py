"""``repro bench`` — run the microbenchmarks, write/compare baselines.

Usage::

    python -m repro bench                     # run all, write JSON
    python -m repro bench engine-churn tuple-routing --repeats 3
    python -m repro bench --list
    python -m repro bench --check --baseline benchmarks/baseline \
        --tolerance 1.5                       # the CI perf gate

``--check`` compares every fresh result against the committed baseline:
event counts must match exactly (the benchmarks are deterministic);
median wall time may regress up to ``--tolerance`` x baseline.  Exit
status 1 on any failure, with one line per deviation.

Whenever a run includes scheduler probes (``sched-*`` or
``tenant-admission``), a compact
``BENCH_sched.json`` summary is also written at the repo root (override
with ``--summary``, disable with ``--summary ''``) so the scheduler perf
trajectory is tracked across PRs next to the per-probe result files.
An analogous ``BENCH_flow.json`` summary covers the overload-path
probes (``traffic-overload``, ``overload-protect``) — the open-loop
saturation path and the flow-control layer on top of it (override with
``--flow-summary``, disable with ``--flow-summary ''``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.bench.core import (
    BenchResult,
    compare_results,
    load_result,
    run_benchmark,
    write_result,
)
from repro.bench.suites import REGISTRY

__all__ = [
    "main",
    "build_parser",
    "write_sched_summary",
    "write_flow_summary",
]

DEFAULT_OUT_DIR = "benchmarks/results"
DEFAULT_BASELINE_DIR = "benchmarks/baseline"
DEFAULT_SCHED_SUMMARY = "BENCH_sched.json"
DEFAULT_FLOW_SUMMARY = "BENCH_flow.json"

#: Prefix that marks a benchmark as a scheduler probe for the summary.
SCHED_PREFIX = "sched-"
#: Probes without the prefix that still belong in the scheduler
#: summary (the admission plane feeds the schedulers directly).
SCHED_SUMMARY_EXTRAS = ("tenant-admission",)

#: Probes in the overload-path summary: the open-loop saturation path
#: and the flow-control (backpressure + shedding) layer on top of it.
FLOW_SUMMARY_PROBES = ("traffic-overload", "overload-protect")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rstorm bench",
        description="Seeded, deterministic microbenchmarks of the "
        "simulator, schedulers and experiment pipeline.",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="NAME",
        help="benchmark names to run (default: all; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="override every benchmark's repeat count",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=DEFAULT_OUT_DIR,
        help=f"directory for BENCH_<name>.json (default {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--baseline",
        metavar="DIR",
        default=DEFAULT_BASELINE_DIR,
        help="baseline directory for --check "
        f"(default {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh results against the baseline; exit 1 on "
        "regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        metavar="X",
        help="allowed median wall-time regression factor for --check "
        "(default 1.5)",
    )
    parser.add_argument(
        "--summary",
        metavar="PATH",
        default=DEFAULT_SCHED_SUMMARY,
        help="path of the scheduler-probe summary written when any "
        f"sched-* benchmark runs (default {DEFAULT_SCHED_SUMMARY}; "
        "pass '' to disable)",
    )
    parser.add_argument(
        "--flow-summary",
        metavar="PATH",
        default=DEFAULT_FLOW_SUMMARY,
        help="path of the overload-path summary written when any flow "
        f"probe runs (default {DEFAULT_FLOW_SUMMARY}; pass '' to "
        "disable)",
    )
    return parser


def _write_probe_summary(
    picked: List[BenchResult],
    baselines: Dict[str, Optional[BenchResult]],
    path: str,
) -> Optional[str]:
    """One entry per probe with the headline numbers plus the speedup
    against the loaded baseline (``null`` when no baseline exists), so a
    single root-level file records the perf trajectory across PRs."""
    if not picked or not path:
        return None
    probes = {}
    for result in picked:
        baseline = baselines.get(result.name)
        speedup = (
            round(baseline.median_s / result.median_s, 3)
            if baseline is not None and baseline.median_s > 0
            else None
        )
        probes[result.name] = {
            "median_s": round(result.median_s, 6),
            "p90_s": round(result.p90_s, 6),
            "events": result.events,
            "events_per_sec": round(result.events_per_sec, 1),
            "speedup_vs_baseline": speedup,
        }
    payload = {"schema": 1, "probes": probes}
    target = pathlib.Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(target)


def write_sched_summary(
    results: List[BenchResult],
    baselines: Dict[str, Optional[BenchResult]],
    path: str,
) -> Optional[str]:
    """Write the cross-PR scheduler summary if any ``sched-*`` probe ran."""
    sched = [
        r
        for r in results
        if r.name.startswith(SCHED_PREFIX) or r.name in SCHED_SUMMARY_EXTRAS
    ]
    return _write_probe_summary(sched, baselines, path)


def write_flow_summary(
    results: List[BenchResult],
    baselines: Dict[str, Optional[BenchResult]],
    path: str,
) -> Optional[str]:
    """Write the cross-PR overload-path summary if any flow probe ran."""
    flow = [r for r in results if r.name in FLOW_SUMMARY_PROBES]
    return _write_probe_summary(flow, baselines, path)


def _format_row(result: BenchResult, baseline: Optional[BenchResult]) -> str:
    row = (
        f"{result.name:<14} median={result.median_s:8.4f}s "
        f"p90={result.p90_s:8.4f}s events={result.events:>9,} "
        f"ev/s={result.events_per_sec:>12,.0f} rss={result.peak_rss_kb:,}KB"
    )
    if baseline is not None and baseline.median_s > 0:
        row += f"  ({baseline.median_s / result.median_s:.2f}x vs baseline)"
    return row


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, bench in REGISTRY.items():
            print(f"{name:<14} {bench.description}")
        return 0
    names = args.benchmarks or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    failures = []
    results: List[BenchResult] = []
    baselines: Dict[str, Optional[BenchResult]] = {}
    for name in names:
        result = run_benchmark(REGISTRY[name], repeats=args.repeats)
        baseline = load_result(args.baseline, name)
        results.append(result)
        baselines[name] = baseline
        print(_format_row(result, baseline))
        path = write_result(result, args.out)
        print(f"  wrote {path}")
        if args.check:
            if baseline is None:
                failures.append(
                    f"{name}: no baseline in {args.baseline} "
                    "(record one per docs/performance.md)"
                )
            else:
                failures.extend(
                    f"{f.benchmark}: {f.reason}"
                    for f in compare_results(result, baseline, args.tolerance)
                )
    summary_path = write_sched_summary(results, baselines, args.summary)
    if summary_path is not None:
        print(f"  wrote {summary_path} (scheduler summary)")
    flow_path = write_flow_summary(results, baselines, args.flow_summary)
    if flow_path is not None:
        print(f"  wrote {flow_path} (overload-path summary)")
    if args.check:
        if failures:
            print("\nperf gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nperf gate OK ({len(names)} benchmark(s) within tolerance)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
