"""Benchmark harness: timing, JSON persistence, baseline comparison.

A :class:`Benchmark` is a named recipe: ``prepare()`` builds the
workload outside the timed section and returns a zero-argument callable;
calling that workload performs the measured work and returns the number
of *events* it processed (DES events, task assignments — whatever unit
the benchmark's throughput is counted in).  The event count must be a
deterministic function of the benchmark definition: repeats are asserted
identical, and CI asserts them against the committed baseline exactly.

:func:`run_benchmark` times ``repeats`` fresh workloads with the garbage
collector disabled and reports median/p90 wall seconds, events/sec (at
the median) and the process peak RSS.  Results serialise to
``BENCH_<name>.json`` via :func:`write_result`.
"""

from __future__ import annotations

import gc
import json
import math
import pathlib
import platform
import resource
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError

__all__ = [
    "Benchmark",
    "BenchResult",
    "CheckFailure",
    "compare_results",
    "load_result",
    "result_filename",
    "run_benchmark",
    "write_result",
]

#: Schema version stamped into every BENCH_*.json.
SCHEMA = 1


@dataclass(frozen=True)
class Benchmark:
    """One registered microbenchmark.

    Attributes:
        name: Stable identifier (also the ``BENCH_<name>.json`` stem;
            dashes allowed, no spaces).
        description: One-line human summary printed by ``--list``.
        prepare: Builds the workload (untimed) and returns the timed
            callable, which returns its event count.
        repeats: Default repeat count; heavyweight end-to-end probes set
            this lower than the micro loops.
    """

    name: str
    description: str
    prepare: Callable[[], Callable[[], int]]
    repeats: int = 5


@dataclass
class BenchResult:
    """Measured outcome of one benchmark (or a loaded baseline)."""

    name: str
    repeats: int
    times_s: List[float]
    median_s: float
    p90_s: float
    events: int
    events_per_sec: float
    peak_rss_kb: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "repeats": self.repeats,
            "times_s": [round(t, 6) for t in self.times_s],
            "median_s": round(self.median_s, 6),
            "p90_s": round(self.p90_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=payload["name"],
            repeats=payload["repeats"],
            times_s=list(payload["times_s"]),
            median_s=payload["median_s"],
            p90_s=payload["p90_s"],
            events=payload["events"],
            events_per_sec=payload["events_per_sec"],
            peak_rss_kb=payload["peak_rss_kb"],
            meta=dict(payload.get("meta", {})),
        )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _p90(values: List[float]) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, math.ceil(0.9 * len(ordered)) - 1)
    return ordered[max(index, 0)]


def _peak_rss_kb() -> int:
    """Process high-water-mark RSS in KiB (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def run_benchmark(bench: Benchmark, repeats: Optional[int] = None) -> BenchResult:
    """Time ``repeats`` fresh workloads of ``bench``.

    Each repeat calls ``bench.prepare()`` outside the timed window, then
    times the returned workload with GC disabled.  Raises
    :class:`~repro.errors.ConfigError` if repeats disagree on the event
    count — a benchmark that does nondeterministic work cannot be gated.
    """
    count = bench.repeats if repeats is None else repeats
    if count < 1:
        raise ConfigError(f"repeats must be >= 1, got {count}")
    times: List[float] = []
    events: Optional[int] = None
    for _ in range(count):
        workload = bench.prepare()
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            seen = workload()
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        if events is None:
            events = int(seen)
        elif int(seen) != events:
            raise ConfigError(
                f"benchmark {bench.name!r} is nondeterministic: "
                f"{seen} events vs {events} on an earlier repeat"
            )
        times.append(elapsed)
    assert events is not None
    median = _median(times)
    return BenchResult(
        name=bench.name,
        repeats=count,
        times_s=times,
        median_s=median,
        p90_s=_p90(times),
        events=events,
        events_per_sec=events / median if median > 0 else float("inf"),
        peak_rss_kb=_peak_rss_kb(),
        meta={
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
    )


# -- persistence -------------------------------------------------------------


def result_filename(name: str) -> str:
    """``BENCH_<name>.json`` with dashes normalised to underscores."""
    return f"BENCH_{name.replace('-', '_')}.json"


def write_result(result: BenchResult, directory: str) -> str:
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / result_filename(result.name)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    return str(path)


def load_result(directory: str, name: str) -> Optional[BenchResult]:
    """Load ``BENCH_<name>.json`` from ``directory`` (None if absent)."""
    path = pathlib.Path(directory) / result_filename(name)
    if not path.is_file():
        return None
    return BenchResult.from_dict(json.loads(path.read_text()))


# -- baseline comparison -----------------------------------------------------


@dataclass(frozen=True)
class CheckFailure:
    """One way a fresh result deviated from its baseline."""

    benchmark: str
    reason: str


def compare_results(
    fresh: BenchResult, baseline: BenchResult, tolerance: float
) -> List[CheckFailure]:
    """Gate ``fresh`` against ``baseline``.

    Event counts must match *exactly* (they are deterministic); median
    wall time may regress up to ``tolerance`` x the baseline, absorbing
    shared-runner noise.  Being faster than baseline never fails.
    """
    if tolerance < 1.0:
        raise ConfigError(f"tolerance must be >= 1.0, got {tolerance}")
    failures: List[CheckFailure] = []
    if fresh.events != baseline.events:
        failures.append(
            CheckFailure(
                fresh.name,
                f"events diverged: {fresh.events} vs baseline "
                f"{baseline.events} (determinism regression)",
            )
        )
    if fresh.median_s > baseline.median_s * tolerance:
        failures.append(
            CheckFailure(
                fresh.name,
                f"median {fresh.median_s:.4f}s exceeds baseline "
                f"{baseline.median_s:.4f}s x {tolerance:g} tolerance "
                f"({fresh.median_s / baseline.median_s:.2f}x slower)",
            )
        )
    return failures
