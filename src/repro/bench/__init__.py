"""Microbenchmark subsystem: seeded, deterministic performance probes.

``repro bench`` measures the hot paths every experiment leans on — the
DES event loop, the tuple-batch routing path, the scheduler rounds and
the fault-injected coordination plane — plus an end-to-end figure-9
wall-clock probe.  Each benchmark emits a machine-readable
``BENCH_<name>.json`` (median/p90 wall seconds over N repeats,
events/sec, peak RSS) that CI compares against the committed baselines
in ``benchmarks/baseline/`` (see ``docs/performance.md``).

Two invariants make the numbers trustworthy:

* every benchmark is a deterministic function of its seed, so the
  *work* (``events``) is exactly reproducible — CI asserts the counts
  byte-for-byte while allowing generous wall-clock tolerance on shared
  runners;
* the timed section excludes setup (cluster/topology construction,
  scheduling where the benchmark targets the simulator) and runs with
  the garbage collector disabled, so repeats measure the hot path, not
  allocator noise.
"""

from repro.bench.core import (
    Benchmark,
    BenchResult,
    CheckFailure,
    compare_results,
    load_result,
    result_filename,
    run_benchmark,
    write_result,
)
from repro.bench.suites import REGISTRY

__all__ = [
    "Benchmark",
    "BenchResult",
    "CheckFailure",
    "REGISTRY",
    "compare_results",
    "load_result",
    "result_filename",
    "run_benchmark",
    "write_result",
]
