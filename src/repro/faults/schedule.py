"""Fault schedules: ordered, validated collections of fault events.

A :class:`FaultSchedule` is what the injector consumes: an immutable,
time-sorted tuple of :class:`~repro.faults.events.FaultEvent`.  Being a
frozen dataclass of frozen dataclasses, a schedule is picklable, hashable
and stable-tokenisable — it can sit inside an experiment work unit and
contribute to its content-addressed cache key
(:mod:`repro.experiments.cache`), which is what makes chaos runs
memoisable like every other experiment.

Schedules are either scripted explicitly::

    schedule = FaultSchedule.of(
        NodeCrash(at=40.0, node_id="node-0-3"),
        LinkDegradation(at=60.0, rack_a="rack-0", rack_b="rack-1",
                        factor=5.0, until=90.0),
    )

or sampled from a seeded :class:`~repro.faults.chaos.ChaosGenerator`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.faults.events import (
    EVENT_KINDS,
    FaultEvent,
    HeartbeatSilence,
    LinkDegradation,
    MessageLoss,
    NodeCrash,
    NodeSlowdown,
    RackPartition,
)

__all__ = ["FaultSchedule"]


def _sort_key(event: FaultEvent) -> Tuple:
    return (event.at, event.kind, repr(event))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"fault schedules hold FaultEvent instances, got "
                    f"{type(event).__name__}"
                )
        ordered = tuple(sorted(self.events, key=_sort_key))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultSchedule":
        return cls(tuple(events))

    # -- collection protocol ------------------------------------------------

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def merged_with(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    # -- validation ---------------------------------------------------------

    def validate(self, cluster: Cluster, horizon_s: float = float("inf")) -> None:
        """Check every event targets something that exists.

        Raises:
            ConfigError: unknown node/rack, or an event past ``horizon_s``
                (it would silently never fire).
        """
        rack_ids = {rack.rack_id for rack in cluster.racks}
        for event in self.events:
            if event.at > horizon_s:
                raise ConfigError(
                    f"{event.describe()} is scheduled after the run "
                    f"horizon ({horizon_s:g}s) and would never fire"
                )
            if isinstance(event, (NodeCrash, NodeSlowdown, HeartbeatSilence)):
                if not cluster.has_node(event.node_id):
                    raise ConfigError(
                        f"{event.describe()}: unknown node {event.node_id!r}"
                    )
            elif isinstance(event, RackPartition):
                if event.rack_id not in rack_ids:
                    raise ConfigError(
                        f"{event.describe()}: unknown rack {event.rack_id!r}"
                    )
            elif isinstance(event, (LinkDegradation, MessageLoss)):
                for rack_id in (event.rack_a, event.rack_b):
                    if rack_id not in rack_ids:
                        raise ConfigError(
                            f"{event.describe()}: unknown rack {rack_id!r}"
                        )

    # -- serialisation ------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain-data form, one dict per event (``kind`` + fields)."""
        out: List[Dict[str, Any]] = []
        for event in self.events:
            record: Dict[str, Any] = {"kind": event.kind}
            for f in fields(event):
                record[f.name] = getattr(event, f.name)
            out.append(record)
        return out

    @classmethod
    def from_dicts(cls, records: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        """Inverse of :meth:`to_dicts` — the scripting entry point for
        schedules loaded from JSON/YAML."""
        kinds = dict(EVENT_KINDS)
        events: List[FaultEvent] = []
        for record in records:
            data = dict(record)
            kind = data.pop("kind", None)
            event_cls = kinds.get(kind)
            if event_cls is None:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; pick from "
                    f"{sorted(kinds)}"
                )
            try:
                events.append(event_cls(**data))
            except TypeError as err:
                raise ConfigError(f"bad fields for {kind!r}: {err}") from None
        return cls(tuple(events))
