"""Deterministic, seeded fault injection for the simulator.

The chaos/recovery workload layer: typed fault events
(:mod:`~repro.faults.events`), time-ordered schedules
(:mod:`~repro.faults.schedule`), seeded random generation
(:mod:`~repro.faults.chaos`), DES wiring
(:mod:`~repro.faults.injector`) and recovery measurement
(:mod:`~repro.faults.monitor`).  See ``docs/faults.md``.
"""

from repro.faults.chaos import ChaosGenerator
from repro.faults.events import (
    EVENT_KINDS,
    FaultEvent,
    HeartbeatSilence,
    LinkDegradation,
    MessageLoss,
    NodeCrash,
    NodeSlowdown,
    RackPartition,
)
from repro.faults.injector import FaultInjector
from repro.faults.monitor import FaultRecovery, RecoveryMonitor, RecoveryReport
from repro.faults.schedule import FaultSchedule

__all__ = [
    "ChaosGenerator",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultRecovery",
    "FaultSchedule",
    "HeartbeatSilence",
    "LinkDegradation",
    "MessageLoss",
    "NodeCrash",
    "NodeSlowdown",
    "RackPartition",
    "RecoveryMonitor",
    "RecoveryReport",
]
