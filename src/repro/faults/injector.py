"""Deterministic fault injection into a running simulation.

:class:`FaultInjector` turns the pure data of a
:class:`~repro.faults.schedule.FaultSchedule` into scheduled DES
callbacks against one :class:`~repro.simulation.runtime.SimulationRun`:

* **Node crash** — the supervisor stops heartbeating (when a
  :class:`~repro.nimbus.failure_detector.HeartbeatFailureDetector` is
  wired in, detection takes a full heartbeat timeout, as on a real
  cluster) and the runtime kills the node's tasks.  An optional rejoin
  revives the machine, empty, later.
* **Node slow-down** — the runtime multiplies the node's service times.
* **Link degradation** — the transfer model scales the rack-pair uplink
  bandwidth down.
* **Rack partition** — every node in the rack crashes at once from the
  rest of the cluster's point of view (their cross-rack work is lost
  either way); healing rejoins them all.
* **Heartbeat silence** — gray failure: the machine keeps processing but
  the detector will wrongly expire it.  Requires a detector.
* **Message loss** — the rack-pair trunk drops (and optionally
  duplicates) batches with a seeded probability; healing restores
  exactly-once transport.

Injection is deterministic: all times are simulated time, no wall clock
or RNG is consulted, and the injector records everything it did in
:attr:`injected` (and as ``inject`` events in a
:class:`~repro.simulation.tracing.Tracer` when one is supplied).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.events import (
    FaultEvent,
    HeartbeatSilence,
    LinkDegradation,
    MessageLoss,
    NodeCrash,
    NodeSlowdown,
    RackPartition,
)
from repro.faults.schedule import FaultSchedule
from repro.nimbus.failure_detector import HeartbeatFailureDetector
from repro.simulation.tracing import Tracer

__all__ = ["FaultInjector"]


class FaultInjector:
    """Hooks a fault schedule into a simulation run.

    Args:
        schedule: The faults to inject.
        detector: Optional heartbeat failure detector.  With one, crashes
            and partitions are *silent* — Nimbus only learns of them after
            the heartbeat timeout.  Without one, the node object is failed
            directly and Nimbus notices on its next reconciliation.
        tracer: Optional tracer; every injection is recorded as an
            ``inject`` event (install it on the run separately to also
            capture the downstream crash/migrate causality).
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        detector: Optional[HeartbeatFailureDetector] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.schedule = schedule
        self.detector = detector
        self.tracer = tracer
        #: (simulated time, event) for every fault actually injected
        self.injected: List[Tuple[float, FaultEvent]] = []
        self._attached = False

    # -- wiring -------------------------------------------------------------

    def attach(self, run) -> None:
        """Register every event of the schedule with ``run``'s clock.

        Raises:
            ConfigError: if the schedule references unknown nodes/racks,
                needs a detector none was given for, or the injector is
                already attached.
        """
        if self._attached:
            raise ConfigError("fault injector is already attached")
        self._attached = True
        self.schedule.validate(run.cluster)
        for event in self.schedule:
            if isinstance(event, HeartbeatSilence) and self.detector is None:
                raise ConfigError(
                    f"{event.describe()} requires a heartbeat failure "
                    "detector (gray failures are detector-level faults)"
                )
            run.on_time(event.at, self._applier(run, event))

    def _applier(self, run, event: FaultEvent):
        def apply() -> None:
            self.injected.append((run.sim.now, event))
            if self.tracer is not None:
                self.tracer.record(run.sim.now, "inject", "", event.describe())
            self._apply(run, event)

        return apply

    # -- per-event effects --------------------------------------------------

    def _apply(self, run, event: FaultEvent) -> None:
        if isinstance(event, NodeCrash):
            self._crash_node(run, event.node_id)
            if event.rejoin_at is not None:
                run.on_time(
                    event.rejoin_at,
                    lambda: self._rejoin_node(run, event.node_id),
                )
        elif isinstance(event, NodeSlowdown):
            run.set_node_fault_factor(event.node_id, event.factor)
            if event.until is not None:
                run.on_time(
                    event.until,
                    lambda: run.set_node_fault_factor(event.node_id, 1.0),
                )
        elif isinstance(event, LinkDegradation):
            run.transfer.set_uplink_scale(
                event.rack_a, event.rack_b, 1.0 / event.factor
            )
            if event.until is not None:
                run.on_time(
                    event.until,
                    lambda: run.transfer.set_uplink_scale(
                        event.rack_a, event.rack_b, 1.0
                    ),
                )
        elif isinstance(event, RackPartition):
            node_ids = sorted(
                node.node_id for node in run.cluster.rack(event.rack_id)
            )
            for node_id in node_ids:
                self._crash_node(run, node_id)
            if event.heal_at is not None:

                def heal() -> None:
                    for node_id in node_ids:
                        self._rejoin_node(run, node_id)

                run.on_time(event.heal_at, heal)
        elif isinstance(event, HeartbeatSilence):
            self.detector.mute(event.node_id)
            if event.until is not None:
                run.on_time(
                    event.until,
                    lambda: self.detector.unmute(event.node_id, run.sim.now),
                )
        elif isinstance(event, MessageLoss):
            # Fates come from a per-event RNG seeded by the schedule, and
            # the DES consumes them in simulation-time order — identical
            # schedules give byte-identical loss patterns.
            run.transfer.set_link_loss(
                event.rack_a,
                event.rack_b,
                event.drop_probability,
                event.duplicate_probability,
                rng=random.Random(event.seed),
            )
            if event.until is not None:
                run.on_time(
                    event.until,
                    lambda: run.transfer.clear_link_loss(
                        event.rack_a, event.rack_b
                    ),
                )
        else:  # pragma: no cover - new event kinds must be handled here
            raise ConfigError(f"unhandled fault event {type(event).__name__}")

    def _crash_node(self, run, node_id: str) -> None:
        if self.detector is not None and node_id in self.detector.supervisors:
            self.detector.silence(node_id)
        run._fail_node(node_id)

    def _rejoin_node(self, run, node_id: str) -> None:
        if self.detector is not None and node_id in self.detector.supervisors:
            self.detector.revive(node_id, run.sim.now)
        run._recover_node(node_id)
