"""Recovery measurement on top of the event tracer.

:class:`RecoveryMonitor` owns (or adopts) a
:class:`~repro.simulation.tracing.Tracer`, wires itself into the failure
detector (``expire`` events) and Nimbus (``reschedule`` events), and
after the run distils the causal chain

    ``inject`` -> ``expire`` -> ``reschedule`` -> ``migrate``

into per-fault recovery metrics:

* **detection latency** — fault injection to heartbeat-session expiry,
* **reschedule latency** — injection to the first migration applied,
* **throughput dip** — the worst post-fault window relative to the
  pre-fault baseline,
* **time to steady state** — injection until windowed throughput is back
  above ``steady_fraction`` of baseline and stays there.

Everything in a :class:`RecoveryReport` derives from simulated time and
deterministic counters — no wall clock — so the same seed and fault
schedule produce a byte-identical :meth:`RecoveryReport.to_json` across
runs, which CI asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.simulation.report import SimulationReport
from repro.simulation.tracing import Tracer

__all__ = ["FaultRecovery", "RecoveryReport", "RecoveryMonitor"]


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def _int_field(detail: str, name: str) -> Optional[int]:
    """Parse an integer ``name=value`` field out of an event detail
    string; None when the field is absent or malformed."""
    marker = name + "="
    idx = detail.rfind(marker)
    if idx < 0:
        return None
    rest = detail[idx + len(marker):]
    end = rest.find(",")
    if end >= 0:
        rest = rest[:end]
    try:
        return int(rest)
    except ValueError:  # pragma: no cover - malformed detail
        return None


def _moved_of(detail: str) -> Optional[int]:
    """Parse the churn count out of a migrate/rescale event detail
    (``"..., moved=M"``); None for pre-churn traces."""
    return _int_field(detail, "moved")


def _reason_of(detail: str) -> str:
    """Attribution tag of a migrate event (``"..., reason=R, ..."``);
    traces recorded before churn attribution default to ``"fault"``."""
    marker = "reason="
    idx = detail.find(marker)
    if idx < 0:
        return "fault"
    rest = detail[idx + len(marker):]
    end = rest.find(",")
    return rest[:end] if end >= 0 else rest


def _rescale_churn(detail: str) -> int:
    """Total executor churn of one rescale event: tasks moved plus
    tasks added plus tasks removed."""
    return sum(
        _int_field(detail, name) or 0
        for name in ("moved", "added", "removed")
    )


@dataclass(frozen=True)
class FaultRecovery:
    """Recovery metrics for one injected fault."""

    fault: str
    fault_time_s: float
    detected_at_s: Optional[float]
    detection_latency_s: Optional[float]
    rescheduled_at_s: Optional[float]
    reschedule_latency_s: Optional[float]
    throughput_floor_ratio: Optional[float]
    steady_state_at_s: Optional[float]
    time_to_steady_state_s: Optional[float]
    #: reassignment churn: tasks that changed slot in the first
    #: migration after this fault (None when no migration happened)
    tasks_moved: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.fault,
            "fault_time_s": _round(self.fault_time_s),
            "detected_at_s": _round(self.detected_at_s),
            "detection_latency_s": _round(self.detection_latency_s),
            "rescheduled_at_s": _round(self.rescheduled_at_s),
            "reschedule_latency_s": _round(self.reschedule_latency_s),
            "throughput_floor_ratio": _round(self.throughput_floor_ratio),
            "steady_state_at_s": _round(self.steady_state_at_s),
            "time_to_steady_state_s": _round(self.time_to_steady_state_s),
            "tasks_moved": self.tasks_moved,
        }


@dataclass(frozen=True)
class RecoveryReport:
    """All recovery metrics for one topology in one chaos run."""

    topology_id: str
    baseline_tuples_per_window: float
    post_fault_tuples_per_window: float
    total_failed_tuples: int
    migrations: int
    faults: Tuple[FaultRecovery, ...]
    #: total reassignment churn: tasks moved across all migrations and
    #: rescales (fault-driven + elastic-driven)
    total_tasks_moved: int = 0
    #: churn from fault-recovery reschedules (Nimbus reacting to node
    #: failures/quarantine) — migrate events tagged ``reason=fault``
    fault_tasks_moved: int = 0
    #: churn from the elastic controller (scale + rebalance actions) —
    #: ``rescale`` events plus migrates tagged ``reason=elastic``
    elastic_tasks_moved: int = 0
    #: elastic scale actions (rescale events) observed for the topology
    rescales: int = 0
    # -- delivery semantics (zero unless the at-least-once layer and/or
    # -- message-loss faults were active in the run) ------------------------
    replayed_tuples: int = 0
    exhausted_tuples: int = 0
    lost_tuples: int = 0
    duplicated_tuples: int = 0
    #: last replay issued after the last fault, relative to that fault —
    #: how long the replay backlog took to drain (None without replays)
    time_to_drain_s: Optional[float] = None

    # -- aggregates ---------------------------------------------------------

    def _mean(self, values: List[Optional[float]]) -> Optional[float]:
        present = [v for v in values if v is not None]
        if not present:
            return None
        return sum(present) / len(present)

    @property
    def mean_detection_latency_s(self) -> Optional[float]:
        return self._mean([f.detection_latency_s for f in self.faults])

    @property
    def mean_reschedule_latency_s(self) -> Optional[float]:
        return self._mean([f.reschedule_latency_s for f in self.faults])

    @property
    def mean_time_to_steady_state_s(self) -> Optional[float]:
        return self._mean([f.time_to_steady_state_s for f in self.faults])

    @property
    def worst_throughput_floor_ratio(self) -> Optional[float]:
        floors = [
            f.throughput_floor_ratio
            for f in self.faults
            if f.throughput_floor_ratio is not None
        ]
        return min(floors) if floors else None

    # -- serialisation ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "topology_id": self.topology_id,
            "baseline_tuples_per_window": _round(
                self.baseline_tuples_per_window
            ),
            "post_fault_tuples_per_window": _round(
                self.post_fault_tuples_per_window
            ),
            "total_failed_tuples": self.total_failed_tuples,
            "migrations": self.migrations,
            "total_tasks_moved": self.total_tasks_moved,
            "fault_tasks_moved": self.fault_tasks_moved,
            "elastic_tasks_moved": self.elastic_tasks_moved,
            "rescales": self.rescales,
            "replayed_tuples": self.replayed_tuples,
            "exhausted_tuples": self.exhausted_tuples,
            "lost_tuples": self.lost_tuples,
            "duplicated_tuples": self.duplicated_tuples,
            "time_to_drain_s": _round(self.time_to_drain_s),
            "mean_detection_latency_s": _round(self.mean_detection_latency_s),
            "mean_reschedule_latency_s": _round(self.mean_reschedule_latency_s),
            "mean_time_to_steady_state_s": _round(
                self.mean_time_to_steady_state_s
            ),
            "worst_throughput_floor_ratio": _round(
                self.worst_throughput_floor_ratio
            ),
            "faults": [f.as_dict() for f in self.faults],
        }

    def to_json(self) -> str:
        """Canonical JSON — the byte-identical determinism artefact."""
        import json

        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


class RecoveryMonitor:
    """Observes a chaos run and computes :class:`RecoveryReport`s.

    Args:
        tracer: Tracer to record through (a fresh one by default).
        steady_fraction: Fraction of the pre-fault baseline throughput a
            window must reach — and hold — to count as recovered.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        steady_fraction: float = 0.9,
    ):
        if not 0.0 < steady_fraction <= 1.0:
            raise ValueError("steady_fraction must be in (0, 1]")
        self.tracer = tracer or Tracer()
        self.steady_fraction = steady_fraction

    # -- wiring -------------------------------------------------------------

    def attach(self, run, detector=None, nimbus=None) -> None:
        """Install the tracer on ``run`` and hook the coordination plane.

        Call before ``run.run()``; the detector/nimbus hooks record
        ``expire`` and ``reschedule`` events into the causal trace.
        """
        if not self.tracer.installed:
            self.tracer.install(run)
        tracer = self.tracer
        if detector is not None:
            detector.on_expire = lambda time, node_id: tracer.record(
                time, "expire", "", node_id
            )
        if nimbus is not None:

            def on_reschedule(time: float, changed: List[str]) -> None:
                for topo_id in changed:
                    tracer.record(time, "reschedule", topo_id, "new assignment")

            nimbus.on_reschedule = on_reschedule

    # -- analysis -----------------------------------------------------------

    def report(
        self, topology_id: str, sim_report: SimulationReport
    ) -> RecoveryReport:
        """Distil the trace + metrics into one topology's recovery report."""
        window_s = sim_report.config.window_s
        warmup_s = sim_report.config.warmup_s
        duration_s = sim_report.duration_s
        series = sim_report.throughput_series(topology_id)
        full_windows = [
            (start, value)
            for start, value in series
            if start + window_s <= duration_s + 1e-9
        ]

        injects = self.tracer.query(kind="inject")
        expires = self.tracer.query(kind="expire")
        all_migrates = self.tracer.query(kind="migrate", topology=topology_id)
        rescale_events = self.tracer.query(
            kind="rescale", topology=topology_id
        )
        # Churn attribution: fault-recovery reschedules vs elastic
        # controller actions.  Per-fault metrics below only look at the
        # fault-driven migrations, so a concurrently-running elastic
        # loop cannot masquerade as recovery.
        migrates = [
            m for m in all_migrates if _reason_of(m.detail) != "elastic"
        ]
        elastic_migrates = [
            m for m in all_migrates if _reason_of(m.detail) == "elastic"
        ]

        first_fault = injects[0].time if injects else None
        baseline_values = [
            value
            for start, value in full_windows
            if start >= warmup_s
            and (first_fault is None or start + window_s <= first_fault)
        ]
        baseline = (
            sum(baseline_values) / len(baseline_values)
            if baseline_values
            else 0.0
        )
        threshold = self.steady_fraction * baseline

        faults: List[FaultRecovery] = []
        for inject in injects:
            detected_at = next(
                (e.time for e in expires if e.time >= inject.time), None
            )
            first_migrate = next(
                (m for m in migrates if m.time >= inject.time), None
            )
            rescheduled_at = (
                first_migrate.time if first_migrate is not None else None
            )
            tasks_moved = (
                _moved_of(first_migrate.detail)
                if first_migrate is not None
                else None
            )
            post = [
                (start, value)
                for start, value in full_windows
                if start >= inject.time
            ]
            floor_ratio: Optional[float] = None
            steady_at: Optional[float] = None
            if baseline > 0 and post:
                floor_ratio = min(value for _, value in post) / baseline
                for i, (start, value) in enumerate(post):
                    if value >= threshold and all(
                        later >= threshold for _, later in post[i:]
                    ):
                        steady_at = start
                        break
            faults.append(
                FaultRecovery(
                    fault=inject.detail,
                    fault_time_s=inject.time,
                    detected_at_s=detected_at,
                    detection_latency_s=(
                        detected_at - inject.time
                        if detected_at is not None
                        else None
                    ),
                    rescheduled_at_s=rescheduled_at,
                    reschedule_latency_s=(
                        rescheduled_at - inject.time
                        if rescheduled_at is not None
                        else None
                    ),
                    throughput_floor_ratio=floor_ratio,
                    steady_state_at_s=steady_at,
                    time_to_steady_state_s=(
                        max(0.0, steady_at - inject.time)
                        if steady_at is not None
                        else None
                    ),
                    tasks_moved=tasks_moved,
                )
            )

        last_fault = injects[-1].time if injects else None
        post_values = [
            value
            for start, value in full_windows
            if start >= (last_fault if last_fault is not None else warmup_s)
        ]
        post_fault = sum(post_values) / len(post_values) if post_values else 0.0

        # Delivery-semantics metrics: how much replay traffic the faults
        # caused and how long the backlog took to drain.  All stay at
        # their zero defaults on runs without the at-least-once layer or
        # message-loss faults.
        replays = self.tracer.query(kind="replay", topology=topology_id)
        time_to_drain: Optional[float] = None
        if replays and last_fault is not None:
            post_fault_replays = [
                r.time for r in replays if r.time >= last_fault
            ]
            if post_fault_replays:
                time_to_drain = post_fault_replays[-1] - last_fault

        fault_moved = sum(
            moved
            for m in migrates
            if (moved := _moved_of(m.detail)) is not None
        )
        elastic_moved = sum(
            moved
            for m in elastic_migrates
            if (moved := _moved_of(m.detail)) is not None
        ) + sum(_rescale_churn(r.detail) for r in rescale_events)

        return RecoveryReport(
            topology_id=topology_id,
            baseline_tuples_per_window=baseline,
            post_fault_tuples_per_window=post_fault,
            total_failed_tuples=sim_report.failed(topology_id),
            migrations=len(migrates),
            faults=tuple(faults),
            total_tasks_moved=fault_moved + elastic_moved,
            fault_tasks_moved=fault_moved,
            elastic_tasks_moved=elastic_moved,
            rescales=len(rescale_events),
            replayed_tuples=sim_report.replayed(topology_id),
            exhausted_tuples=sim_report.exhausted(topology_id),
            lost_tuples=sim_report.lost(topology_id),
            duplicated_tuples=sim_report.duplicated(topology_id),
            time_to_drain_s=time_to_drain,
        )
