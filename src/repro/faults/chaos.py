"""Seeded random fault-schedule generation.

:class:`ChaosGenerator` samples a :class:`~repro.faults.schedule.FaultSchedule`
from its own private ``random.Random(seed)`` — never the global RNG — so
the same seed against the same cluster always yields the same schedule,
across processes and interpreter versions.  That determinism is what lets
chaos runs flow through the content-addressed experiment cache and what
the byte-identical-report CI check pins down.

The generator is deliberately conservative by default: it never kills
more than ``max_dead_fraction`` of the cluster at once, so generated
scenarios are survivable and property tests exercise *recovery*, not just
collapse.  Crank the knobs for harsher campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.faults.events import (
    FaultEvent,
    HeartbeatSilence,
    LinkDegradation,
    NodeCrash,
    NodeSlowdown,
)
from repro.faults.schedule import FaultSchedule

__all__ = ["ChaosGenerator"]


@dataclass(frozen=True)
class ChaosGenerator:
    """Samples seeded fault schedules for a cluster.

    Attributes:
        seed: RNG seed; same seed + same cluster => same schedule.
        num_crashes: Node crashes to inject (capped so that no more than
            ``max_dead_fraction`` of the cluster is ever dead at once).
        num_slowdowns: CPU-degradation faults to inject.
        num_link_faults: Inter-rack link degradations to inject (skipped
            on single-rack clusters).
        num_silences: Gray heartbeat-silence faults to inject.
        start_s / end_s: Injection window; faults land uniformly inside
            it, healing times may extend past ``end_s``.
        rejoin_probability: Chance a crashed node rejoins later.
        rejoin_delay_s: (min, max) delay between crash and rejoin.
        slowdown_factor: (min, max) service-time multiplier.
        slowdown_duration_s: (min, max) slowdown length.
        link_factor: (min, max) bandwidth-division factor.
        link_duration_s: (min, max) degradation length.
        silence_duration_s: (min, max) heartbeat-silence length.
        max_dead_fraction: Hard cap on simultaneously-crashed nodes.
    """

    seed: int = 0
    num_crashes: int = 1
    num_slowdowns: int = 0
    num_link_faults: int = 0
    num_silences: int = 0
    start_s: float = 20.0
    end_s: float = 90.0
    rejoin_probability: float = 0.5
    rejoin_delay_s: Tuple[float, float] = (15.0, 45.0)
    slowdown_factor: Tuple[float, float] = (1.5, 4.0)
    slowdown_duration_s: Tuple[float, float] = (10.0, 30.0)
    link_factor: Tuple[float, float] = (2.0, 8.0)
    link_duration_s: Tuple[float, float] = (10.0, 30.0)
    silence_duration_s: Tuple[float, float] = (15.0, 40.0)
    max_dead_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigError("end_s must exceed start_s")
        if not 0.0 <= self.rejoin_probability <= 1.0:
            raise ConfigError("rejoin_probability must be in [0, 1]")
        if not 0.0 < self.max_dead_fraction <= 1.0:
            raise ConfigError("max_dead_fraction must be in (0, 1]")
        for name in (
            "num_crashes", "num_slowdowns", "num_link_faults", "num_silences"
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    # -- sampling helpers ---------------------------------------------------

    def _time(self, rng: random.Random) -> float:
        return round(rng.uniform(self.start_s, self.end_s), 3)

    @staticmethod
    def _span(rng: random.Random, bounds: Tuple[float, float]) -> float:
        lo, hi = bounds
        return round(rng.uniform(lo, hi), 3)

    # -- generation ---------------------------------------------------------

    def generate(self, cluster: Cluster) -> FaultSchedule:
        """Sample a schedule valid for ``cluster``."""
        rng = random.Random(self.seed)
        node_ids = sorted(node.node_id for node in cluster.nodes)
        rack_ids = sorted(rack.rack_id for rack in cluster.racks)
        if not node_ids:
            raise ConfigError("cannot generate chaos for an empty cluster")
        events: List[FaultEvent] = []

        crash_budget = max(
            0,
            min(
                self.num_crashes,
                int(len(node_ids) * self.max_dead_fraction),
            ),
        )
        victims = rng.sample(node_ids, min(crash_budget, len(node_ids)))
        for node_id in victims:
            at = self._time(rng)
            rejoin_at: Optional[float] = None
            if rng.random() < self.rejoin_probability:
                rejoin_at = round(at + self._span(rng, self.rejoin_delay_s), 3)
            events.append(NodeCrash(at=at, node_id=node_id, rejoin_at=rejoin_at))

        for _ in range(self.num_slowdowns):
            node_id = rng.choice(node_ids)
            at = self._time(rng)
            events.append(
                NodeSlowdown(
                    at=at,
                    node_id=node_id,
                    factor=self._span(rng, self.slowdown_factor),
                    until=round(at + self._span(rng, self.slowdown_duration_s), 3),
                )
            )

        if len(rack_ids) >= 2:
            for _ in range(self.num_link_faults):
                rack_a, rack_b = rng.sample(rack_ids, 2)
                at = self._time(rng)
                events.append(
                    LinkDegradation(
                        at=at,
                        rack_a=min(rack_a, rack_b),
                        rack_b=max(rack_a, rack_b),
                        factor=self._span(rng, self.link_factor),
                        until=round(at + self._span(rng, self.link_duration_s), 3),
                    )
                )

        #: gray failures avoid already-crashed nodes so the two fault
        #: classes stay distinguishable in the trace
        quiet_pool = [n for n in node_ids if n not in set(victims)] or node_ids
        for _ in range(self.num_silences):
            node_id = rng.choice(quiet_pool)
            at = self._time(rng)
            events.append(
                HeartbeatSilence(
                    at=at,
                    node_id=node_id,
                    until=round(at + self._span(rng, self.silence_duration_s), 3),
                )
            )

        schedule = FaultSchedule(tuple(events))
        schedule.validate(cluster)
        return schedule
