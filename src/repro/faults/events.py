"""Typed fault events.

Each event is an immutable, picklable description of one thing going
wrong (and optionally healing) at an absolute simulated time.  Events are
pure data: all behaviour — what a crash *does* to the cluster, the DES
and the failure detector — lives in
:class:`~repro.faults.injector.FaultInjector`, so schedules can be
scripted, generated, serialised and cache-keyed without touching any live
object.

The fault model covers the perturbation classes the online-scheduling
literature evaluates under (Aniello et al., Fu et al., see PAPERS.md):

* :class:`NodeCrash` — the machine dies (optionally rejoining later),
* :class:`NodeSlowdown` — CPU capacity degradation (thermal throttling,
  noisy neighbour), service times multiplied for a while,
* :class:`LinkDegradation` — the inter-rack trunk loses bandwidth,
* :class:`RackPartition` — a whole rack becomes unreachable (optionally
  healing later),
* :class:`HeartbeatSilence` — a gray failure: the machine keeps working
  but its heartbeats stop, so the detector wrongly declares it dead,
* :class:`MessageLoss` — the inter-rack trunk becomes lossy: batches
  crossing it are dropped (and optionally duplicated) with a seeded
  probability, exercising the at-least-once replay layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Type

from repro.errors import ConfigError

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "NodeSlowdown",
    "LinkDegradation",
    "RackPartition",
    "HeartbeatSilence",
    "MessageLoss",
    "EVENT_KINDS",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault at absolute simulated time ``at``."""

    at: float

    #: stable identifier used for serialisation and tracing
    kind = "fault"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.at}")

    def _check_until(self, until: Optional[float], name: str = "until") -> None:
        if until is not None and until <= self.at:
            raise ConfigError(
                f"{type(self).__name__}.{name} ({until}) must be after "
                f"the injection time ({self.at})"
            )

    def describe(self) -> str:
        """Human-readable one-liner used in traces and reports."""
        return f"{self.kind} at {self.at:g}s"


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """The machine dies at ``at``; if ``rejoin_at`` is set it comes back
    (empty — its workers lost their state) at that time."""

    node_id: str = ""
    rejoin_at: Optional[float] = None

    kind = "node_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigError("NodeCrash needs a node_id")
        self._check_until(self.rejoin_at, "rejoin_at")

    def describe(self) -> str:
        suffix = (
            f", rejoins at {self.rejoin_at:g}s" if self.rejoin_at is not None else ""
        )
        return f"{self.kind} {self.node_id}{suffix}"


@dataclass(frozen=True)
class NodeSlowdown(FaultEvent):
    """The node's effective CPU speed drops: service times are multiplied
    by ``factor`` from ``at`` until ``until`` (or the end of the run)."""

    node_id: str = ""
    factor: float = 2.0
    until: Optional[float] = None

    kind = "node_slowdown"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigError("NodeSlowdown needs a node_id")
        if self.factor <= 1.0:
            raise ConfigError(
                f"slowdown factor must exceed 1, got {self.factor}"
            )
        self._check_until(self.until)

    def describe(self) -> str:
        span = f" until {self.until:g}s" if self.until is not None else ""
        return f"{self.kind} {self.node_id} x{self.factor:g}{span}"


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """The trunk between two racks loses capacity: effective uplink
    bandwidth is divided by ``factor`` from ``at`` until ``until``."""

    rack_a: str = ""
    rack_b: str = ""
    factor: float = 4.0
    until: Optional[float] = None

    kind = "link_degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.rack_a or not self.rack_b:
            raise ConfigError("LinkDegradation needs two rack ids")
        if self.rack_a == self.rack_b:
            raise ConfigError("LinkDegradation racks must differ")
        if self.factor <= 1.0:
            raise ConfigError(
                f"degradation factor must exceed 1, got {self.factor}"
            )
        self._check_until(self.until)

    def describe(self) -> str:
        span = f" until {self.until:g}s" if self.until is not None else ""
        return f"{self.kind} {self.rack_a}<->{self.rack_b} /{self.factor:g}{span}"


@dataclass(frozen=True)
class RackPartition(FaultEvent):
    """Every node in ``rack_id`` becomes unreachable at ``at``; the
    partition heals (nodes rejoin, empty) at ``heal_at`` if set."""

    rack_id: str = ""
    heal_at: Optional[float] = None

    kind = "rack_partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.rack_id:
            raise ConfigError("RackPartition needs a rack_id")
        self._check_until(self.heal_at, "heal_at")

    def describe(self) -> str:
        suffix = (
            f", heals at {self.heal_at:g}s" if self.heal_at is not None else ""
        )
        return f"{self.kind} {self.rack_id}{suffix}"


@dataclass(frozen=True)
class HeartbeatSilence(FaultEvent):
    """The machine keeps processing but stops heartbeating (partitioned
    from ZooKeeper).  The detector will wrongly declare it dead after the
    timeout; heartbeats resume at ``until`` if set."""

    node_id: str = ""
    until: Optional[float] = None

    kind = "heartbeat_silence"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_id:
            raise ConfigError("HeartbeatSilence needs a node_id")
        self._check_until(self.until)

    def describe(self) -> str:
        span = f" until {self.until:g}s" if self.until is not None else ""
        return f"{self.kind} {self.node_id}{span}"


@dataclass(frozen=True)
class MessageLoss(FaultEvent):
    """The trunk between two racks becomes lossy at ``at``: each batch
    crossing it is independently dropped with ``drop_probability``, or —
    if it survives — duplicated with ``duplicate_probability``.  Fates
    are drawn from ``random.Random(seed)`` in simulation-time order, so
    a fixed seed is deterministic.  The link heals at ``until`` if set.

    Bandwidth is still spent on lost batches (the bits left the NIC);
    only the delivery vanishes, so the affected tuple trees time out —
    the failure mode the at-least-once replay layer recovers from.
    """

    rack_a: str = ""
    rack_b: str = ""
    drop_probability: float = 0.05
    duplicate_probability: float = 0.0
    until: Optional[float] = None
    seed: int = 0

    kind = "message_loss"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.rack_a or not self.rack_b:
            raise ConfigError("MessageLoss needs two rack ids")
        if self.rack_a == self.rack_b:
            raise ConfigError("MessageLoss racks must differ")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigError(
                "MessageLoss drop_probability must be in [0, 1), got "
                f"{self.drop_probability}"
            )
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ConfigError(
                "MessageLoss duplicate_probability must be in [0, 1), got "
                f"{self.duplicate_probability}"
            )
        if self.drop_probability == 0.0 and self.duplicate_probability == 0.0:
            raise ConfigError(
                "MessageLoss needs a non-zero drop or duplicate probability"
            )
        self._check_until(self.until)

    def describe(self) -> str:
        span = f" until {self.until:g}s" if self.until is not None else ""
        dup = (
            f" dup={self.duplicate_probability:g}"
            if self.duplicate_probability
            else ""
        )
        return (
            f"{self.kind} {self.rack_a}<->{self.rack_b} "
            f"drop={self.drop_probability:g}{dup}{span}"
        )


#: kind string -> event class, for (de)serialising schedules.
EVENT_KINDS: Tuple[Tuple[str, Type[FaultEvent]], ...] = tuple(
    (cls.kind, cls)
    for cls in (
        NodeCrash,
        NodeSlowdown,
        LinkDegradation,
        RackPartition,
        HeartbeatSilence,
        MessageLoss,
    )
)
