"""Multi-tenant admission control for Nimbus.

Tenants own topologies, declare SLOs (p99 latency target, minimum
effective throughput) and carry a fairness weight plus a preemption
priority.  The :class:`TenancyController` front-ends topology
submission: instead of calling :meth:`Nimbus.submit_topology` directly,
callers submit through the controller, which queues the topology per
tenant.  Each Nimbus scheduling round then runs one weighted-DRF
admission step (:func:`repro.scheduler.admission.plan_admission`)
*before* the per-topology schedulers see the cluster — the schedulers
themselves stay unchanged and byte-identical; admission only decides
*which* topologies they are asked to place.

Preemption reuses the quarantine-style partial-reassignment path: a
victim is removed through :meth:`Nimbus.kill_topology` (which releases
its reservations), and because surviving assignments are passed to the
scheduler as ``existing``, only the delta is re-placed — nothing else
moves.

The whole layer is opt-in via ``nimbus.tenancy.enabled`` (default
false).  Disabled, :meth:`submit` is a strict pass-through to
``Nimbus.submit_topology`` and :meth:`admission_round` is never invoked
by the scheduling round, so the default path stays byte-identical
(asserted by the differential tests and the CI non-perturbation grep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.nimbus.config import StormConfig
from repro.scheduler.admission import (
    AdmissionDecision,
    AdmissionPlan,
    AdmissionRequest,
    TenantSpec,
    jain_index,
    plan_admission,
)
from repro.topology.topology import Topology

__all__ = ["SLO", "Tenant", "TenancyController", "AdmissionRoundRecord"]


@dataclass(frozen=True)
class SLO:
    """A tenant's service-level objective.

    ``p99_ms`` bounds end-to-end (arrival -> full ack) p99 latency;
    ``min_ratio`` is the minimum achieved/offered throughput fraction
    (effective throughput).  ``None`` leaves that clause unconstrained —
    the batch-tier default.
    """

    p99_ms: Optional[float] = None
    min_ratio: Optional[float] = None

    def attained(
        self, p99_ms: Optional[float], achieved_ratio: Optional[float]
    ) -> bool:
        """Whether measured latency/throughput meet both clauses.

        A constrained clause with no measurement (``None``) counts as a
        miss — an SLO cannot be attained by not reporting.
        """
        if self.p99_ms is not None:
            if p99_ms is None or p99_ms > self.p99_ms:
                return False
        if self.min_ratio is not None:
            if achieved_ratio is None or achieved_ratio < self.min_ratio:
                return False
        return True


@dataclass(frozen=True)
class Tenant:
    """A tenant: identity, fairness weight, preemption priority, SLO."""

    tenant_id: str
    weight: float = 1.0
    priority: int = 0
    slo: SLO = field(default_factory=SLO)

    def spec(self) -> TenantSpec:
        return TenantSpec(
            tenant_id=self.tenant_id,
            weight=self.weight,
            priority=self.priority,
        )


@dataclass(frozen=True)
class AdmissionRoundRecord:
    """One admission round's summary, for fairness reporting."""

    now: float
    #: weighted dominant share per tenant after the round
    shares: Dict[str, float]
    #: Jain fairness index over those shares
    jain: float
    admitted: Tuple[str, ...]
    deferred: Tuple[str, ...]
    evicted: Tuple[str, ...]


class TenancyController:
    """Per-cluster tenant registry + admission loop.

    Binds itself to ``nimbus.tenancy``;
    :meth:`Nimbus.schedule_round` calls :meth:`admission_round` once per
    round — only when ``nimbus.tenancy.enabled`` is set.
    """

    def __init__(self, nimbus, config: Optional[StormConfig] = None):
        self.nimbus = nimbus
        self.config = config or nimbus.config
        self.tenants: Dict[str, Tenant] = {}
        #: tenant id -> FIFO of pending (not yet admitted) topologies
        self._pending: Dict[str, List[Topology]] = {}
        #: topology id -> owning tenant id (pending, running or evicted)
        self._owner: Dict[str, str] = {}
        #: outstanding credit balance per tenant
        self.credits: Dict[str, float] = {}
        #: every admit/defer/evict verdict, in decision order
        self.decisions: List[AdmissionDecision] = []
        #: per-round fairness records (rounds with pending work only)
        self.round_records: List[AdmissionRoundRecord] = []
        #: topologies evicted by priority preemption (churn counter)
        self.preemptions = 0
        #: tasks those evictions displaced
        self.preempted_tasks = 0
        nimbus.tenancy = self

    # -- registry -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.config.tenancy_enabled

    def register_tenant(self, tenant: Tenant) -> None:
        if tenant.tenant_id in self.tenants:
            raise SchedulingError(
                f"tenant {tenant.tenant_id!r} is already registered"
            )
        tenant.spec()  # validates the weight
        self.tenants[tenant.tenant_id] = tenant
        self._pending.setdefault(tenant.tenant_id, [])
        self.credits.setdefault(tenant.tenant_id, 0.0)

    def tenant_of(self, topology_id: str) -> Optional[str]:
        return self._owner.get(topology_id)

    def owners(self) -> Dict[str, str]:
        """topology id -> tenant id for every submission seen."""
        return dict(self._owner)

    @property
    def pending_ids(self) -> List[str]:
        return [
            topology.topology_id
            for queue in self._pending.values()
            for topology in queue
        ]

    # -- submission -----------------------------------------------------

    def submit(self, topology: Topology, tenant_id: str) -> None:
        """Submit ``topology`` on behalf of ``tenant_id``.

        Disabled (``nimbus.tenancy.enabled: false``), this is a strict
        pass-through to ``Nimbus.submit_topology`` — admission never
        runs and behaviour is byte-identical to direct submission.
        Enabled, the topology queues until an admission round grants it
        cluster slack.
        """
        if tenant_id not in self.tenants:
            raise SchedulingError(
                f"unknown tenant {tenant_id!r}; register it first"
            )
        topology_id = topology.topology_id
        if topology_id in self._owner:
            raise SchedulingError(
                f"topology {topology_id!r} is already submitted"
            )
        self._owner[topology_id] = tenant_id
        if not self.enabled:
            self.nimbus.submit_topology(topology)
            return
        self._pending[tenant_id].append(topology)

    # -- admission ------------------------------------------------------

    def _demand(self, topology: Topology) -> Dict[str, float]:
        return topology.total_demand().as_dict()

    def _capacity(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for node in self.nimbus.cluster.alive_nodes:
            for dim, value in node.capacity.as_dict().items():
                totals[dim] = totals.get(dim, 0.0) + value
        return totals

    def admission_round(self, now: float = 0.0) -> Optional[AdmissionPlan]:
        """Run one weighted-DRF admission step against current slack.

        Called by ``Nimbus.schedule_round`` (quarantined nodes already
        masked, so capacity excludes them) before the per-topology
        schedulers run.  No-op when disabled or nothing is pending.
        """
        if not self.enabled:
            return None
        if not any(self._pending.values()):
            return None
        running = [
            AdmissionRequest(
                topology_id=topology.topology_id,
                tenant_id=self._owner[topology.topology_id],
                demand=self._demand(topology),
            )
            for topology in self.nimbus.topologies
            if topology.topology_id in self._owner
        ]
        pending = [
            AdmissionRequest(
                topology_id=topology.topology_id,
                tenant_id=tenant_id,
                demand=self._demand(topology),
            )
            for tenant_id, queue in self._pending.items()
            for topology in queue
        ]
        plan = plan_admission(
            pending,
            running,
            self._capacity(),
            {tid: tenant.spec() for tid, tenant in self.tenants.items()},
            self.credits,
            headroom=self.config.tenancy_headroom,
            credit_bias=self.config.tenancy_credit_bias,
            credit_accrual=self.config.tenancy_credit_accrual,
            preemption_enabled=self.config.tenancy_preemption_enabled,
            max_preemptions=self.config.tenancy_max_preemptions,
        )
        # Evictions first: kill_topology releases the victim's
        # reservations, so admitted topologies see the freed slack when
        # the scheduler places them this same round.
        for topology_id in plan.evicted:
            victim = self.nimbus.topology(topology_id)
            self.preempted_tasks += victim.num_tasks
            self.nimbus.kill_topology(topology_id)
            # Back to the *front* of the owner's queue: the victim
            # competes again next round before its tenant's newer work.
            self._pending[self._owner[topology_id]].insert(0, victim)
            self.preemptions += 1
        for topology_id in plan.admitted:
            queue = self._pending[self._owner[topology_id]]
            index = next(
                i
                for i, topology in enumerate(queue)
                if topology.topology_id == topology_id
            )
            self.nimbus.submit_topology(queue.pop(index))
        self.credits = dict(plan.credits)
        self.decisions.extend(plan.decisions)
        self.round_records.append(
            AdmissionRoundRecord(
                now=now,
                shares=dict(plan.shares),
                jain=jain_index(list(plan.shares.values())),
                admitted=plan.admitted,
                deferred=plan.deferred,
                evicted=plan.evicted,
            )
        )
        return plan
