"""Nimbus — the master daemon.

Owns the submitted-topology set, invokes the configured scheduler
periodically (default every 10 seconds, paper Section 5), reconciles
membership changes observed through ZooKeeper, and — when attached to a
:class:`~repro.simulation.runtime.SimulationRun` — migrates running tasks
onto new assignments after failures.

Nimbus is stateless with respect to the scheduler: every round the
scheduler rebuilds whatever it needs from the cluster and the live
assignments, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import MembershipError, SchedulingError
from repro.nimbus.config import StormConfig
from repro.nimbus.supervisor import SUPERVISORS_PATH, Supervisor
from repro.nimbus.zookeeper import InMemoryZooKeeper
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler, SchedulingRound
from repro.topology.task import task_label
from repro.topology.topology import Topology

__all__ = ["Nimbus"]


class Nimbus:
    """The master node daemon."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Optional[IScheduler] = None,
        zk: Optional[InMemoryZooKeeper] = None,
        config: Optional[StormConfig] = None,
    ):
        self.cluster = cluster
        self.config = config or StormConfig()
        self.scheduler = scheduler or self.config.make_scheduler()
        self.zk = zk or InMemoryZooKeeper()
        self.zk.ensure_path(SUPERVISORS_PATH)
        self._topologies: Dict[str, Topology] = {}
        self._submission_order: List[str] = []
        self.assignments: Dict[str, Assignment] = {}
        self.rounds: List[SchedulingRound] = []
        #: (simulated time, error message) of every attached-loop round
        #: that could not produce a feasible schedule — the degraded-mode
        #: record chaos tests assert on instead of a silent hang.
        self.scheduling_failures: List[Tuple[float, str]] = []
        #: optional observer called as ``on_reschedule(time, changed_ids)``
        #: when an attached round changes at least one assignment, before
        #: the migrations are applied (recovery monitoring).
        self.on_reschedule: Optional[Callable[[float, List[str]], None]] = None
        # -- quarantine state (only populated when
        # -- ``nimbus.quarantine.enabled`` is set) --------------------------
        #: node id -> recent down-transition times inside the flap window
        self.flap_history: Dict[str, List[float]] = {}
        #: node id -> probation end time; quarantined nodes are excluded
        #: from scheduling even while alive, until probation passes
        self.quarantined: Dict[str, float] = {}
        #: last liveness sampled per node, for down-transition detection
        self._last_alive: Dict[str, bool] = {}
        #: (time, node id) of every quarantine decision, for reporting
        self.quarantine_events: List[Tuple[float, str]] = []
        #: bound by :class:`~repro.nimbus.tenancy.TenancyController`;
        #: consulted per round only when ``nimbus.tenancy.enabled`` is
        #: set, so the default path never changes.
        self.tenancy = None

    # -- topology lifecycle ---------------------------------------------------

    def submit_topology(self, topology: Topology) -> None:
        """Register a topology for scheduling (takes effect next round)."""
        if topology.topology_id in self._topologies:
            raise SchedulingError(
                f"topology {topology.topology_id!r} is already submitted"
            )
        self._topologies[topology.topology_id] = topology
        self._submission_order.append(topology.topology_id)

    def kill_topology(self, topology_id: str) -> None:
        """Remove a topology and release its resource reservations."""
        topology = self._topologies.pop(topology_id, None)
        if topology is None:
            raise SchedulingError(f"no topology {topology_id!r} submitted")
        self._submission_order.remove(topology_id)
        self.assignments.pop(topology_id, None)
        prefix = f"{topology_id}:"
        for node in self.cluster.nodes:
            for label in list(node.reservations):
                if label.startswith(prefix):
                    node.release(label)

    @property
    def topologies(self) -> List[Topology]:
        return [self._topologies[tid] for tid in self._submission_order]

    def topology(self, topology_id: str) -> Topology:
        try:
            return self._topologies[topology_id]
        except KeyError:
            raise SchedulingError(f"no topology {topology_id!r} submitted") from None

    # -- membership ----------------------------------------------------------------

    def registered_supervisors(self) -> List[str]:
        return self.zk.children(SUPERVISORS_PATH)

    def reconcile_membership(self) -> List[str]:
        """Sync cluster liveness with the ZooKeeper supervisor registry.

        A node with no registered supervisor is marked dead; a registered
        node that was dead is revived.  Returns node ids whose liveness
        changed.  Clusters used without supervisors (library-only use)
        are untouched: an empty registry means membership is unmanaged.
        """
        registered = set(self.registered_supervisors())
        if not registered:
            return []
        changed: List[str] = []
        for node in self.cluster.nodes:
            should_be_alive = node.node_id in registered
            if node.alive != should_be_alive:
                if should_be_alive:
                    node.recover()
                else:
                    node.fail()
                changed.append(node.node_id)
        return changed

    def register_supervisor(self, supervisor: Supervisor, now: float = 0.0) -> None:
        """Convenience: start a supervisor against this Nimbus's ZooKeeper
        and add its node to the cluster if new."""
        if supervisor.zk is not self.zk:
            raise MembershipError(
                "supervisor is bound to a different ZooKeeper ensemble"
            )
        if not self.cluster.has_node(supervisor.node.node_id):
            self.cluster.add_node(supervisor.node)
        supervisor.start(now)

    # -- scheduling ----------------------------------------------------------------

    def _live_assignments(self) -> Dict[str, Assignment]:
        """Existing assignments restricted to alive nodes — dead-node
        placements are dropped so the scheduler re-places those tasks and
        their stale reservations are released."""
        alive = {n.node_id for n in self.cluster.alive_nodes}
        live: Dict[str, Assignment] = {}
        for topo_id, assignment in self.assignments.items():
            if topo_id not in self._topologies:
                continue
            surviving = assignment.restricted_to_nodes(alive)
            dropped = set(assignment.tasks) - set(surviving.tasks)
            for task in dropped:
                node_id = assignment.node_of(task)
                if self.cluster.has_node(node_id):
                    node = self.cluster.node(node_id)
                    if task_label(task) in node.reservations:
                        node.release(task_label(task))
            live[topo_id] = surviving
        return live

    def _update_quarantine(self, now: float) -> None:
        """Track per-node flaps and quarantine repeat offenders.

        A *flap* is an alive->dead transition observed between scheduling
        rounds (sampled after membership reconciliation).  A node with
        ``threshold`` flaps inside the sliding window is quarantined for
        ``probation`` seconds; expired quarantines are released with a
        clean flap history, so one more crash does not instantly
        re-quarantine.
        """
        expired = [
            node_id
            for node_id, until in self.quarantined.items()
            if now >= until
        ]
        for node_id in expired:
            del self.quarantined[node_id]
            self.flap_history.pop(node_id, None)
        window = self.config.quarantine_window_s
        threshold = self.config.quarantine_threshold
        probation = self.config.quarantine_probation_s
        for node in self.cluster.nodes:
            node_id = node.node_id
            if self._last_alive.get(node_id, True) and not node.alive:
                history = self.flap_history.get(node_id, [])
                history.append(now)
                history = [t for t in history if t > now - window]
                self.flap_history[node_id] = history
                if (
                    len(history) >= threshold
                    and node_id not in self.quarantined
                ):
                    self.quarantined[node_id] = now + probation
                    self.quarantine_events.append((now, node_id))
            self._last_alive[node_id] = node.alive

    def _mask_quarantined(self) -> List[Node]:
        """Temporarily fail alive-but-quarantined nodes so any scheduler
        — none of which know about quarantine — simply never sees them.
        Returns the masked nodes for the caller to restore."""
        masked: List[Node] = []
        for node_id in self.quarantined:
            if self.cluster.has_node(node_id):
                node = self.cluster.node(node_id)
                if node.alive:
                    node.fail()
                    masked.append(node)
        return masked

    def schedule_round(self, now: float = 0.0) -> SchedulingRound:
        """One scheduler invocation: reconcile membership, call the
        scheduler with live assignments, adopt the result.

        With ``nimbus.quarantine.enabled``, ``now`` (simulated time when
        attached) drives the flap/quarantine bookkeeping, and quarantined
        nodes are masked dead for the duration of the scheduler call.
        Because schedulers keep the surviving ``existing`` placements and
        only re-place dropped tasks, the resulting migration is
        *partial*: only tasks from dead or quarantined nodes move.
        """
        self.reconcile_membership()
        if self.config.quarantine_enabled:
            self._update_quarantine(now)
        masked = self._mask_quarantined()
        try:
            if self.tenancy is not None and self.config.tenancy_enabled:
                # Admission runs with quarantined nodes masked, so the
                # weighted-DRF capacity matches what the schedulers
                # will actually see this round.
                self.tenancy.admission_round(now)
            existing = self._live_assignments()
            round_info = self.scheduler.run(
                self.topologies, self.cluster, existing
            )
        finally:
            for node in masked:
                node.recover()
        self.assignments.update(round_info.assignments)
        self.rounds.append(round_info)
        return round_info

    # -- simulation integration ----------------------------------------

    def attach(
        self,
        run,
        interval_s: Optional[float] = None,
        max_backoff_s: Optional[float] = None,
    ) -> None:
        """Drive periodic scheduling inside a simulation.

        Every ``interval_s`` (default from config: 10 s) of simulated
        time, Nimbus reconciles membership and reschedules; topologies
        whose assignment changed are migrated in the running simulation.

        A round that cannot produce a feasible schedule (mid-outage, or
        genuinely insufficient surviving capacity) is recorded in
        :attr:`scheduling_failures` and retried with exponential backoff:
        the interval doubles per consecutive failure up to
        ``max_backoff_s`` (default ``8 * interval_s``), then resets on the
        first success.  The topology keeps running degraded on whatever
        placements survive — it never hangs and never over-places.
        """
        period = interval_s or self.config.scheduling_interval_s
        backoff_cap = max_backoff_s if max_backoff_s is not None else 8 * period
        state = {"delay": period}

        def tick() -> None:
            before = dict(self.assignments)
            try:
                self.schedule_round(run.sim.now)
            except SchedulingError as err:
                self.scheduling_failures.append((run.sim.now, str(err)))
                state["delay"] = min(state["delay"] * 2, backoff_cap)
            else:
                state["delay"] = period
                changed = [
                    topo_id
                    for topo_id, assignment in self.assignments.items()
                    if before.get(topo_id) != assignment
                ]
                if changed and self.on_reschedule is not None:
                    self.on_reschedule(run.sim.now, changed)
                for topo_id in changed:
                    run.migrate(topo_id, self.assignments[topo_id])
            run.on_time(run.sim.now + state["delay"], tick)

        run.on_time(period, tick)
