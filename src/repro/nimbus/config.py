"""storm.yaml-style configuration.

The paper's user API (Section 5.2) configures node resources and the
scheduler choice through Storm's flat YAML configuration file::

    supervisor.memory.capacity.mb: 20480.0
    supervisor.cpu.capacity: 100.0
    storm.scheduler: "repro.scheduler.rstorm.RStormScheduler"

This module provides a dependency-free parser for that flat subset of
YAML (scalar and inline-list values, comments) plus a typed
:class:`StormConfig` wrapper with Storm's defaults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ConfigError

__all__ = ["StormConfig", "parse_storm_yaml"]

#: Keys understood by this reproduction, with Storm-compatible defaults.
DEFAULTS: Dict[str, Any] = {
    "supervisor.memory.capacity.mb": 4096.0,
    "supervisor.cpu.capacity": 400.0,
    "supervisor.bandwidth.capacity.mbps": 1000.0,
    "supervisor.slots.ports": [6700, 6701, 6702, 6703],
    "storm.scheduler": "default",
    "nimbus.scheduler.interval.secs": 10.0,
    "nimbus.quarantine.enabled": False,
    "nimbus.quarantine.threshold": 3,
    "nimbus.quarantine.window.secs": 120.0,
    "nimbus.quarantine.probation.secs": 60.0,
    "nimbus.elastic.enabled": False,
    "nimbus.elastic.interval.secs": 15.0,
    "nimbus.elastic.target.utilisation": 0.7,
    "nimbus.elastic.hysteresis": 0.25,
    "nimbus.elastic.min.parallelism": 1,
    "nimbus.elastic.max.parallelism": 16,
    "nimbus.elastic.scale.down.patience": 3,
    "nimbus.elastic.rebalance.enabled": True,
    "nimbus.elastic.rebalance.threshold": 0.85,
    "nimbus.tenancy.enabled": False,
    "nimbus.tenancy.headroom": 1.0,
    "nimbus.tenancy.credit.accrual": 1.0,
    "nimbus.tenancy.credit.bias": 0.05,
    "nimbus.tenancy.preemption.enabled": True,
    "nimbus.tenancy.max.preemptions": 2,
    "nimbus.flow.enabled": False,
    "nimbus.flow.queue.capacity": 64,
    "nimbus.flow.high.watermark": 0.8,
    "nimbus.flow.low.watermark": 0.4,
    "nimbus.flow.shedding": "none",
    "topology.workers": None,
    "topology.max.spout.pending": 10,
    "topology.message.timeout.secs": 30.0,
}


def _parse_scalar(raw: str) -> Union[str, int, float, bool, None]:
    text = raw.strip()
    if not text or text.lower() in ("null", "~"):
        return None
    if text.lower() == "true":
        return True
    if text.lower() == "false":
        return False
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_storm_yaml(text: str) -> Dict[str, Any]:
    """Parse the flat ``key: value`` YAML subset storm.yaml uses.

    Supports scalars (str/int/float/bool/null), inline lists
    (``[6700, 6701]``), full-line and trailing comments, and blank lines.
    Nested mappings are rejected — storm.yaml conventionally uses dotted
    flat keys.
    """
    result: Dict[str, Any] = {}
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.startswith((" ", "\t")):
            raise ConfigError(
                f"line {lineno}: nested YAML is not supported in storm.yaml "
                f"(use dotted flat keys): {raw_line!r}"
            )
        if ":" not in line:
            raise ConfigError(f"line {lineno}: expected 'key: value': {raw_line!r}")
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip()
        if not key:
            raise ConfigError(f"line {lineno}: empty key: {raw_line!r}")
        if value.startswith("[") and value.endswith("]"):
            inner = value[1:-1].strip()
            items: List[Any] = []
            if inner:
                items = [_parse_scalar(part) for part in inner.split(",")]
            result[key] = items
        else:
            result[key] = _parse_scalar(value)
    return result


class StormConfig:
    """Typed access to a storm.yaml-style configuration with defaults."""

    def __init__(self, values: Optional[Mapping[str, Any]] = None):
        self._values: Dict[str, Any] = dict(DEFAULTS)
        if values:
            self._values.update(values)

    @classmethod
    def from_yaml(cls, text: str) -> "StormConfig":
        return cls(parse_storm_yaml(text))

    @classmethod
    def from_file(cls, path: str) -> "StormConfig":
        with open(path) as handle:
            return cls.from_yaml(handle.read())

    # -- generic access ---------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise ConfigError(f"unknown configuration key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def with_overrides(self, **overrides: Any) -> "StormConfig":
        merged = dict(self._values)
        merged.update(
            {key.replace("_", "."): value for key, value in overrides.items()}
        )
        return StormConfig(merged)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    # -- typed accessors ------------------------------------------------------

    def _positive_number(self, key: str) -> float:
        value = self[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(f"{key} must be a number, got {value!r}")
        if value <= 0:
            raise ConfigError(f"{key} must be positive, got {value!r}")
        return float(value)

    @property
    def supervisor_memory_mb(self) -> float:
        return self._positive_number("supervisor.memory.capacity.mb")

    @property
    def supervisor_cpu(self) -> float:
        return self._positive_number("supervisor.cpu.capacity")

    @property
    def supervisor_bandwidth_mbps(self) -> float:
        return self._positive_number("supervisor.bandwidth.capacity.mbps")

    @property
    def supervisor_ports(self) -> List[int]:
        ports = self["supervisor.slots.ports"]
        if not isinstance(ports, list) or not ports:
            raise ConfigError("supervisor.slots.ports must be a non-empty list")
        out = []
        for port in ports:
            if not isinstance(port, int) or isinstance(port, bool):
                raise ConfigError(f"invalid supervisor port {port!r}")
            out.append(port)
        return out

    @property
    def scheduler_name(self) -> str:
        value = self["storm.scheduler"]
        if not isinstance(value, str) or not value:
            raise ConfigError("storm.scheduler must be a non-empty string")
        return value

    @property
    def scheduling_interval_s(self) -> float:
        return self._positive_number("nimbus.scheduler.interval.secs")

    @property
    def quarantine_enabled(self) -> bool:
        value = self["nimbus.quarantine.enabled"]
        if not isinstance(value, bool):
            raise ConfigError("nimbus.quarantine.enabled must be a bool")
        return value

    @property
    def quarantine_threshold(self) -> int:
        value = self["nimbus.quarantine.threshold"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError("nimbus.quarantine.threshold must be an int >= 1")
        return value

    @property
    def quarantine_window_s(self) -> float:
        return self._positive_number("nimbus.quarantine.window.secs")

    @property
    def quarantine_probation_s(self) -> float:
        return self._positive_number("nimbus.quarantine.probation.secs")

    @property
    def elastic_enabled(self) -> bool:
        value = self["nimbus.elastic.enabled"]
        if not isinstance(value, bool):
            raise ConfigError("nimbus.elastic.enabled must be a bool")
        return value

    @property
    def elastic_interval_s(self) -> float:
        return self._positive_number("nimbus.elastic.interval.secs")

    @property
    def elastic_target_utilisation(self) -> float:
        value = self._positive_number("nimbus.elastic.target.utilisation")
        if value > 1.0:
            raise ConfigError(
                "nimbus.elastic.target.utilisation must be in (0, 1], "
                f"got {value!r}"
            )
        return value

    @property
    def elastic_hysteresis(self) -> float:
        value = self["nimbus.elastic.hysteresis"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError("nimbus.elastic.hysteresis must be a number")
        if not 0.0 <= value < 1.0:
            raise ConfigError(
                f"nimbus.elastic.hysteresis must be in [0, 1), got {value!r}"
            )
        return float(value)

    @property
    def elastic_min_parallelism(self) -> int:
        value = self["nimbus.elastic.min.parallelism"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                "nimbus.elastic.min.parallelism must be an int >= 1"
            )
        return value

    @property
    def elastic_max_parallelism(self) -> int:
        value = self["nimbus.elastic.max.parallelism"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                "nimbus.elastic.max.parallelism must be an int >= 1"
            )
        if value < self.elastic_min_parallelism:
            raise ConfigError(
                "nimbus.elastic.max.parallelism must be >= "
                "nimbus.elastic.min.parallelism"
            )
        return value

    @property
    def elastic_scale_down_patience(self) -> int:
        value = self["nimbus.elastic.scale.down.patience"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                "nimbus.elastic.scale.down.patience must be an int >= 1"
            )
        return value

    @property
    def elastic_rebalance_enabled(self) -> bool:
        value = self["nimbus.elastic.rebalance.enabled"]
        if not isinstance(value, bool):
            raise ConfigError("nimbus.elastic.rebalance.enabled must be a bool")
        return value

    @property
    def elastic_rebalance_threshold(self) -> float:
        value = self._positive_number("nimbus.elastic.rebalance.threshold")
        if value > 1.0:
            raise ConfigError(
                "nimbus.elastic.rebalance.threshold must be in (0, 1], "
                f"got {value!r}"
            )
        return value

    @property
    def tenancy_enabled(self) -> bool:
        value = self["nimbus.tenancy.enabled"]
        if not isinstance(value, bool):
            raise ConfigError("nimbus.tenancy.enabled must be a bool")
        return value

    @property
    def tenancy_headroom(self) -> float:
        value = self._positive_number("nimbus.tenancy.headroom")
        if value > 1.0:
            raise ConfigError(
                f"nimbus.tenancy.headroom must be in (0, 1], got {value!r}"
            )
        return value

    def _non_negative_number(self, key: str) -> float:
        value = self[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(f"{key} must be a number, got {value!r}")
        if value < 0:
            raise ConfigError(f"{key} must be >= 0, got {value!r}")
        return float(value)

    @property
    def tenancy_credit_accrual(self) -> float:
        return self._non_negative_number("nimbus.tenancy.credit.accrual")

    @property
    def tenancy_credit_bias(self) -> float:
        return self._non_negative_number("nimbus.tenancy.credit.bias")

    @property
    def tenancy_preemption_enabled(self) -> bool:
        value = self["nimbus.tenancy.preemption.enabled"]
        if not isinstance(value, bool):
            raise ConfigError(
                "nimbus.tenancy.preemption.enabled must be a bool"
            )
        return value

    @property
    def tenancy_max_preemptions(self) -> int:
        value = self["nimbus.tenancy.max.preemptions"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ConfigError(
                "nimbus.tenancy.max.preemptions must be an int >= 0"
            )
        return value

    @property
    def flow_enabled(self) -> bool:
        value = self["nimbus.flow.enabled"]
        if not isinstance(value, bool):
            raise ConfigError("nimbus.flow.enabled must be a bool")
        return value

    @property
    def flow_queue_capacity(self) -> int:
        value = self["nimbus.flow.queue.capacity"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                "nimbus.flow.queue.capacity must be an int >= 1"
            )
        return value

    @property
    def flow_high_watermark(self) -> float:
        value = self._positive_number("nimbus.flow.high.watermark")
        if value > 1.0:
            raise ConfigError(
                f"nimbus.flow.high.watermark must be in (0, 1], got {value!r}"
            )
        return value

    @property
    def flow_low_watermark(self) -> float:
        value = self._non_negative_number("nimbus.flow.low.watermark")
        if value >= self.flow_high_watermark:
            raise ConfigError(
                "nimbus.flow.low.watermark must be below "
                "nimbus.flow.high.watermark"
            )
        return value

    @property
    def flow_shedding(self) -> str:
        from repro.simulation.flowcontrol import SHEDDING_POLICIES

        value = self["nimbus.flow.shedding"]
        if value not in SHEDDING_POLICIES:
            raise ConfigError(
                f"nimbus.flow.shedding must be one of {SHEDDING_POLICIES}, "
                f"got {value!r}"
            )
        return value

    def flow_control(self, priorities=()):
        """Build the ``simulation.flow`` payload from ``nimbus.flow.*``.

        Returns ``None`` when ``nimbus.flow.enabled`` is false (the
        byte-identical default) and a
        :class:`~repro.simulation.flowcontrol.FlowControlConfig`
        otherwise.  ``priorities`` feeds the ``priority`` shedding
        policy — build it with
        :func:`repro.simulation.flowcontrol.tenant_priorities`.
        """
        if not self.flow_enabled:
            return None
        from repro.simulation.flowcontrol import FlowControlConfig

        return FlowControlConfig(
            queue_capacity=self.flow_queue_capacity,
            high_watermark=self.flow_high_watermark,
            low_watermark=self.flow_low_watermark,
            shedding=self.flow_shedding,
            priorities=tuple(priorities),
        )

    @property
    def max_spout_pending(self) -> int:
        value = self["topology.max.spout.pending"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError("topology.max.spout.pending must be an int >= 1")
        return value

    @property
    def message_timeout_s(self) -> float:
        return self._positive_number("topology.message.timeout.secs")

    @property
    def topology_workers(self) -> Optional[int]:
        value = self["topology.workers"]
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError("topology.workers must be an int >= 1 or null")
        return value

    def make_scheduler(self):
        """Instantiate the configured scheduler.

        Recognised names: ``default``, ``r-storm``/``rstorm``/
        ``resource-aware``, ``aniello``/``aniello-offline``.
        """
        from repro.scheduler import (
            AnielloOfflineScheduler,
            DefaultScheduler,
            RStormScheduler,
        )

        name = self.scheduler_name.lower()
        if name in ("default", "even"):
            return DefaultScheduler(workers_per_topology=self.topology_workers)
        if name in ("r-storm", "rstorm", "resource-aware"):
            return RStormScheduler()
        if name in ("aniello", "aniello-offline"):
            return AnielloOfflineScheduler(
                workers_per_topology=self.topology_workers
            )
        raise ConfigError(f"unknown storm.scheduler {self.scheduler_name!r}")

    def __repr__(self) -> str:
        return f"StormConfig(scheduler={self.scheduler_name!r})"
