"""Supervisors — the worker-node daemons.

Each worker machine runs a supervisor that registers itself (and its
resource capacities, per the paper's Section 5 modification that lets
"physical machines send their resource availability to Nimbus") as an
ephemeral znode, then heartbeats.  Heartbeat loss expires the session and
Nimbus observes the membership change.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cluster.node import Node
from repro.errors import MembershipError
from repro.nimbus.config import StormConfig
from repro.nimbus.zookeeper import InMemoryZooKeeper

__all__ = ["Supervisor", "SUPERVISORS_PATH"]

SUPERVISORS_PATH = "/supervisors"


class Supervisor:
    """One worker node's supervisor daemon."""

    def __init__(
        self,
        node: Node,
        zk: InMemoryZooKeeper,
        config: Optional[StormConfig] = None,
    ):
        self.node = node
        self.zk = zk
        self.config = config or StormConfig()
        self.session: Optional[int] = None
        self.last_heartbeat: float = 0.0

    @property
    def supervisor_id(self) -> str:
        return self.node.node_id

    @property
    def znode_path(self) -> str:
        return f"{SUPERVISORS_PATH}/{self.supervisor_id}"

    @property
    def registered(self) -> bool:
        return (
            self.session is not None
            and self.zk.session_alive(self.session)
            and self.zk.exists(self.znode_path)
        )

    def capacity_payload(self) -> Dict[str, Any]:
        """The resource advertisement published to ZooKeeper — the data
        R-Storm's GlobalState reads to learn node availability."""
        return {
            "supervisor.id": self.supervisor_id,
            "rack": self.node.rack_id,
            "supervisor.memory.capacity.mb": self.node.capacity.memory_mb,
            "supervisor.cpu.capacity": self.node.capacity.cpu,
            "supervisor.bandwidth.capacity.mbps": self.node.capacity.bandwidth_mbps,
            "supervisor.slots.ports": [slot.port for slot in self.node.slots],
        }

    def start(self, now: float = 0.0) -> None:
        """Open a session and register the ephemeral supervisor znode."""
        if self.registered:
            raise MembershipError(
                f"supervisor {self.supervisor_id!r} is already registered"
            )
        self.zk.ensure_path(SUPERVISORS_PATH)
        self.session = self.zk.create_session()
        self.zk.create(
            self.znode_path,
            self.capacity_payload(),
            ephemeral=True,
            session=self.session,
        )
        self.last_heartbeat = now

    def heartbeat(self, now: float) -> None:
        if not self.registered:
            raise MembershipError(
                f"supervisor {self.supervisor_id!r} is not registered"
            )
        self.last_heartbeat = now
        payload = self.capacity_payload()
        payload["heartbeat"] = now
        self.zk.set(self.znode_path, payload)

    def stop(self) -> None:
        """Graceful shutdown: expire the session, dropping the ephemeral
        registration."""
        if self.session is not None and self.zk.session_alive(self.session):
            self.zk.expire_session(self.session)
        self.session = None

    def crash(self) -> None:
        """Hard failure: the node dies and the session expires (in real
        ZooKeeper after the session timeout; immediately here)."""
        self.node.fail()
        self.stop()

    def __repr__(self) -> str:
        return (
            f"Supervisor({self.supervisor_id!r}, registered={self.registered})"
        )
