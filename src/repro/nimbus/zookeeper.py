"""In-memory ZooKeeper substitute.

Storm's master keeps its membership view in ZooKeeper (paper Section 2:
"Nimbus communicates and coordinates with Zookeeper to maintain a
consistent list of active worker nodes and to detect failure in the
membership").  This module implements the slice of the ZooKeeper data
model that coordination needs: a path-addressed tree of znodes, ephemeral
nodes bound to sessions, and one-shot watches on nodes and children.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import MembershipError

__all__ = ["InMemoryZooKeeper", "ZNode"]


@dataclass
class ZNode:
    """One node in the znode tree."""

    path: str
    data: Any = None
    ephemeral_session: Optional[int] = None
    version: int = 0


def _validate_path(path: str) -> str:
    if not path.startswith("/") or (path != "/" and path.endswith("/")):
        raise MembershipError(f"invalid znode path {path!r}")
    return path


def _parent(path: str) -> str:
    if path == "/":
        return "/"
    head, _, _ = path.rpartition("/")
    return head or "/"


class InMemoryZooKeeper:
    """A single-process znode tree with sessions and one-shot watches."""

    def __init__(self) -> None:
        self._nodes: Dict[str, ZNode] = {"/": ZNode("/")}
        self._sessions: Dict[int, Set[str]] = {}
        self._session_counter = itertools.count(1)
        #: path -> callbacks fired once when the node changes or is deleted
        self._node_watches: Dict[str, List[Callable[[str], None]]] = {}
        #: path -> callbacks fired once when its child set changes
        self._child_watches: Dict[str, List[Callable[[str], None]]] = {}

    # -- sessions -----------------------------------------------------------

    def create_session(self) -> int:
        session = next(self._session_counter)
        self._sessions[session] = set()
        return session

    def expire_session(self, session: int) -> None:
        """Delete every ephemeral znode owned by ``session`` (supervisor
        crash / heartbeat loss) and fire the relevant watches."""
        paths = self._sessions.pop(session, None)
        if paths is None:
            raise MembershipError(f"unknown session {session}")
        for path in sorted(paths, key=len, reverse=True):
            if path in self._nodes:
                self._delete_existing(path)

    def session_alive(self, session: int) -> bool:
        return session in self._sessions

    # -- znode CRUD -----------------------------------------------------------

    def create(
        self,
        path: str,
        data: Any = None,
        ephemeral: bool = False,
        session: Optional[int] = None,
    ) -> None:
        """Create a znode.  The parent must exist; ephemeral nodes need a
        live session and cannot have children."""
        _validate_path(path)
        if path in self._nodes:
            raise MembershipError(f"znode {path!r} already exists")
        parent = _parent(path)
        parent_node = self._nodes.get(parent)
        if parent_node is None:
            raise MembershipError(f"parent znode {parent!r} does not exist")
        if parent_node.ephemeral_session is not None:
            raise MembershipError(
                f"ephemeral znode {parent!r} cannot have children"
            )
        if ephemeral:
            if session is None or session not in self._sessions:
                raise MembershipError(
                    f"ephemeral znode {path!r} needs a live session"
                )
            self._sessions[session].add(path)
            self._nodes[path] = ZNode(path, data, ephemeral_session=session)
        else:
            self._nodes[path] = ZNode(path, data)
        self._fire_child_watches(parent)

    def ensure_path(self, path: str) -> None:
        """Create ``path`` and any missing ancestors (persistent nodes)."""
        _validate_path(path)
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if current not in self._nodes:
                self.create(current)

    def set(self, path: str, data: Any) -> None:
        node = self._get(path)
        node.data = data
        node.version += 1
        self._fire_node_watches(path)

    def get(self, path: str) -> Any:
        return self._get(path).data

    def version(self, path: str) -> int:
        return self._get(path).version

    def exists(self, path: str) -> bool:
        return path in self._nodes

    def delete(self, path: str) -> None:
        _validate_path(path)
        if path == "/":
            raise MembershipError("cannot delete the root znode")
        if path not in self._nodes:
            raise MembershipError(f"znode {path!r} does not exist")
        if self.children(path):
            raise MembershipError(f"znode {path!r} has children")
        self._delete_existing(path)

    def children(self, path: str) -> List[str]:
        self._get(path)
        prefix = path if path.endswith("/") else path + "/"
        out = []
        for candidate in self._nodes:
            if candidate.startswith(prefix) and "/" not in candidate[len(prefix):]:
                out.append(candidate[len(prefix):])
        return sorted(out)

    # -- watches ----------------------------------------------------------------

    def watch_node(self, path: str, callback: Callable[[str], None]) -> None:
        """One-shot watch fired when ``path``'s data changes or the node
        is deleted."""
        self._get(path)
        self._node_watches.setdefault(path, []).append(callback)

    def watch_children(self, path: str, callback: Callable[[str], None]) -> None:
        """One-shot watch fired when ``path``'s direct child set changes."""
        self._get(path)
        self._child_watches.setdefault(path, []).append(callback)

    # -- internals ------------------------------------------------------------------

    def _get(self, path: str) -> ZNode:
        _validate_path(path)
        node = self._nodes.get(path)
        if node is None:
            raise MembershipError(f"znode {path!r} does not exist")
        return node

    def _delete_existing(self, path: str) -> None:
        node = self._nodes.pop(path)
        if node.ephemeral_session is not None:
            owned = self._sessions.get(node.ephemeral_session)
            if owned is not None:
                owned.discard(path)
        self._fire_node_watches(path)
        self._fire_child_watches(_parent(path))

    def _fire_node_watches(self, path: str) -> None:
        for callback in self._node_watches.pop(path, []):
            callback(path)

    def _fire_child_watches(self, path: str) -> None:
        for callback in self._child_watches.pop(path, []):
            callback(path)
