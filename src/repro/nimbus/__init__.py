"""Coordination plane: Nimbus master, supervisors, ZooKeeper, config."""

from repro.nimbus.config import StormConfig, parse_storm_yaml
from repro.nimbus.elastic import (
    ElasticController,
    ElasticDecision,
    required_parallelism,
)
from repro.nimbus.failure_detector import HeartbeatFailureDetector
from repro.nimbus.nimbus import Nimbus
from repro.nimbus.supervisor import SUPERVISORS_PATH, Supervisor
from repro.nimbus.tenancy import SLO, TenancyController, Tenant
from repro.nimbus.zookeeper import InMemoryZooKeeper, ZNode

__all__ = [
    "ElasticController",
    "ElasticDecision",
    "HeartbeatFailureDetector",
    "InMemoryZooKeeper",
    "Nimbus",
    "SLO",
    "SUPERVISORS_PATH",
    "StormConfig",
    "Supervisor",
    "Tenant",
    "TenancyController",
    "ZNode",
    "parse_storm_yaml",
    "required_parallelism",
]
