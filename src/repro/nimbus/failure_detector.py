"""Heartbeat-based failure detection.

The in-memory ZooKeeper expires a supervisor's session instantly when
:meth:`Supervisor.crash` is called — convenient for tests, but real
clusters detect failure by *missed heartbeats* after a timeout.  This
module provides that behaviour for simulated runs: supervisors heartbeat
periodically in simulated time, and the detector expires sessions whose
last heartbeat is older than the timeout, at which point Nimbus's
membership reconciliation sees the node disappear.

Wiring it up::

    detector = HeartbeatFailureDetector(supervisors, timeout_s=15.0)
    detector.attach(run)        # heartbeats + checks inside the DES
    nimbus.attach(run)          # scheduling ticks observe the expiry

Killing a machine then becomes ``detector.silence(node_id)`` (the
supervisor simply stops heartbeating), and recovery takes one timeout
plus one scheduling period — the end-to-end failover latency the paper's
"snappy rescheduling" requirement is about.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import MembershipError
from repro.nimbus.supervisor import Supervisor

__all__ = ["HeartbeatFailureDetector"]


class HeartbeatFailureDetector:
    """Drives supervisor heartbeats and expires silent ones.

    Args:
        supervisors: The supervisors to manage (must be started).
        heartbeat_interval_s: Simulated seconds between heartbeats.
        timeout_s: A supervisor whose last heartbeat is older than this
            is declared dead (its ZooKeeper session expires and its node
            is failed).  Must exceed the heartbeat interval.
    """

    def __init__(
        self,
        supervisors: Iterable[Supervisor],
        heartbeat_interval_s: float = 3.0,
        timeout_s: float = 10.0,
    ):
        self.supervisors: Dict[str, Supervisor] = {
            s.supervisor_id: s for s in supervisors
        }
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if timeout_s <= heartbeat_interval_s:
            raise ValueError("timeout_s must exceed the heartbeat interval")
        self.heartbeat_interval_s = heartbeat_interval_s
        self.timeout_s = timeout_s
        self._silenced: set = set()
        #: (time, node_id) of every expiry declared
        self.expirations: List[tuple] = []
        #: optional observer called as ``on_expire(time, node_id)`` the
        #: moment a session is declared expired (recovery monitoring).
        self.on_expire: Optional[Callable[[float, str], None]] = None

    # -- control -------------------------------------------------------------

    def silence(self, node_id: str) -> None:
        """The machine stops heartbeating (crash/partition); detection
        happens after the timeout, not instantly."""
        if node_id not in self.supervisors:
            raise MembershipError(f"unknown supervisor {node_id!r}")
        self._silenced.add(node_id)
        self.supervisors[node_id].node.fail()

    def revive(self, node_id: str, now: float = 0.0) -> None:
        """The machine returns and re-registers."""
        supervisor = self.supervisors.get(node_id)
        if supervisor is None:
            raise MembershipError(f"unknown supervisor {node_id!r}")
        self._silenced.discard(node_id)
        supervisor.node.recover()
        if not supervisor.registered:
            supervisor.start(now)

    def mute(self, node_id: str) -> None:
        """Heartbeats stop but the machine keeps running (a gray failure:
        the node is partitioned from ZooKeeper, not dead).  After the
        timeout the detector will still expire the session and declare the
        node failed — Nimbus cannot tell the difference, which is the
        point."""
        if node_id not in self.supervisors:
            raise MembershipError(f"unknown supervisor {node_id!r}")
        self._silenced.add(node_id)

    def unmute(self, node_id: str, now: float = 0.0) -> None:
        """Heartbeats resume.  If the session already expired (the node
        was wrongly declared dead), the supervisor re-registers and the
        node recovers — the false-positive heals like a real failure."""
        supervisor = self.supervisors.get(node_id)
        if supervisor is None:
            raise MembershipError(f"unknown supervisor {node_id!r}")
        self._silenced.discard(node_id)
        if not supervisor.registered:
            supervisor.node.recover()
            supervisor.start(now)

    def is_silenced(self, node_id: str) -> bool:
        return node_id in self._silenced

    # -- simulation wiring --------------------------------------------------------

    def attach(self, run) -> None:
        """Schedule heartbeats and expiry checks inside ``run``."""

        def beat() -> None:
            now = run.sim.now
            for node_id, supervisor in self.supervisors.items():
                if node_id in self._silenced:
                    continue
                if supervisor.registered:
                    supervisor.heartbeat(now)
            run.on_time(now + self.heartbeat_interval_s, beat)

        def check() -> None:
            now = run.sim.now
            for node_id, supervisor in self.supervisors.items():
                if not supervisor.registered:
                    continue
                if now - supervisor.last_heartbeat > self.timeout_s:
                    supervisor.stop()  # session expiry
                    supervisor.node.fail()
                    self.expirations.append((now, node_id))
                    if self.on_expire is not None:
                        self.on_expire(now, node_id)
            run.on_time(now + self.heartbeat_interval_s, check)

        run.on_time(self.heartbeat_interval_s, beat)
        run.on_time(self.heartbeat_interval_s * 1.5, check)
