"""Elastic runtime: queue-driven autoscaling and online rebalance.

R-Storm (PAPER.md) computes a *static* placement from declared resource
needs — and the overload experiment shows exactly where that breaks:
packing to declared capacity leaves no headroom past 1x offered load.
This module adds the control loop the DRS line of work argues for: a
deterministic, opt-in Nimbus daemon that samples per-component queue
backlogs and observed throughput from the running discrete-event
simulation on a fixed control period, sizes each bolt with an M/M/k
queueing model on the observed arrival/service rates, and acts through
two mechanisms:

* **scale** — change a bolt's parallelism via
  :meth:`~repro.topology.topology.Topology.with_parallelism` (task-id
  stable), re-running the active scheduler for just the added tasks
  (scale-up) or shrinking the live assignment directly (scale-down),
  then swapping the new generation in with
  :meth:`~repro.simulation.runtime.SimulationRun.rescale`;
* **rebalance** — migrate the hottest executor off a saturated node onto
  the least-utilised feasible one with
  :meth:`~repro.simulation.runtime.SimulationRun.migrate`
  (``reason="elastic"``, so churn accounting stays separate from fault
  recovery).

Everything is off by default (``nimbus.elastic.enabled: false``) and the
controller is a strict no-op when disabled, so the default path stays
byte-identical — CI asserts this.  The loop is fully deterministic:
decisions derive from simulated time and deterministic counters only, no
RNG and no wall clock.

The control loop per period, per bolt::

    sample    lambda = (processed delta + backlog delta) / period
              mu     = declared_core_share * 1000 / cpu_ms_per_tuple
    size      k*     = ceil((lambda + backlog/period) / (mu * rho_target))
    dampen    inside the hysteresis band -> hold
              below current -> hold until `patience` consecutive periods
    act       scale-up immediately / scale-down after patience
    rebalance at most one hot-executor migration per topology per period,
              never onto a quarantined or dead node

Quarantine composes: scale-up scheduling masks quarantined nodes exactly
like :meth:`Nimbus.schedule_round` does, and rebalance never targets
them — the elastic loop cannot fight the quarantine machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.nimbus.config import StormConfig
from repro.nimbus.nimbus import Nimbus
from repro.scheduler.assignment import Assignment
from repro.topology.task import Task, task_label

__all__ = ["ElasticDecision", "ElasticController", "required_parallelism"]

#: CPU points that equal one core (paper: 100 points = one full core).
_POINTS_PER_CORE = 100.0


def required_parallelism(
    arrival_tps: float,
    service_tps_per_task: float,
    current: int,
    backlog_tuples: int = 0,
    *,
    target_utilisation: float = 0.7,
    hysteresis: float = 0.25,
    min_parallelism: int = 1,
    max_parallelism: int = 16,
    drain_period_s: float = 15.0,
) -> int:
    """M/M/k executor sizing with a hysteresis dead band.

    The smallest ``k`` keeping per-server utilisation at or below
    ``target_utilisation`` for the observed arrival rate, plus enough
    extra service capacity to drain the standing backlog within one
    control period::

        k* = ceil((lambda + backlog/drain_period) / (mu * rho_target))

    The dead band suppresses churn: when the unrounded requirement lies
    within ``current * (1 +/- hysteresis)``, the current parallelism is
    kept.  The result is clamped to ``[min_parallelism,
    max_parallelism]`` and is monotone non-decreasing in ``arrival_tps``
    (the property suite asserts all of this).
    """
    if current < 1:
        raise ValueError(f"current parallelism must be >= 1, got {current}")
    if arrival_tps < 0:
        raise ValueError(f"arrival_tps must be >= 0, got {arrival_tps}")
    if backlog_tuples < 0:
        raise ValueError(
            f"backlog_tuples must be >= 0, got {backlog_tuples}"
        )
    if not 0.0 < target_utilisation <= 1.0:
        raise ValueError(
            f"target_utilisation must be in (0, 1], got {target_utilisation}"
        )
    if not 0.0 <= hysteresis < 1.0:
        raise ValueError(f"hysteresis must be in [0, 1), got {hysteresis}")
    if min_parallelism < 1 or max_parallelism < min_parallelism:
        raise ValueError(
            f"need 1 <= min_parallelism <= max_parallelism, got "
            f"[{min_parallelism}, {max_parallelism}]"
        )
    if service_tps_per_task <= 0:
        # No service-rate estimate (e.g. a zero-cost profile): hold.
        return min(max(current, min_parallelism), max_parallelism)
    drain_tps = backlog_tuples / drain_period_s if drain_period_s > 0 else 0.0
    raw = (arrival_tps + drain_tps) / (
        service_tps_per_task * target_utilisation
    )
    if current * (1.0 - hysteresis) <= raw <= current * (1.0 + hysteresis):
        required = current
    else:
        required = int(math.ceil(raw - 1e-9))
    return min(max(required, min_parallelism), max_parallelism)


@dataclass(frozen=True)
class ElasticDecision:
    """One committed control action (plain data, picklable)."""

    time_s: float
    topology_id: str
    component: str
    #: ``scale-up`` | ``scale-down`` | ``rebalance``
    action: str
    from_parallelism: int
    to_parallelism: int
    #: observed component input rate over the control period (tuples/s)
    arrival_tps: float
    #: standing input backlog sampled at decision time (tuples)
    backlog_tuples: int
    #: executor churn of this action (tasks moved + added + removed)
    tasks_moved: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time_s": round(self.time_s, 6),
            "topology_id": self.topology_id,
            "component": self.component,
            "action": self.action,
            "from_parallelism": self.from_parallelism,
            "to_parallelism": self.to_parallelism,
            "arrival_tps": round(self.arrival_tps, 3),
            "backlog_tuples": self.backlog_tuples,
            "tasks_moved": self.tasks_moved,
        }


class ElasticController:
    """The queue-driven autoscaling daemon, attached to a simulation.

    Args:
        nimbus: The master daemon whose topologies/assignments/scheduler
            (and quarantine state) the controller acts through.
        config: Config to read ``nimbus.elastic.*`` knobs from (defaults
            to the Nimbus's own config).

    Attach with :meth:`attach`; when ``nimbus.elastic.enabled`` is false
    the attach is a strict no-op, leaving the run untouched.
    """

    def __init__(
        self, nimbus: Nimbus, config: Optional[StormConfig] = None
    ):
        self.nimbus = nimbus
        self.config = config or nimbus.config
        #: every committed action, in decision order
        self.decisions: List[ElasticDecision] = []
        #: (time, message) of scale attempts the scheduler refused
        self.actions_failed: List[Tuple[float, str]] = []
        #: total elastic churn (tasks moved + added + removed)
        self.tasks_moved = 0
        # -- per-period sampling state --------------------------------
        self._last_time: Optional[float] = None
        self._last_processed: Dict[Tuple[str, str], int] = {}
        self._last_busy: Dict[str, float] = {}
        self._last_backlog: Dict[Tuple[str, str], int] = {}
        #: per-(topology, component) shed-tuple totals at the last tick —
        #: with the flow layer on, shed tuples never reach the bounded
        #: queue, so backlog alone under-reads demand; the shed delta
        #: restores it.  Stays empty (zero deltas) when flow is off.
        self._last_shed: Dict[Tuple[str, str], int] = {}
        #: consecutive periods a component's requirement sat below its
        #: current parallelism (scale-down patience)
        self._below_streak: Dict[Tuple[str, str], int] = {}

    # -- wiring --------------------------------------------------------

    def attach(self, run, interval_s: Optional[float] = None) -> None:
        """Drive the control loop inside a simulation.

        No-op when ``nimbus.elastic.enabled`` is false: a config that
        merely *carries* elastic keys must not perturb the run.
        """
        if not self.config.elastic_enabled:
            return
        period = interval_s or self.config.elastic_interval_s

        def tick() -> None:
            self._control_cycle(run, period)
            run.on_time(run.sim.now + period, tick)

        run.on_time(period, tick)

    # -- the control cycle ---------------------------------------------

    def _control_cycle(self, run, period: float) -> None:
        now = run.sim.now
        last_time = self._last_time if self._last_time is not None else 0.0
        dt = now - last_time
        processed = run.stats.processed_snapshot()
        busy = run.stats.busy_snapshot()
        shed = run.stats.shed_snapshot()
        if dt > 0:
            for topology_id in list(self.nimbus.assignments):
                scaled = self._scale_topology(
                    run, topology_id, processed, shed, dt, period, now
                )
                if not scaled and self.config.elastic_rebalance_enabled:
                    self._rebalance_topology(
                        run, topology_id, busy, dt, now
                    )
        self._last_time = now
        self._last_processed = processed
        self._last_busy = busy
        self._last_shed = shed

    def _scale_topology(
        self,
        run,
        topology_id: str,
        processed: Dict[Tuple[str, str], int],
        shed: Dict[Tuple[str, str], int],
        dt: float,
        period: float,
        now: float,
    ) -> bool:
        """Size every bolt of one topology; commit any required scale
        actions.  Returns True when at least one action was committed."""
        acted = False
        topology = self.nimbus.topology(topology_id)
        bolt_names = sorted(c.name for c in topology.bolts)
        for name in bolt_names:
            # Re-fetch per component: an earlier action in this cycle
            # replaced the topology generation.
            topology = self.nimbus.topology(topology_id)
            comp = topology.component(name)
            key = (topology_id, name)
            backlog = run.component_backlog(topology_id, name)
            delta = processed.get(key, 0) - self._last_processed.get(key, 0)
            growth = backlog - self._last_backlog.get(key, 0)
            self._last_backlog[key] = backlog
            # Tuples the shedding policy dropped at this bolt's bounded
            # queue this period were offered demand the queue never saw —
            # without this term a shedding component looks underloaded
            # exactly when it is drowning.  Zero with flow control off.
            shed_delta = shed.get(key, 0) - self._last_shed.get(key, 0)
            arrival_tps = max(0.0, (delta + growth + shed_delta) / dt)
            # Per-task service capacity at the *declared* CPU share —
            # the same contract the scheduler packs against (a task
            # declaring 25 points is guaranteed a quarter core, so plan
            # on a quarter core's worth of tuples/s).
            cpu_ms = comp.profile.cpu_ms_per_tuple
            core_share = comp.cpu_load / _POINTS_PER_CORE
            service_tps = (
                core_share * 1e3 / cpu_ms
                if cpu_ms > 0 and core_share > 0
                else 0.0
            )
            required = required_parallelism(
                arrival_tps,
                service_tps,
                comp.parallelism,
                backlog,
                target_utilisation=self.config.elastic_target_utilisation,
                hysteresis=self.config.elastic_hysteresis,
                min_parallelism=self.config.elastic_min_parallelism,
                max_parallelism=self.config.elastic_max_parallelism,
                drain_period_s=period,
            )
            if required < comp.parallelism:
                # Scale-down patience: shrink only after the requirement
                # held below current for `patience` consecutive periods.
                streak = self._below_streak.get(key, 0) + 1
                self._below_streak[key] = streak
                if streak < self.config.elastic_scale_down_patience:
                    continue
                self._below_streak[key] = 0
            else:
                self._below_streak[key] = 0
                if required == comp.parallelism:
                    continue
            if self._commit_scale(
                run, topology_id, name, required, arrival_tps, backlog, now
            ):
                acted = True
        return acted

    def _commit_scale(
        self,
        run,
        topology_id: str,
        component: str,
        required: int,
        arrival_tps: float,
        backlog: int,
        now: float,
    ) -> bool:
        nimbus = self.nimbus
        topology = nimbus.topology(topology_id)
        current = topology.component(component).parallelism
        new_topology = topology.with_parallelism(component, required)
        if required > current:
            # Scale-up: the active scheduler places just the delta —
            # existing placements survive, quarantined nodes are masked
            # exactly as in Nimbus.schedule_round.
            masked = nimbus._mask_quarantined()
            try:
                topologies = [
                    new_topology if t.topology_id == topology_id else t
                    for t in nimbus.topologies
                ]
                round_info = nimbus.scheduler.run(
                    topologies, nimbus.cluster, dict(nimbus.assignments)
                )
            except SchedulingError as err:
                self.actions_failed.append(
                    (now, f"{topology_id}/{component}: {err}")
                )
                return False
            finally:
                for node in masked:
                    node.recover()
            new_assignment = round_info.assignments[topology_id]
        else:
            # Scale-down needs no scheduler: keep surviving placements,
            # release the removed tasks' reservations.
            current_assignment = nimbus.assignments[topology_id]
            keep = set(new_topology.tasks)
            mapping: Dict[Task, Any] = {
                task: current_assignment.slot_of(task)
                for task in new_topology.tasks
            }
            new_assignment = Assignment(topology_id, mapping)
            for task in topology.tasks:
                if task in keep:
                    continue
                node_id = current_assignment.node_of(task)
                if nimbus.cluster.has_node(node_id):
                    node = nimbus.cluster.node(node_id)
                    if task_label(task) in node.reservations:
                        node.release(task_label(task))
        moved, added, removed = run.rescale(
            topology_id, new_topology, new_assignment
        )
        nimbus._topologies[topology_id] = new_topology
        nimbus.assignments[topology_id] = new_assignment
        churn = moved + added + removed
        self.tasks_moved += churn
        self.decisions.append(
            ElasticDecision(
                time_s=now,
                topology_id=topology_id,
                component=component,
                action="scale-up" if required > current else "scale-down",
                from_parallelism=current,
                to_parallelism=required,
                arrival_tps=arrival_tps,
                backlog_tuples=backlog,
                tasks_moved=churn,
            )
        )
        return True

    # -- rebalance -----------------------------------------------------

    def _node_utilisation(
        self, busy: Dict[str, float], dt: float
    ) -> Dict[str, float]:
        """Busy-core fraction per node over the last control period."""
        util: Dict[str, float] = {}
        for node in self.nimbus.cluster.nodes:
            cores = max(
                1, int(round(node.capacity.cpu / _POINTS_PER_CORE))
            )
            delta = busy.get(node.node_id, 0.0) - self._last_busy.get(
                node.node_id, 0.0
            )
            util[node.node_id] = delta / (cores * dt)
        return util

    def _rebalance_topology(
        self,
        run,
        topology_id: str,
        busy: Dict[str, float],
        dt: float,
        now: float,
    ) -> bool:
        """Move the deepest-queued bolt executor off a saturated node.

        At most one migration per topology per period (bounded churn);
        never onto a dead or quarantined node, and never a spout (their
        identity anchors arrival streams and acker credit).
        """
        nimbus = self.nimbus
        threshold = self.config.elastic_rebalance_threshold
        assignment = nimbus.assignments[topology_id]
        topology = nimbus.topology(topology_id)
        util = self._node_utilisation(busy, dt)
        quarantined = set(nimbus.quarantined)
        hot = [
            node_id
            for node_id in sorted(assignment.nodes)
            if util.get(node_id, 0.0) >= threshold
        ]
        if not hot:
            return False
        hot.sort(key=lambda n: (-util[n], n))
        source = hot[0]
        depths = run.task_queue_depths(topology_id)
        spout_names = {c.name for c in topology.spouts}
        candidates = [
            task
            for task in assignment.tasks_on_node(source)
            if task.component not in spout_names
        ]
        if not candidates:
            return False
        candidates.sort(key=lambda t: (-depths.get(t, 0), t.task_id))
        task = candidates[0]
        demand = topology.task_demand(task)
        targets = [
            node
            for node in nimbus.cluster.alive_nodes
            if node.node_id != source
            and node.node_id not in quarantined
            and util.get(node.node_id, 0.0) < threshold
            and node.can_host(demand)
        ]
        if not targets:
            return False
        targets.sort(key=lambda n: (util.get(n.node_id, 0.0), n.node_id))
        target = targets[0]
        # Reuse the topology's slot on the target when it has one, else
        # open its first worker slot.
        target_slot = next(
            (
                assignment.slot_of(t)
                for t in sorted(assignment.tasks)
                if assignment.node_of(t) == target.node_id
            ),
            target.slots[0],
        )
        mapping = {t: assignment.slot_of(t) for t in assignment.tasks}
        mapping[task] = target_slot
        new_assignment = Assignment(topology_id, mapping)
        # Move the reservation with the task.  Both sides are guarded:
        # fault recovery around crash/rejoin cycles can leave the
        # reservation already released from the source or already
        # present on the target.
        label = task_label(task)
        if nimbus.cluster.has_node(source):
            source_node = nimbus.cluster.node(source)
            if label in source_node.reservations:
                source_node.release(label)
        if label not in target.reservations:
            target.reserve(label, demand)
        moved = run.migrate(topology_id, new_assignment, reason="elastic")
        nimbus.assignments[topology_id] = new_assignment
        self.tasks_moved += moved
        self.decisions.append(
            ElasticDecision(
                time_s=now,
                topology_id=topology_id,
                component=task.component,
                action="rebalance",
                from_parallelism=topology.component(
                    task.component
                ).parallelism,
                to_parallelism=topology.component(
                    task.component
                ).parallelism,
                arrival_tps=0.0,
                backlog_tuples=depths.get(task, 0),
                tasks_moved=moved,
            )
        )
        return True
