"""Topology components: spouts and bolts.

A component is a logical processing operator (Section 2 of the paper).
Besides the Storm programming-model attributes (parallelism, stream
subscriptions), components carry:

* a per-task **resource demand** set through the paper's user API
  (``set_memory_load`` / ``set_cpu_load`` / ``set_bandwidth_load``,
  mirroring Section 5.2's ``setMemoryLoad`` / ``setCPULoad``), consumed by
  the scheduler; and
* an **execution profile** (per-tuple CPU cost, selectivity, tuple size,
  spout emit batching), consumed by the discrete-event simulator.

The two are deliberately separate: the demand is what the *user declares*,
the profile is what the code *actually does*.  Experiments that feed the
scheduler wrong declarations (or none) are how the paper's default-Storm
baseline behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyValidationError
from repro.topology.grouping import Grouping, ShuffleGrouping

__all__ = [
    "ExecutionProfile",
    "StreamSubscription",
    "Component",
    "Spout",
    "Bolt",
    "DEFAULT_MEMORY_LOAD_MB",
    "DEFAULT_CPU_LOAD",
]

#: Storm's defaults when the user declares nothing: 128 MB on-heap memory
#: and 10 CPU points per task (see Apache Storm's RAS defaults, which grew
#: out of this paper).
DEFAULT_MEMORY_LOAD_MB = 128.0
DEFAULT_CPU_LOAD = 10.0


@dataclass(frozen=True)
class ExecutionProfile:
    """What a task actually does per tuple, for the simulator.

    Attributes:
        cpu_ms_per_tuple: CPU milliseconds consumed per input tuple on a
            node with 100 CPU points per core (a full core).  Spouts spend
            this per *emitted* tuple.
        output_ratio: Tuples emitted per tuple consumed (bolt
            selectivity); ignored for spouts and for terminal bolts.
        tuple_bytes: Serialised size of each emitted tuple on the wire.
        emit_batch_tuples: Tuples a spout emits per batch (simulation
            granularity; larger batches simulate faster but coarser).
        max_rate_tps: Optional cap on a spout's emission rate in tuples
            per second per task; ``None`` means "as fast as possible",
            which is how the paper's benchmarks run.
    """

    cpu_ms_per_tuple: float = 0.01
    output_ratio: float = 1.0
    tuple_bytes: int = 128
    emit_batch_tuples: int = 100
    max_rate_tps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cpu_ms_per_tuple < 0:
            raise ValueError("cpu_ms_per_tuple must be >= 0")
        if self.output_ratio < 0:
            raise ValueError("output_ratio must be >= 0")
        if self.tuple_bytes <= 0:
            raise ValueError("tuple_bytes must be positive")
        if self.emit_batch_tuples <= 0:
            raise ValueError("emit_batch_tuples must be positive")
        if self.max_rate_tps is not None and self.max_rate_tps <= 0:
            raise ValueError("max_rate_tps must be positive when set")


@dataclass(frozen=True)
class StreamSubscription:
    """A bolt's subscription to one upstream component's output stream."""

    source: str
    grouping: Grouping


class Component:
    """Base class for spouts and bolts.

    Use :class:`~repro.topology.builder.TopologyBuilder` rather than
    instantiating components directly; the builder wires subscriptions and
    validates the result.
    """

    kind = "component"

    def __init__(
        self,
        name: str,
        parallelism: int = 1,
        profile: Optional[ExecutionProfile] = None,
    ):
        if not name:
            raise TopologyValidationError("component name must be non-empty")
        if parallelism < 1:
            raise TopologyValidationError(
                f"component {name!r}: parallelism must be >= 1, "
                f"got {parallelism}"
            )
        self.name = name
        self.parallelism = parallelism
        self.profile = profile or ExecutionProfile()
        self._memory_load_mb = DEFAULT_MEMORY_LOAD_MB
        self._cpu_load = DEFAULT_CPU_LOAD
        self._bandwidth_load_mbps = 0.0
        self._custom_demand: Optional[ResourceVector] = None
        self.subscriptions: List[StreamSubscription] = []

    # -- the paper's user API (Section 5.2) --------------------------------

    def set_memory_load(self, amount_mb: float) -> "Component":
        """Declare per-task memory demand in megabytes (hard constraint)."""
        if amount_mb < 0:
            raise ValueError("memory load must be >= 0")
        self._memory_load_mb = float(amount_mb)
        return self

    def set_cpu_load(self, amount: float) -> "Component":
        """Declare per-task CPU demand in points (100 = one full core)."""
        if amount < 0:
            raise ValueError("CPU load must be >= 0")
        self._cpu_load = float(amount)
        return self

    def set_bandwidth_load(self, amount_mbps: float) -> "Component":
        """Declare per-task bandwidth demand in Mbps (soft constraint).

        The paper folds bandwidth into the network-distance term rather
        than exposing a setter, but the formulation (Section 4) treats it
        as a first-class soft dimension, so we expose it.
        """
        if amount_mbps < 0:
            raise ValueError("bandwidth load must be >= 0")
        self._bandwidth_load_mbps = float(amount_mbps)
        return self

    def set_profile(self, profile: ExecutionProfile) -> "Component":
        """Attach the simulation execution profile."""
        self.profile = profile
        return self

    def set_resource_demand(self, demand: ResourceVector) -> "Component":
        """Declare the per-task demand as an arbitrary resource vector.

        The paper notes the formulation "can easily be generalized to
        model ... a n-dimensional vector residing in R^n"; this setter is
        that generalisation — pass a vector in any schema (e.g. one with
        a hard GPU dimension) and the scheduler's distance function
        consumes it directly.  Overrides the memory/CPU/bandwidth loads.
        """
        self._custom_demand = demand
        return self

    # -- derived ------------------------------------------------------------

    @property
    def memory_load_mb(self) -> float:
        return self._memory_load_mb

    @property
    def cpu_load(self) -> float:
        return self._cpu_load

    @property
    def bandwidth_load_mbps(self) -> float:
        return self._bandwidth_load_mbps

    def resource_demand(self) -> ResourceVector:
        """Per-task demand vector.

        A custom vector set via :meth:`set_resource_demand` wins;
        otherwise the standard Storm memory/CPU/bandwidth loads apply.
        """
        if self._custom_demand is not None:
            return self._custom_demand
        return ResourceVector.of(
            memory_mb=self._memory_load_mb,
            cpu=self._cpu_load,
            bandwidth_mbps=self._bandwidth_load_mbps,
        )

    @property
    def resident_memory_mb(self) -> float:
        """Actual memory footprint of one task — what the simulator's
        thrash model charges against physical memory."""
        if self._custom_demand is not None:
            return self._custom_demand.get("memory_mb", 0.0)
        return self._memory_load_mb

    def clone(self, parallelism: Optional[int] = None) -> "Component":
        """An independent copy, optionally at a different parallelism.

        Used by :meth:`Topology.with_parallelism` so elastic rescaling
        never mutates the components of the topology it scaled from.
        Groupings are shared (they are stateless templates; the runtime
        instantiates per-edge state via ``Grouping.fresh()``).
        """
        if parallelism is None:
            parallelism = self.parallelism
        dup = self.__class__(self.name, parallelism, self.profile)
        dup._memory_load_mb = self._memory_load_mb
        dup._cpu_load = self._cpu_load
        dup._bandwidth_load_mbps = self._bandwidth_load_mbps
        dup._custom_demand = self._custom_demand
        dup.subscriptions = list(self.subscriptions)
        return dup

    @property
    def is_spout(self) -> bool:
        return self.kind == "spout"

    @property
    def is_bolt(self) -> bool:
        return self.kind == "bolt"

    def __repr__(self) -> str:
        return (
            f"{self.__class__.__name__}({self.name!r}, "
            f"parallelism={self.parallelism})"
        )


class Spout(Component):
    """A stream source.  Spouts have no subscriptions."""

    kind = "spout"


class Bolt(Component):
    """A stream consumer/transformer.  Bolts subscribe to one or more
    upstream streams via groupings."""

    kind = "bolt"

    def subscribe(
        self, source: str, grouping: Optional[Grouping] = None
    ) -> "Bolt":
        """Subscribe this bolt to ``source``'s output stream."""
        if any(sub.source == source for sub in self.subscriptions):
            raise TopologyValidationError(
                f"bolt {self.name!r} already subscribes to {source!r}"
            )
        self.subscriptions.append(
            StreamSubscription(source, grouping or ShuffleGrouping())
        )
        return self
