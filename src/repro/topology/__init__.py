"""Storm programming model: components, groupings, topologies, tasks."""

from repro.topology.builder import BoltDeclarer, SpoutDeclarer, TopologyBuilder
from repro.topology.component import (
    Bolt,
    Component,
    ExecutionProfile,
    Spout,
    StreamSubscription,
)
from repro.topology.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    LocalOrShuffleGrouping,
    ShuffleGrouping,
)
from repro.topology.task import Task, task_label
from repro.topology.topology import Topology
from repro.topology.traversal import (
    bfs_component_order,
    dfs_component_order,
    topological_component_order,
)

__all__ = [
    "AllGrouping",
    "Bolt",
    "BoltDeclarer",
    "Component",
    "ExecutionProfile",
    "FieldsGrouping",
    "GlobalGrouping",
    "Grouping",
    "LocalOrShuffleGrouping",
    "ShuffleGrouping",
    "Spout",
    "SpoutDeclarer",
    "StreamSubscription",
    "Task",
    "Topology",
    "TopologyBuilder",
    "bfs_component_order",
    "dfs_component_order",
    "task_label",
    "topological_component_order",
]
