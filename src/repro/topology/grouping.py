"""Stream groupings.

A grouping decides which task(s) of a consuming component receive each
tuple a producing task emits.  These mirror Apache Storm's built-in
groupings; the simulator calls :meth:`Grouping.route` on every emitted
batch.

Routing is deterministic given the grouping state so simulation runs are
reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Grouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "AllGrouping",
    "GlobalGrouping",
    "LocalOrShuffleGrouping",
]


class Grouping:
    """Base class for stream groupings.

    Subclasses implement :meth:`route`, mapping one emitted batch to the
    indices of the consuming tasks that receive it.  ``key`` is an opaque
    routing key (used by fields grouping); ``local_indices`` is the subset
    of consumer task indices co-located with the producer (used by
    local-or-shuffle).
    """

    #: short name used in repr/reports
    name = "grouping"

    def route(
        self,
        num_tasks: int,
        key: Optional[int] = None,
        local_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[int, ...]:
        raise NotImplementedError

    def fresh(self) -> "Grouping":
        """A copy with reset routing state (one per producer task, so
        round-robin counters are independent)."""
        return self.__class__()

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class ShuffleGrouping(Grouping):
    """Round-robin distribution across consumer tasks (Storm randomises;
    round-robin gives the same uniform load deterministically)."""

    name = "shuffle"

    def __init__(self) -> None:
        self._next = 0

    def route(self, num_tasks, key=None, local_indices=None):
        if num_tasks < 1:
            raise ValueError("cannot route to a component with no tasks")
        idx = self._next % num_tasks
        self._next += 1
        return (idx,)


@dataclass(frozen=True)
class FieldsGrouping(Grouping):
    """Hash partitioning on a tuple field: equal keys always reach the
    same consumer task."""

    fields: Tuple[str, ...] = ("key",)

    name = "fields"

    def route(self, num_tasks, key=None, local_indices=None):
        if num_tasks < 1:
            raise ValueError("cannot route to a component with no tasks")
        if key is None:
            key = 0
        digest = zlib.crc32(repr((self.fields, key)).encode())
        return (digest % num_tasks,)

    def fresh(self) -> "FieldsGrouping":
        return self


class AllGrouping(Grouping):
    """Every consumer task receives a copy of every tuple."""

    name = "all"

    def route(self, num_tasks, key=None, local_indices=None):
        if num_tasks < 1:
            raise ValueError("cannot route to a component with no tasks")
        return tuple(range(num_tasks))


class GlobalGrouping(Grouping):
    """The entire stream goes to the consumer task with the lowest id."""

    name = "global"

    def route(self, num_tasks, key=None, local_indices=None):
        if num_tasks < 1:
            raise ValueError("cannot route to a component with no tasks")
        return (0,)


class LocalOrShuffleGrouping(Grouping):
    """Prefer consumer tasks in the same worker process as the producer,
    falling back to shuffle across all tasks."""

    name = "local_or_shuffle"

    def __init__(self) -> None:
        self._next = 0

    def route(self, num_tasks, key=None, local_indices=None):
        if num_tasks < 1:
            raise ValueError("cannot route to a component with no tasks")
        if local_indices:
            candidates = sorted(local_indices)
        else:
            candidates = list(range(num_tasks))
        idx = candidates[self._next % len(candidates)]
        self._next += 1
        return (idx,)
