"""Tasks — the scheduling unit.

A task is one parallel instance of a component (Section 2: "a Storm job
that is an instantiation of a Spout or Bolt").  In Apache Storm tasks are
grouped into executors (threads) which are grouped into worker processes;
this reproduction uses the common production configuration of one task
per executor, so the task is both the unit of parallelism and the unit of
scheduling, and worker processes (slots) remain the unit of placement
locality.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Task", "task_label"]


@dataclass(frozen=True, order=True)
class Task:
    """One parallel instance of a component.

    Attributes:
        task_id: Globally unique integer id within the topology (Storm
            numbers tasks across all components).
        topology_id: Owning topology's id.
        component: Component name this task instantiates.
        instance: Index of this task within its component
            (``0 .. parallelism-1``).
    """

    topology_id: str
    component: str
    instance: int
    task_id: int

    def __post_init__(self) -> None:
        # Tasks are dictionary keys throughout the scheduling data path
        # (placements, assignments, reservations); hashing the field
        # tuple on every lookup dominated profile time, so the hash is
        # computed once.  Safe because every field is immutable.
        object.__setattr__(
            self,
            "_hash",
            hash((self.topology_id, self.component, self.instance, self.task_id)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"{self.topology_id}/{self.component}[{self.instance}]"


def task_label(task: Task) -> str:
    """Stable label used for node resource reservations."""
    return f"{task.topology_id}:{task.task_id}"
