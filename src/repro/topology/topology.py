"""The validated topology DAG and its task expansion.

A :class:`Topology` is an immutable, validated view of the components a
:class:`~repro.topology.builder.TopologyBuilder` declared: the component
graph, its expansion into tasks, adjacency queries used by the BFS task
ordering (Algorithm 2/3), and aggregate resource demands used by the
scheduler.

Note Storm topologies are *not* required to be acyclic — the paper calls
out that R-Storm, unlike Aniello et al.'s offline scheduler, handles
cyclic topologies.  Validation therefore checks reachability and
subscription integrity, not acyclicity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyValidationError
from repro.topology.component import Bolt, Component, Spout, StreamSubscription
from repro.topology.task import Task

__all__ = ["Topology"]


class Topology:
    """An immutable Storm topology: components, streams, and tasks.

    Build via :class:`~repro.topology.builder.TopologyBuilder`.
    """

    def __init__(
        self,
        topology_id: str,
        components: Mapping[str, Component],
        task_ids: Optional[Mapping[Tuple[str, int], int]] = None,
    ):
        if not topology_id:
            raise TopologyValidationError("topology id must be non-empty")
        self.topology_id = topology_id
        self._components: Dict[str, Component] = dict(components)
        self._validate()
        self._tasks: Tuple[Task, ...] = self._expand_tasks(task_ids)
        self._tasks_by_component: Dict[str, Tuple[Task, ...]] = {}
        for task in self._tasks:
            self._tasks_by_component.setdefault(task.component, ())
        for name in self._components:
            self._tasks_by_component[name] = tuple(
                t for t in self._tasks if t.component == name
            )
        self._downstream: Dict[str, Tuple[str, ...]] = self._build_downstream()

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        if not self._components:
            raise TopologyValidationError(
                f"topology {self.topology_id!r} has no components"
            )
        spouts = [c for c in self._components.values() if c.is_spout]
        if not spouts:
            raise TopologyValidationError(
                f"topology {self.topology_id!r} has no spouts"
            )
        for comp in self._components.values():
            if comp.is_spout and comp.subscriptions:
                raise TopologyValidationError(
                    f"spout {comp.name!r} cannot subscribe to streams"
                )
            if comp.is_bolt and not comp.subscriptions:
                raise TopologyValidationError(
                    f"bolt {comp.name!r} subscribes to no stream"
                )
            for sub in comp.subscriptions:
                if sub.source not in self._components:
                    raise TopologyValidationError(
                        f"component {comp.name!r} subscribes to unknown "
                        f"source {sub.source!r}"
                    )
                if sub.source == comp.name:
                    raise TopologyValidationError(
                        f"component {comp.name!r} subscribes to itself"
                    )
        unreachable = set(self._components) - set(self._reachable())
        if unreachable:
            raise TopologyValidationError(
                f"components unreachable from any spout: {sorted(unreachable)}"
            )

    def _reachable(self) -> List[str]:
        seen: List[str] = []
        seen_set = set()
        queue = deque(
            sorted(c.name for c in self._components.values() if c.is_spout)
        )
        downstream: Dict[str, List[str]] = {name: [] for name in self._components}
        for comp in self._components.values():
            for sub in comp.subscriptions:
                downstream[sub.source].append(comp.name)
        while queue:
            name = queue.popleft()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            for nxt in sorted(downstream[name]):
                if nxt not in seen_set:
                    queue.append(nxt)
        return seen

    # -- task expansion ------------------------------------------------------

    def _expand_tasks(
        self, task_ids: Optional[Mapping[Tuple[str, int], int]] = None
    ) -> Tuple[Task, ...]:
        tasks: List[Task] = []
        next_id = 1  # Storm task ids start at 1
        seen_ids: Dict[int, Tuple[str, int]] = {}
        for name in sorted(self._components):
            comp = self._components[name]
            for instance in range(comp.parallelism):
                if task_ids is None:
                    task_id = next_id
                    next_id += 1
                else:
                    try:
                        task_id = task_ids[(name, instance)]
                    except KeyError:
                        raise TopologyValidationError(
                            f"task_ids missing entry for "
                            f"({name!r}, {instance})"
                        ) from None
                    if task_id in seen_ids:
                        raise TopologyValidationError(
                            f"task id {task_id} assigned to both "
                            f"{seen_ids[task_id]} and ({name!r}, {instance})"
                        )
                    seen_ids[task_id] = (name, instance)
                tasks.append(
                    Task(
                        topology_id=self.topology_id,
                        component=name,
                        instance=instance,
                        task_id=task_id,
                    )
                )
        return tuple(tasks)

    def with_parallelism(
        self, component_name: str, parallelism: int
    ) -> "Topology":
        """A rescaled copy with ``component_name`` at ``parallelism``.

        The elastic controller's task-identity contract: tasks that
        survive the rescale — every ``(component, instance)`` pair present
        in both topologies — keep their task ids, so live assignments,
        node reservation labels, and in-flight tuple trees remain valid.
        Added instances get fresh ids past the current maximum (Storm
        never reuses task ids within a topology generation either).

        Components are cloned, never mutated: the original topology is
        untouched, so cached schedules keyed on it stay correct.
        """
        current = self.component(component_name)
        if parallelism < 1:
            raise TopologyValidationError(
                f"component {component_name!r}: parallelism must be >= 1, "
                f"got {parallelism}"
            )
        if parallelism == current.parallelism:
            return self
        new_components = {
            name: comp.clone(
                parallelism if name == component_name else None
            )
            for name, comp in self._components.items()
        }
        task_ids = {
            (t.component, t.instance): t.task_id
            for t in self._tasks
            if t.component != component_name or t.instance < parallelism
        }
        next_id = max(t.task_id for t in self._tasks) + 1
        for instance in range(current.parallelism, parallelism):
            task_ids[(component_name, instance)] = next_id
            next_id += 1
        return Topology(self.topology_id, new_components, task_ids=task_ids)

    def _build_downstream(self) -> Dict[str, Tuple[str, ...]]:
        downstream: Dict[str, List[str]] = {name: [] for name in self._components}
        for comp in sorted(self._components):
            for sub in self._components[comp].subscriptions:
                downstream[sub.source].append(comp)
        return {name: tuple(sorted(targets)) for name, targets in downstream.items()}

    # -- component access ------------------------------------------------------

    @property
    def components(self) -> Dict[str, Component]:
        return dict(self._components)

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise TopologyValidationError(
                f"no component {name!r} in topology {self.topology_id!r}"
            ) from None

    @property
    def spouts(self) -> List[Spout]:
        return [c for c in self._components.values() if c.is_spout]

    @property
    def bolts(self) -> List[Bolt]:
        return [c for c in self._components.values() if c.is_bolt]

    @property
    def sinks(self) -> List[Component]:
        """Components with no downstream subscribers — the "output bolts"
        whose rates define topology throughput in the paper's evaluation."""
        return [
            self._components[name]
            for name in sorted(self._components)
            if not self._downstream[name]
        ]

    def downstream_of(self, name: str) -> Tuple[str, ...]:
        """Component names subscribing to ``name``'s stream."""
        self.component(name)
        return self._downstream[name]

    def upstream_of(self, name: str) -> Tuple[str, ...]:
        """Component names whose streams ``name`` subscribes to."""
        comp = self.component(name)
        return tuple(sub.source for sub in comp.subscriptions)

    def neighbours_of(self, name: str) -> Tuple[str, ...]:
        """Undirected adjacency — Algorithm 2's ``com.neighbor`` walks
        both stream directions so siblings behind a join are still
        visited."""
        adjacent = set(self.downstream_of(name)) | set(self.upstream_of(name))
        return tuple(sorted(adjacent))

    def edges(self) -> List[Tuple[str, str, StreamSubscription]]:
        """All (source, target, subscription) stream edges."""
        out = []
        for comp in sorted(self._components):
            for sub in self._components[comp].subscriptions:
                out.append((sub.source, comp, sub))
        return out

    # -- task access -------------------------------------------------------

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    def tasks_of(self, component: str) -> Tuple[Task, ...]:
        self.component(component)
        return self._tasks_by_component[component]

    def task_by_id(self, task_id: int) -> Task:
        for task in self._tasks:
            if task.task_id == task_id:
                return task
        raise TopologyValidationError(
            f"no task id {task_id} in topology {self.topology_id!r}"
        )

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    # -- resources ------------------------------------------------------------

    def task_demand(self, task: Task) -> ResourceVector:
        """Declared per-task resource demand (the scheduler's input)."""
        return self.component(task.component).resource_demand()

    def total_demand(self) -> ResourceVector:
        """Sum of declared demand over all tasks."""
        total = ResourceVector.of()
        for task in self._tasks:
            total = total + self.task_demand(task)
        return total

    def __repr__(self) -> str:
        return (
            f"Topology({self.topology_id!r}, components={len(self._components)}, "
            f"tasks={len(self._tasks)})"
        )
