"""The validated topology DAG and its task expansion.

A :class:`Topology` is an immutable, validated view of the components a
:class:`~repro.topology.builder.TopologyBuilder` declared: the component
graph, its expansion into tasks, adjacency queries used by the BFS task
ordering (Algorithm 2/3), and aggregate resource demands used by the
scheduler.

Note Storm topologies are *not* required to be acyclic — the paper calls
out that R-Storm, unlike Aniello et al.'s offline scheduler, handles
cyclic topologies.  Validation therefore checks reachability and
subscription integrity, not acyclicity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyValidationError
from repro.topology.component import Bolt, Component, Spout, StreamSubscription
from repro.topology.task import Task

__all__ = ["Topology"]


class Topology:
    """An immutable Storm topology: components, streams, and tasks.

    Build via :class:`~repro.topology.builder.TopologyBuilder`.
    """

    def __init__(
        self,
        topology_id: str,
        components: Mapping[str, Component],
    ):
        if not topology_id:
            raise TopologyValidationError("topology id must be non-empty")
        self.topology_id = topology_id
        self._components: Dict[str, Component] = dict(components)
        self._validate()
        self._tasks: Tuple[Task, ...] = self._expand_tasks()
        self._tasks_by_component: Dict[str, Tuple[Task, ...]] = {}
        for task in self._tasks:
            self._tasks_by_component.setdefault(task.component, ())
        for name in self._components:
            self._tasks_by_component[name] = tuple(
                t for t in self._tasks if t.component == name
            )
        self._downstream: Dict[str, Tuple[str, ...]] = self._build_downstream()

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        if not self._components:
            raise TopologyValidationError(
                f"topology {self.topology_id!r} has no components"
            )
        spouts = [c for c in self._components.values() if c.is_spout]
        if not spouts:
            raise TopologyValidationError(
                f"topology {self.topology_id!r} has no spouts"
            )
        for comp in self._components.values():
            if comp.is_spout and comp.subscriptions:
                raise TopologyValidationError(
                    f"spout {comp.name!r} cannot subscribe to streams"
                )
            if comp.is_bolt and not comp.subscriptions:
                raise TopologyValidationError(
                    f"bolt {comp.name!r} subscribes to no stream"
                )
            for sub in comp.subscriptions:
                if sub.source not in self._components:
                    raise TopologyValidationError(
                        f"component {comp.name!r} subscribes to unknown "
                        f"source {sub.source!r}"
                    )
                if sub.source == comp.name:
                    raise TopologyValidationError(
                        f"component {comp.name!r} subscribes to itself"
                    )
        unreachable = set(self._components) - set(self._reachable())
        if unreachable:
            raise TopologyValidationError(
                f"components unreachable from any spout: {sorted(unreachable)}"
            )

    def _reachable(self) -> List[str]:
        seen: List[str] = []
        seen_set = set()
        queue = deque(
            sorted(c.name for c in self._components.values() if c.is_spout)
        )
        downstream: Dict[str, List[str]] = {name: [] for name in self._components}
        for comp in self._components.values():
            for sub in comp.subscriptions:
                downstream[sub.source].append(comp.name)
        while queue:
            name = queue.popleft()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            for nxt in sorted(downstream[name]):
                if nxt not in seen_set:
                    queue.append(nxt)
        return seen

    # -- task expansion ------------------------------------------------------

    def _expand_tasks(self) -> Tuple[Task, ...]:
        tasks: List[Task] = []
        next_id = 1  # Storm task ids start at 1
        for name in sorted(self._components):
            comp = self._components[name]
            for instance in range(comp.parallelism):
                tasks.append(
                    Task(
                        topology_id=self.topology_id,
                        component=name,
                        instance=instance,
                        task_id=next_id,
                    )
                )
                next_id += 1
        return tuple(tasks)

    def _build_downstream(self) -> Dict[str, Tuple[str, ...]]:
        downstream: Dict[str, List[str]] = {name: [] for name in self._components}
        for comp in sorted(self._components):
            for sub in self._components[comp].subscriptions:
                downstream[sub.source].append(comp)
        return {name: tuple(sorted(targets)) for name, targets in downstream.items()}

    # -- component access ------------------------------------------------------

    @property
    def components(self) -> Dict[str, Component]:
        return dict(self._components)

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise TopologyValidationError(
                f"no component {name!r} in topology {self.topology_id!r}"
            ) from None

    @property
    def spouts(self) -> List[Spout]:
        return [c for c in self._components.values() if c.is_spout]

    @property
    def bolts(self) -> List[Bolt]:
        return [c for c in self._components.values() if c.is_bolt]

    @property
    def sinks(self) -> List[Component]:
        """Components with no downstream subscribers — the "output bolts"
        whose rates define topology throughput in the paper's evaluation."""
        return [
            self._components[name]
            for name in sorted(self._components)
            if not self._downstream[name]
        ]

    def downstream_of(self, name: str) -> Tuple[str, ...]:
        """Component names subscribing to ``name``'s stream."""
        self.component(name)
        return self._downstream[name]

    def upstream_of(self, name: str) -> Tuple[str, ...]:
        """Component names whose streams ``name`` subscribes to."""
        comp = self.component(name)
        return tuple(sub.source for sub in comp.subscriptions)

    def neighbours_of(self, name: str) -> Tuple[str, ...]:
        """Undirected adjacency — Algorithm 2's ``com.neighbor`` walks
        both stream directions so siblings behind a join are still
        visited."""
        adjacent = set(self.downstream_of(name)) | set(self.upstream_of(name))
        return tuple(sorted(adjacent))

    def edges(self) -> List[Tuple[str, str, StreamSubscription]]:
        """All (source, target, subscription) stream edges."""
        out = []
        for comp in sorted(self._components):
            for sub in self._components[comp].subscriptions:
                out.append((sub.source, comp, sub))
        return out

    # -- task access -------------------------------------------------------

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    def tasks_of(self, component: str) -> Tuple[Task, ...]:
        self.component(component)
        return self._tasks_by_component[component]

    def task_by_id(self, task_id: int) -> Task:
        for task in self._tasks:
            if task.task_id == task_id:
                return task
        raise TopologyValidationError(
            f"no task id {task_id} in topology {self.topology_id!r}"
        )

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    # -- resources ------------------------------------------------------------

    def task_demand(self, task: Task) -> ResourceVector:
        """Declared per-task resource demand (the scheduler's input)."""
        return self.component(task.component).resource_demand()

    def total_demand(self) -> ResourceVector:
        """Sum of declared demand over all tasks."""
        total = ResourceVector.of()
        for task in self._tasks:
            total = total + self.task_demand(task)
        return total

    def __repr__(self) -> str:
        return (
            f"Topology({self.topology_id!r}, components={len(self._components)}, "
            f"tasks={len(self._tasks)})"
        )
