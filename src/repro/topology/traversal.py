"""Breadth-first topology traversal — Algorithm 2 of the paper.

R-Storm orders components by BFS from the spouts so that adjacent
(communicating) components appear in close succession in the ordering,
which the task-selection interleaving (Algorithm 3) then turns into
physical co-location.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Sequence

from repro.errors import TopologyValidationError
from repro.topology.topology import Topology

__all__ = ["bfs_component_order", "dfs_component_order", "topological_component_order"]


def bfs_component_order(
    topology: Topology, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """Breadth-first ordering of component names (Algorithm 2).

    Traversal starts from the spouts (the paper: "we start traversing the
    topology starting from the spouts since the performance of spout(s)
    impacts the performance of the whole topology") and walks the
    *undirected* component adjacency, so cyclic topologies and join
    siblings are handled.

    Args:
        topology: The topology to traverse.
        roots: Override the starting components (defaults to all spouts,
            in name order).

    Returns:
        Every component reachable from the roots, each exactly once, in
        BFS order.
    """
    if roots is None:
        root_names = sorted(s.name for s in topology.spouts)
    else:
        root_names = list(roots)
        for name in root_names:
            topology.component(name)  # raises on unknown roots
    if not root_names:
        raise TopologyValidationError("BFS traversal needs at least one root")

    visited: List[str] = []
    seen = set()
    queue = deque()
    for root in root_names:
        if root not in seen:
            queue.append(root)
            seen.add(root)
            visited.append(root)
    while queue:
        current = queue.popleft()
        for neighbour in topology.neighbours_of(current):
            if neighbour not in seen:
                seen.add(neighbour)
                visited.append(neighbour)
                queue.append(neighbour)
    return visited


def dfs_component_order(
    topology: Topology, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """Depth-first alternative ordering (ablation baseline for the BFS
    choice called out in DESIGN.md)."""
    if roots is None:
        root_names = sorted(s.name for s in topology.spouts)
    else:
        root_names = list(roots)
        for name in root_names:
            topology.component(name)
    if not root_names:
        raise TopologyValidationError("DFS traversal needs at least one root")

    visited: List[str] = []
    seen = set()

    def visit(name: str) -> None:
        seen.add(name)
        visited.append(name)
        for neighbour in topology.neighbours_of(name):
            if neighbour not in seen:
                visit(neighbour)

    for root in root_names:
        if root not in seen:
            visit(root)
    return visited


def topological_component_order(topology: Topology) -> List[str]:
    """Kahn topological order over the directed stream graph (second
    ablation baseline).  Falls back to BFS order for cyclic topologies,
    which have no topological order."""
    in_degree = {name: 0 for name in topology.components}
    for _, target, _ in topology.edges():
        in_degree[target] += 1
    queue = deque(sorted(n for n, d in in_degree.items() if d == 0))
    order: List[str] = []
    while queue:
        name = queue.popleft()
        order.append(name)
        for target in topology.downstream_of(name):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                queue.append(target)
    if len(order) != len(in_degree):
        return bfs_component_order(topology)
    return order
