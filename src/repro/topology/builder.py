"""TopologyBuilder — the fluent construction API.

Mirrors Apache Storm's ``TopologyBuilder``/declarer pattern, including the
paper's resource-declaration calls (Section 5.2)::

    builder = TopologyBuilder("word-count")
    spout = builder.set_spout("words", parallelism=10)
    spout.set_memory_load(1024.0).set_cpu_load(50.0)
    counter = builder.set_bolt("count", parallelism=4)
    counter.fields_grouping("words", fields=("word",))
    topology = builder.build()
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import TopologyValidationError
from repro.topology.component import Bolt, ExecutionProfile, Spout
from repro.topology.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    LocalOrShuffleGrouping,
    ShuffleGrouping,
)
from repro.topology.topology import Topology

__all__ = ["TopologyBuilder", "SpoutDeclarer", "BoltDeclarer"]


class SpoutDeclarer:
    """Fluent handle for configuring a declared spout."""

    def __init__(self, spout: Spout):
        self._spout = spout

    def set_memory_load(self, amount_mb: float) -> "SpoutDeclarer":
        self._spout.set_memory_load(amount_mb)
        return self

    def set_cpu_load(self, amount: float) -> "SpoutDeclarer":
        self._spout.set_cpu_load(amount)
        return self

    def set_bandwidth_load(self, amount_mbps: float) -> "SpoutDeclarer":
        self._spout.set_bandwidth_load(amount_mbps)
        return self

    def set_profile(self, profile: ExecutionProfile) -> "SpoutDeclarer":
        self._spout.set_profile(profile)
        return self

    @property
    def component(self) -> Spout:
        return self._spout


class BoltDeclarer:
    """Fluent handle for configuring a declared bolt and wiring its
    stream subscriptions."""

    def __init__(self, bolt: Bolt):
        self._bolt = bolt

    # -- resource API --------------------------------------------------------

    def set_memory_load(self, amount_mb: float) -> "BoltDeclarer":
        self._bolt.set_memory_load(amount_mb)
        return self

    def set_cpu_load(self, amount: float) -> "BoltDeclarer":
        self._bolt.set_cpu_load(amount)
        return self

    def set_bandwidth_load(self, amount_mbps: float) -> "BoltDeclarer":
        self._bolt.set_bandwidth_load(amount_mbps)
        return self

    def set_profile(self, profile: ExecutionProfile) -> "BoltDeclarer":
        self._bolt.set_profile(profile)
        return self

    # -- grouping API ------------------------------------------------------

    def grouping(self, source: str, grouping: Grouping) -> "BoltDeclarer":
        self._bolt.subscribe(source, grouping)
        return self

    def shuffle_grouping(self, source: str) -> "BoltDeclarer":
        return self.grouping(source, ShuffleGrouping())

    def fields_grouping(
        self, source: str, fields: Tuple[str, ...] = ("key",)
    ) -> "BoltDeclarer":
        return self.grouping(source, FieldsGrouping(tuple(fields)))

    def all_grouping(self, source: str) -> "BoltDeclarer":
        return self.grouping(source, AllGrouping())

    def global_grouping(self, source: str) -> "BoltDeclarer":
        return self.grouping(source, GlobalGrouping())

    def local_or_shuffle_grouping(self, source: str) -> "BoltDeclarer":
        return self.grouping(source, LocalOrShuffleGrouping())

    @property
    def component(self) -> Bolt:
        return self._bolt


class TopologyBuilder:
    """Declare spouts and bolts, then :meth:`build` a validated
    :class:`~repro.topology.topology.Topology`."""

    def __init__(self, topology_id: str):
        if not topology_id:
            raise TopologyValidationError("topology id must be non-empty")
        self.topology_id = topology_id
        self._components: Dict[str, object] = {}

    def _check_fresh(self, name: str) -> None:
        if name in self._components:
            raise TopologyValidationError(
                f"duplicate component name {name!r} in topology "
                f"{self.topology_id!r}"
            )

    def set_spout(
        self,
        name: str,
        parallelism: int = 1,
        profile: Optional[ExecutionProfile] = None,
    ) -> SpoutDeclarer:
        """Declare a spout with the given parallelism hint."""
        self._check_fresh(name)
        spout = Spout(name, parallelism=parallelism, profile=profile)
        self._components[name] = spout
        return SpoutDeclarer(spout)

    def set_bolt(
        self,
        name: str,
        parallelism: int = 1,
        profile: Optional[ExecutionProfile] = None,
    ) -> BoltDeclarer:
        """Declare a bolt with the given parallelism hint."""
        self._check_fresh(name)
        bolt = Bolt(name, parallelism=parallelism, profile=profile)
        self._components[name] = bolt
        return BoltDeclarer(bolt)

    def build(self) -> Topology:
        """Validate and freeze the declared graph."""
        return Topology(self.topology_id, self._components)
