"""Streaming tail-percentile estimation (t-digest).

End-to-end tuple latencies under open-loop load are exactly the metric
that must *not* be summarised by a mean: past saturation the p999 grows
orders of magnitude faster than the p50.  Storing every sample is out —
an overload run acks millions of batches — so :class:`TailDigest`
maintains a bounded set of centroids using the t-digest construction
(Dunning & Ertl): centroid sizes are capped by a scale function that is
steep near ``q=0``/``q=1``, so tail quantiles stay accurate while the
middle of the distribution is compressed aggressively.

Two properties matter for this repo and are guaranteed here:

* **Determinism.**  The merge is the buffered/sorted variant (no
  randomised merge direction): identical input sequences produce
  identical centroids, so cached reports and fresh runs agree byte for
  byte.
* **Small-sample exactness.**  Until the first compression (fewer than
  ``buffer_size`` samples) quantiles are computed exactly from the
  sorted samples with numpy-style linear interpolation, which is what
  the unit tests pin against ``numpy.percentile``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["TailDigest"]

#: Default compression δ: ~2*δ centroids after a merge.  500 keeps the
#: relative rank error at the p999 well under the test tolerances while
#: a digest stays a few KB.
_DEFAULT_COMPRESSION = 200.0

#: Samples buffered between merges; also the exact-mode threshold.
_DEFAULT_BUFFER = 2048


class TailDigest:
    """A deterministic merging t-digest over non-negative samples.

    Args:
        compression: The δ parameter; higher = more centroids = more
            accurate (and larger).
        buffer_size: Samples accumulated before each merge pass; while
            total samples stay below this, quantiles are exact.
    """

    __slots__ = ("compression", "buffer_size", "_buffer", "_means",
                 "_weights", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        compression: float = _DEFAULT_COMPRESSION,
        buffer_size: int = _DEFAULT_BUFFER,
    ):
        if compression < 20:
            raise ValueError("compression must be >= 20")
        if buffer_size < 16:
            raise ValueError("buffer_size must be >= 16")
        self.compression = float(compression)
        self.buffer_size = int(buffer_size)
        self._buffer: List[float] = []
        self._means: List[float] = []
        self._weights: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingestion -------------------------------------------------------

    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # A single NaN would poison the running sum (mean becomes
            # NaN forever) and break the sorted-merge invariant (NaN
            # compares false against everything); inf skews the
            # min/max-clamped tail interpolation.  Reject loudly.
            raise ValueError(f"samples must be finite, got {value!r}")
        self._buffer.append(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= self.buffer_size:
            self._compress()

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @classmethod
    def merged(
        cls,
        digests: Sequence["TailDigest"],
        compression: float = _DEFAULT_COMPRESSION,
        buffer_size: int = _DEFAULT_BUFFER,
    ) -> "TailDigest":
        """Deterministically merge several digests into a new one.

        Source centroids are fed into one merge pass as weighted
        samples, so the result depends only on the input digests (not
        on call order side effects — sources are never mutated).  While
        every source is still exact and the combined sample count fits
        one buffer, the merged digest stays exact too; per-tenant
        rollups over a handful of per-topology digests therefore match
        the sample-level ground truth.
        """
        out = cls(compression=compression, buffer_size=buffer_size)
        pairs: List[Tuple[float, float]] = []
        for digest in digests:
            if digest is None or digest._count == 0:
                continue
            pairs.extend(zip(digest._means, digest._weights))
            pairs.extend((value, 1.0) for value in digest._buffer)
            out._count += digest._count
            out._sum += digest._sum
            if digest._min < out._min:
                out._min = digest._min
            if digest._max > out._max:
                out._max = digest._max
        if not pairs:
            return out
        if len(pairs) < out.buffer_size and all(w == 1.0 for _, w in pairs):
            out._buffer = [mean for mean, _ in pairs]
            return out
        out._merge_pairs(sorted(pairs))
        return out

    # -- views -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def compressed(self) -> bool:
        """Whether any merge has happened (exact mode is over)."""
        return bool(self._means)

    def centroid_count(self) -> int:
        return len(self._means)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Exact (numpy ``linear`` interpolation) until the first
        compression; centroid interpolation clamped to the observed
        min/max afterwards.  An empty digest returns ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        if not self._means:
            return self._exact_quantile(q)
        if self._buffer:
            self._compress()
        return self._centroid_quantile(q)

    def quantiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        return tuple(self.quantile(q) for q in qs)

    # -- internals -------------------------------------------------------

    def _exact_quantile(self, q: float) -> float:
        ordered = sorted(self._buffer)
        if len(ordered) == 1:
            return ordered[0]
        # numpy's default 'linear' interpolation: rank h = q * (n - 1).
        h = q * (len(ordered) - 1)
        lo = int(math.floor(h))
        hi = int(math.ceil(h))
        if lo == hi:
            return ordered[lo]
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (h - lo)

    def _scale(self, q: float) -> float:
        # The k1 scale function: k(q) = δ/(2π) · asin(2q − 1).  Steep at
        # the extremes, so tail centroids stay near-singleton.
        return self.compression * math.asin(2.0 * q - 1.0) / (2.0 * math.pi)

    def _compress(self) -> None:
        if not self._buffer:
            return
        pairs = sorted(
            [(m, w) for m, w in zip(self._means, self._weights)]
            + [(v, 1.0) for v in self._buffer]
        )
        self._buffer.clear()
        self._merge_pairs(pairs)

    def _merge_pairs(self, pairs: List[Tuple[float, float]]) -> None:
        """Rebuild the centroid list from sorted (mean, weight) pairs."""
        total = float(sum(w for _, w in pairs))
        means: List[float] = []
        weights: List[float] = []
        cur_mean, cur_weight = pairs[0]
        done = 0.0  # weight fully merged into emitted centroids
        for mean, weight in pairs[1:]:
            q0 = done / total
            q1 = (done + cur_weight + weight) / total
            if self._scale(q1) - self._scale(q0) <= 1.0:
                # Weighted-mean update keeps the centroid exact for the
                # samples it absorbs.
                cur_weight += weight
                cur_mean += (mean - cur_mean) * weight / cur_weight
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                done += cur_weight
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights

    def _centroid_quantile(self, q: float) -> float:
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        target = q * self._count
        # Cumulative weight at each centroid's midpoint; centroids are
        # sorted, so a linear scan finds the straddling pair.
        cum = 0.0
        prev_mid = 0.0
        prev_mean = self._min
        for mean, weight in zip(means, weights):
            mid = cum + weight / 2.0
            if target < mid:
                span = mid - prev_mid
                if span <= 0:
                    return mean
                frac = (target - prev_mid) / span
                return prev_mean + (mean - prev_mean) * frac
            cum += weight
            prev_mid = mid
            prev_mean = mean
        # Above the last midpoint: interpolate toward the observed max.
        span = self._count - prev_mid
        if span <= 0:
            return self._max
        frac = (target - prev_mid) / span
        value = prev_mean + (self._max - prev_mean) * frac
        return min(value, self._max)
