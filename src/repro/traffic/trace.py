"""Arrival traces: record a run's traffic, replay it exactly.

An open-loop run logs every batch arrival — which spout task it hit,
when, how many tuples, and the resolved routing key.  The log freezes
into an :class:`ArrivalTrace`, which can be saved to a compact binary
format and later fed back through the DES via :class:`TraceReplay`:
the replayed run sees byte-identical traffic, so two schedulers (or two
code versions) can be compared against *the same* stochastic sample
rather than two draws from the same distribution.

Binary format (little-endian)::

    magic  b"RTRC1\\n"
    u32    header length
    bytes  JSON header {"sources": [[topology, component, instance]...],
                        "records": N}
    N x    record: u16 source index, f64 time_s, u32 tuples, i64 key
                   (key -1 encodes "no key")

Traces are frozen dataclasses built from flat tuples, so — like every
other configuration object here — they are hashable, picklable, and
canonicalise into stable cache keys: a replay unit is cacheable like
any other simulation unit.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.traffic.arrivals import ArrivalProcess, Source

__all__ = ["ArrivalTrace", "TraceReplay"]

_MAGIC = b"RTRC1\n"
_HEADER_LEN = struct.Struct("<I")
_RECORD = struct.Struct("<Hdiq")

#: One trace record: (source index, time_s, tuples, key; -1 = no key).
TraceRecord = Tuple[int, float, int, int]


@dataclass(frozen=True)
class ArrivalTrace:
    """An immutable log of every arrival in one run.

    Attributes:
        sources: Distinct spout tasks seen, as ``(topology_id,
            component, instance)`` triples; records refer to them by
            index to keep the format compact.
        records: ``(source_index, time_s, tuples, key)`` in arrival
            order; ``key == -1`` means the arrival carried no routing
            key.
    """

    sources: Tuple[Source, ...]
    records: Tuple[TraceRecord, ...]

    def __post_init__(self) -> None:
        for idx, _time, tuples, _key in self.records:
            if not 0 <= idx < len(self.sources):
                raise ConfigError(
                    f"trace record references unknown source index {idx}"
                )
            if tuples < 1:
                raise ConfigError("trace records must carry >= 1 tuple")

    @classmethod
    def from_log(
        cls,
        log: Sequence[Tuple[Source, float, int, Optional[int]]],
    ) -> "ArrivalTrace":
        """Freeze a runtime arrival log (source, time, tuples, key)."""
        sources: List[Source] = []
        index: Dict[Source, int] = {}
        records: List[TraceRecord] = []
        for source, time_s, tuples, key in log:
            idx = index.get(source)
            if idx is None:
                idx = index[source] = len(sources)
                sources.append(source)
            records.append(
                (idx, float(time_s), int(tuples), -1 if key is None else int(key))
            )
        return cls(sources=tuple(sources), records=tuple(records))

    # -- views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def total_tuples(self) -> int:
        return sum(tuples for _, _, tuples, _ in self.records)

    def span_s(self) -> float:
        """Time of the last arrival (0.0 for an empty trace)."""
        return max((t for _, t, _, _ in self.records), default=0.0)

    def for_source(
        self, source: Source
    ) -> List[Tuple[float, int, Optional[int]]]:
        """This task's arrivals as ``(time, tuples, key)`` triples."""
        try:
            idx = self.sources.index(source)
        except ValueError:
            return []
        return [
            (time_s, tuples, None if key == -1 else key)
            for rec_idx, time_s, tuples, key in self.records
            if rec_idx == idx
        ]

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        header = json.dumps(
            {"sources": [list(s) for s in self.sources],
             "records": len(self.records)},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(_HEADER_LEN.pack(len(header)))
            handle.write(header)
            pack = _RECORD.pack
            for record in self.records:
                handle.write(pack(*record))

    @classmethod
    def load(cls, path) -> "ArrivalTrace":
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise ConfigError(f"{path}: not an arrival trace file")
            (header_len,) = _HEADER_LEN.unpack(handle.read(_HEADER_LEN.size))
            header = json.loads(handle.read(header_len).decode())
            sources = tuple(
                (str(t), str(c), int(i)) for t, c, i in header["sources"]
            )
            count = int(header["records"])
            size = _RECORD.size
            unpack = _RECORD.unpack
            records = []
            for _ in range(count):
                chunk = handle.read(size)
                if len(chunk) != size:
                    raise ConfigError(f"{path}: truncated arrival trace")
                records.append(unpack(chunk))
        return cls(sources=sources, records=tuple(records))


@dataclass(frozen=True)
class TraceReplay(ArrivalProcess):
    """Replay a recorded trace through the DES.

    Each spout task receives exactly its recorded arrivals (times,
    batch sizes *and* keys); tasks absent from the trace receive
    nothing.  Streams are finite — the run goes quiet when the trace
    is exhausted.
    """

    trace: ArrivalTrace

    def __post_init__(self) -> None:
        if not isinstance(self.trace, ArrivalTrace):
            raise ConfigError("TraceReplay needs an ArrivalTrace")

    def stream(self, rng, batch_tuples, source=None):
        if source is None:
            raise ConfigError(
                "TraceReplay requires the runtime to pass the task source"
            )
        for time_s, tuples, key in self.trace.for_source(source):
            yield (time_s, tuples, key)

    def mean_rate_tps(self) -> float:
        span = self.trace.span_s()
        if span <= 0:
            return 0.0
        return self.trace.total_tuples() / span / max(1, len(self.trace.sources))
