"""Open-loop traffic generation: arrival processes, key skew, traces.

See ``docs/traffic.md``.  The package is consumed through
``SimulationConfig``: set ``arrival_process`` (and optionally
``arrival_keys``) and the runtime switches the topology's spouts from
closed-loop self-pacing to externally offered load.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstOverlay,
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    derive_stream_seed,
)
from repro.traffic.keys import KeyGenerator, UniformKeys, ZipfKeys
from repro.traffic.percentiles import TailDigest
from repro.traffic.trace import ArrivalTrace, TraceReplay

__all__ = [
    "ArrivalProcess",
    "ArrivalTrace",
    "BurstOverlay",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "KeyGenerator",
    "MMPPArrivals",
    "PoissonArrivals",
    "TailDigest",
    "TraceReplay",
    "UniformKeys",
    "ZipfKeys",
    "derive_stream_seed",
]
