"""Open-loop arrival processes.

The paper's benchmarks (and figs 8-13 here) run *closed-loop*: spouts
emit as fast as CPU and the acker credit allow, so offered load adapts
to whatever the placement sustains.  Real traffic does not adapt — DRS
(Fu et al.) models a stream job as a queueing network facing an
exogenous arrival rate — and the difference only matters past
saturation, which is exactly where R-Storm's placements are claimed to
win.  This module supplies the exogenous part: composable processes
that generate per-spout-task batch arrivals on the DES clock.

The contract:

* ``process.stream(rng, batch_tuples, source)`` yields ``(time_s,
  tuples, key)`` triples with non-decreasing times, where ``key`` is a
  routing key for fields groupings (``None`` = let the runtime's
  configured :class:`~repro.traffic.keys.KeyGenerator`, if any, assign
  one).  Streams are infinite except for trace replays.
* All randomness comes from the passed ``rng`` (a ``random.Random``);
  the runtime derives one per spout task from
  ``SimulationConfig.arrival_seed`` via :func:`derive_stream_seed`, so
  runs are reproducible and tasks are independent.
* ``rate_tps`` figures are tuples/second **per spout task**; a
  topology's offered load is the per-task rate times its spout count.

Processes are frozen dataclasses so they hash into the experiment
result cache (``stable_token`` canonicalises them by field) and travel
to worker processes by value.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "BurstOverlay",
    "derive_stream_seed",
]

#: A stream element: (absolute time s, tuples in batch, routing key).
Arrival = Tuple[float, int, Optional[int]]

#: Task identity threaded into streams: (topology_id, component, instance).
Source = Tuple[str, str, int]


def derive_stream_seed(seed: int, *parts: object) -> int:
    """A stable per-stream seed: sha256 over the run seed and the task
    identity, so every spout task gets an independent, reproducible
    substream regardless of Python hash randomisation."""
    digest = hashlib.sha256(repr((int(seed),) + parts).encode())
    return int.from_bytes(digest.digest()[:8], "big")


class ArrivalProcess:
    """Base class for arrival processes (see module docstring)."""

    def stream(
        self, rng, batch_tuples: int, source: Optional[Source] = None
    ) -> Iterator[Arrival]:
        raise NotImplementedError

    def mean_rate_tps(self) -> float:
        """Long-run offered load in tuples/second per spout task."""
        raise NotImplementedError


def _check_rate(rate_tps: float, name: str = "rate_tps") -> None:
    if rate_tps <= 0:
        raise ConfigError(f"{name} must be positive, got {rate_tps}")


def _check_batch(batch_tuples: int) -> None:
    if batch_tuples < 1:
        raise ConfigError(
            f"batch_tuples must be >= 1, got {batch_tuples}"
        )


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Perfectly paced arrivals: one batch every ``batch/rate`` seconds.

    The open-loop analogue of a rate-capped closed-loop spout; zero
    variance makes it the reference process for exactness tests.
    """

    rate_tps: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_tps)

    def stream(self, rng, batch_tuples, source=None):
        _check_batch(batch_tuples)
        interval = batch_tuples / self.rate_tps
        n = 1
        while True:
            yield (n * interval, batch_tuples, None)
            n += 1

    def mean_rate_tps(self) -> float:
        return self.rate_tps


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: batch inter-arrival times are exponential
    with mean ``batch/rate`` — the M in M/G/1, and the null hypothesis
    of every traffic model here."""

    rate_tps: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_tps)

    def stream(self, rng, batch_tuples, source=None):
        _check_batch(batch_tuples)
        lam = self.rate_tps / batch_tuples  # batches per second
        now = 0.0
        expovariate = rng.expovariate
        while True:
            now += expovariate(lam)
            yield (now, batch_tuples, None)

    def mean_rate_tps(self) -> float:
        return self.rate_tps


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson process: a hidden semi-Markov state
    selects the instantaneous Poisson rate.

    The classic burstiness model for aggregated traffic: dwell in state
    ``i`` for an exponential time with mean ``mean_dwell_s[i]``, emit
    Poisson arrivals at ``rates_tps[i]`` meanwhile, then jump according
    to row ``i`` of ``transition`` (a row-stochastic matrix; self-loops
    allowed).  Poisson memorylessness lets each dwell segment be
    sampled independently without conditioning on the previous one.
    """

    rates_tps: Tuple[float, ...]
    mean_dwell_s: Tuple[float, ...]
    transition: Tuple[Tuple[float, ...], ...]
    start_state: int = 0

    def __post_init__(self) -> None:
        n = len(self.rates_tps)
        if n == 0:
            raise ConfigError("MMPP needs at least one state")
        if len(self.mean_dwell_s) != n or len(self.transition) != n:
            raise ConfigError(
                "MMPP rates_tps, mean_dwell_s and transition must have "
                "matching dimensions"
            )
        if all(rate <= 0 for rate in self.rates_tps):
            raise ConfigError("MMPP needs at least one positive rate")
        if any(rate < 0 for rate in self.rates_tps):
            raise ConfigError("MMPP rates must be >= 0")
        if any(dwell <= 0 for dwell in self.mean_dwell_s):
            raise ConfigError("MMPP dwell times must be positive")
        for i, row in enumerate(self.transition):
            if len(row) != n:
                raise ConfigError(f"MMPP transition row {i} has wrong length")
            if any(p < 0 for p in row):
                raise ConfigError("MMPP transition probabilities must be >= 0")
            if abs(sum(row) - 1.0) > 1e-9:
                raise ConfigError(
                    f"MMPP transition row {i} must sum to 1, got {sum(row)}"
                )
        if not 0 <= self.start_state < n:
            raise ConfigError("MMPP start_state out of range")

    def segments(self, rng) -> Iterator[Tuple[int, float, float]]:
        """The modulating chain: yields ``(state, start_s, end_s)``
        dwell segments forever.  Exposed so the occupancy property test
        can observe the chain directly."""
        state = self.start_state
        now = 0.0
        while True:
            dwell = rng.expovariate(1.0 / self.mean_dwell_s[state])
            yield (state, now, now + dwell)
            now += dwell
            u = rng.random()
            acc = 0.0
            row = self.transition[state]
            nxt = len(row) - 1
            for j, p in enumerate(row):
                acc += p
                if u < acc:
                    nxt = j
                    break
            state = nxt

    def occupancy(self) -> Tuple[float, ...]:
        """Long-run fraction of time spent in each state.

        Power-iterates the embedded jump chain to its stationary
        distribution π, then weights by mean dwell:
        ``occ_i = π_i d_i / Σ_j π_j d_j`` — the semi-Markov occupancy
        the property tests compare empirical dwell fractions against.
        """
        n = len(self.rates_tps)
        pi = [1.0 / n] * n
        for _ in range(500):
            nxt = [0.0] * n
            for i, weight in enumerate(pi):
                row = self.transition[i]
                for j in range(n):
                    nxt[j] += weight * row[j]
            if max(abs(a - b) for a, b in zip(pi, nxt)) < 1e-14:
                pi = nxt
                break
            pi = nxt
        weighted = [p * d for p, d in zip(pi, self.mean_dwell_s)]
        total = sum(weighted)
        return tuple(w / total for w in weighted)

    def stream(self, rng, batch_tuples, source=None):
        _check_batch(batch_tuples)
        rates = self.rates_tps
        for state, start, end in self.segments(rng):
            rate = rates[state]
            if rate <= 0:
                continue
            lam = rate / batch_tuples
            now = start + rng.expovariate(lam)
            while now < end:
                yield (now, batch_tuples, None)
                now += rng.expovariate(lam)

    def mean_rate_tps(self) -> float:
        return sum(
            occ * rate for occ, rate in zip(self.occupancy(), self.rates_tps)
        )


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """A non-homogeneous Poisson process with a sinusoidal daily rate.

    ``rate(t) = (daily_tuples / day_s) * (1 + amplitude *
    sin(2π (t - phase_s) / day_s))`` — which integrates *exactly* to
    ``daily_tuples`` over any full day, the invariant the property
    tests assert.  Sampled by thinning against the peak rate, the
    standard exact method for non-homogeneous Poisson processes.
    """

    daily_tuples: float
    day_s: float = 86400.0
    amplitude: float = 0.5
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.daily_tuples <= 0:
            raise ConfigError("daily_tuples must be positive")
        if self.day_s <= 0:
            raise ConfigError("day_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError("amplitude must be in [0, 1)")

    def rate_at(self, t: float) -> float:
        base = self.daily_tuples / self.day_s
        phase = 2.0 * math.pi * (t - self.phase_s) / self.day_s
        return base * (1.0 + self.amplitude * math.sin(phase))

    def stream(self, rng, batch_tuples, source=None):
        _check_batch(batch_tuples)
        peak = (self.daily_tuples / self.day_s) * (1.0 + self.amplitude)
        lam = peak / batch_tuples
        now = 0.0
        expovariate = rng.expovariate
        uniform = rng.random
        while True:
            now += expovariate(lam)
            # Thinning: accept a candidate with probability rate/peak.
            if uniform() * peak <= self.rate_at(now):
                yield (now, batch_tuples, None)

    def mean_rate_tps(self) -> float:
        return self.daily_tuples / self.day_s


@dataclass(frozen=True)
class BurstOverlay(ArrivalProcess):
    """A base process plus periodic Poisson burst storms.

    Every ``period_s`` a burst window of ``burst_s`` opens (the first at
    ``offset_s``) during which extra Poisson arrivals at
    ``burst_rate_tps`` are merged into the base stream — flash crowds
    over steady background traffic.
    """

    base: ArrivalProcess
    burst_rate_tps: float
    period_s: float
    burst_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.base, ArrivalProcess):
            raise ConfigError("BurstOverlay.base must be an ArrivalProcess")
        _check_rate(self.burst_rate_tps, "burst_rate_tps")
        if self.period_s <= 0:
            raise ConfigError("period_s must be positive")
        if not 0 < self.burst_s <= self.period_s:
            raise ConfigError("burst_s must be in (0, period_s]")
        if self.offset_s < 0:
            raise ConfigError("offset_s must be >= 0")

    def _burst_stream(self, rng, batch_tuples) -> Iterator[Arrival]:
        lam = self.burst_rate_tps / batch_tuples
        k = 0
        while True:
            start = self.offset_s + k * self.period_s
            end = start + self.burst_s
            now = start + rng.expovariate(lam)
            while now < end:
                yield (now, batch_tuples, None)
                now += rng.expovariate(lam)
            k += 1

    def stream(self, rng, batch_tuples, source=None):
        _check_batch(batch_tuples)
        # Two independent substreams with a fixed derivation order, so
        # the merge is deterministic for a given rng.
        import random as _random

        base_rng = _random.Random(rng.getrandbits(64))
        burst_rng = _random.Random(rng.getrandbits(64))
        base = self.base.stream(base_rng, batch_tuples, source=source)
        burst = self._burst_stream(burst_rng, batch_tuples)
        a = next(base, None)
        b = next(burst, None)
        while a is not None or b is not None:
            if b is None or (a is not None and a[0] <= b[0]):
                yield a
                a = next(base, None)
            else:
                yield b
                b = next(burst, None)

    def mean_rate_tps(self) -> float:
        duty = self.burst_s / self.period_s
        return self.base.mean_rate_tps() + self.burst_rate_tps * duty
