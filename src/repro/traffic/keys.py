"""Routing-key generators for fields-grouped streams.

A fields grouping hashes a tuple's key to pick the consuming task, so
the key *distribution* decides how evenly load lands across executors.
Closed-loop runs route on the batch's root id (effectively uniform);
under open-loop traffic the key stream is configurable, and a Zipf
distribution — the empirical shape of almost every real key space
(words, users, pages) — concentrates load on a few hot executors,
which is the skew scenario the overload experiment measures.

Generators are frozen dataclasses for the same reason the arrival
processes are: they ride inside ``SimulationConfig`` and must hash into
stable cache keys.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigError

__all__ = ["KeyGenerator", "UniformKeys", "ZipfKeys"]


class KeyGenerator:
    """Base class: yields an infinite stream of integer routing keys."""

    def stream(self, rng) -> Iterator[int]:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformKeys(KeyGenerator):
    """Keys drawn uniformly from ``[0, num_keys)`` — the no-skew
    baseline a Zipf run is compared against."""

    num_keys: int

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ConfigError("num_keys must be >= 1")

    def stream(self, rng):
        n = self.num_keys
        randrange = rng.randrange
        while True:
            yield randrange(n)


@dataclass(frozen=True)
class ZipfKeys(KeyGenerator):
    """Zipf-distributed keys: key ``k`` has weight ``1/(k+1)^exponent``,
    so key 0 is the hottest.  Sampled by inverse-CDF lookup on the
    precomputed cumulative weights (exact, no rejection)."""

    num_keys: int
    exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ConfigError("num_keys must be >= 1")
        if self.exponent <= 0:
            raise ConfigError("exponent must be positive")

    def _cumulative(self) -> List[float]:
        weights = [
            (rank + 1) ** -self.exponent for rank in range(self.num_keys)
        ]
        return list(itertools.accumulate(weights))

    def probabilities(self) -> Tuple[float, ...]:
        """The normalised key distribution (for tests and docs)."""
        cum = self._cumulative()
        total = cum[-1]
        probs = []
        prev = 0.0
        for value in cum:
            probs.append((value - prev) / total)
            prev = value
        return tuple(probs)

    def hot_share(self, top: int = 1) -> float:
        """Fraction of traffic carried by the ``top`` hottest keys."""
        if top < 1:
            raise ConfigError("top must be >= 1")
        probs = self.probabilities()
        return sum(probs[: min(top, len(probs))])

    def stream(self, rng):
        cum = self._cumulative()
        total = cum[-1]
        uniform = rng.random
        search = bisect.bisect_left
        while True:
            yield search(cum, uniform() * total)
