"""Evaluation workloads: micro-benchmarks and Yahoo! production topologies."""

from repro.workloads.generator import TopologySpec, random_topology
from repro.workloads.micro import (
    VARIANTS,
    diamond_topology,
    linear_topology,
    micro_topology,
    star_topology,
)
from repro.workloads.yahoo import pageload_topology, processing_topology

__all__ = [
    "TopologySpec",
    "VARIANTS",
    "diamond_topology",
    "linear_topology",
    "micro_topology",
    "pageload_topology",
    "processing_topology",
    "random_topology",
    "star_topology",
]
