"""Random topology generation.

Layered DAGs with randomised parallelism, groupings, resource
declarations and execution profiles — used by the scheduling-overhead
benchmark, the fuzz tests (any generated topology must schedule and
simulate without violating invariants), and as a starting point for
users' own synthetic workloads.

Generation is fully deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile
from repro.topology.topology import Topology

__all__ = ["TopologySpec", "random_topology"]


@dataclass(frozen=True)
class TopologySpec:
    """Bounds for random topology generation.

    Attributes:
        min_layers/max_layers: Bolt layers below the spout layer.
        min_width/max_width: Components per layer.
        max_parallelism: Per-component parallelism upper bound.
        memory_choices_mb: Declared per-task memory options.
        cpu_choices: Declared per-task CPU-point options.
        cpu_ms_range: Per-tuple CPU cost bounds.
        tuple_bytes_choices: Emitted tuple sizes.
        allow_skip_connections: Let a bolt also subscribe to layers more
            than one step up (diamond-ish shapes).
    """

    min_layers: int = 1
    max_layers: int = 4
    min_width: int = 1
    max_width: int = 3
    max_parallelism: int = 6
    memory_choices_mb: Tuple[float, ...] = (64.0, 128.0, 256.0, 512.0)
    cpu_choices: Tuple[float, ...] = (5.0, 10.0, 20.0, 35.0)
    cpu_ms_range: Tuple[float, float] = (0.01, 0.5)
    tuple_bytes_choices: Tuple[int, ...] = (64, 128, 256)
    allow_skip_connections: bool = True

    def __post_init__(self) -> None:
        if self.min_layers < 1 or self.max_layers < self.min_layers:
            raise ConfigError("invalid layer bounds")
        if self.min_width < 1 or self.max_width < self.min_width:
            raise ConfigError("invalid width bounds")
        if self.max_parallelism < 1:
            raise ConfigError("max_parallelism must be >= 1")


def random_topology(
    seed: int,
    spec: Optional[TopologySpec] = None,
    name: Optional[str] = None,
) -> Topology:
    """Generate a random layered topology, deterministically in ``seed``."""
    spec = spec or TopologySpec()
    rng = random.Random(seed)
    builder = TopologyBuilder(name or f"random-{seed}")

    def profile(is_spout: bool) -> ExecutionProfile:
        return ExecutionProfile(
            cpu_ms_per_tuple=rng.uniform(*spec.cpu_ms_range),
            output_ratio=1.0 if is_spout else rng.choice((0.5, 0.8, 1.0, 1.5)),
            tuple_bytes=rng.choice(spec.tuple_bytes_choices),
            emit_batch_tuples=rng.choice((50, 100)),
            max_rate_tps=rng.choice((None, 500.0, 2000.0)) if is_spout else None,
        )

    def declare(declarer) -> None:
        declarer.set_memory_load(rng.choice(spec.memory_choices_mb))
        declarer.set_cpu_load(rng.choice(spec.cpu_choices))

    num_spouts = rng.randint(1, spec.max_width)
    layers: List[List[str]] = [[]]
    for i in range(num_spouts):
        spout_name = f"spout-{i}"
        declarer = builder.set_spout(
            spout_name,
            parallelism=rng.randint(1, spec.max_parallelism),
            profile=profile(is_spout=True),
        )
        declare(declarer)
        layers[0].append(spout_name)

    num_layers = rng.randint(spec.min_layers, spec.max_layers)
    for layer_idx in range(num_layers):
        width = rng.randint(spec.min_width, spec.max_width)
        layer: List[str] = []
        for j in range(width):
            bolt_name = f"bolt-{layer_idx}-{j}"
            declarer = builder.set_bolt(
                bolt_name,
                parallelism=rng.randint(1, spec.max_parallelism),
                profile=profile(is_spout=False),
            )
            declare(declarer)
            sources = _pick_sources(rng, layers, spec)
            for source in sources:
                _subscribe(rng, declarer, source)
            layer.append(bolt_name)
        layers.append(layer)
    return builder.build()


def _pick_sources(rng, layers: Sequence[Sequence[str]], spec) -> List[str]:
    previous = list(layers[-1])
    count = rng.randint(1, min(2, len(previous)))
    sources = rng.sample(previous, count)
    if spec.allow_skip_connections and len(layers) > 1 and rng.random() < 0.3:
        upper = [name for layer in layers[:-1] for name in layer]
        extra = rng.choice(upper)
        if extra not in sources:
            sources.append(extra)
    return sources


def _subscribe(rng, declarer, source: str) -> None:
    choice = rng.random()
    if choice < 0.6:
        declarer.shuffle_grouping(source)
    elif choice < 0.8:
        declarer.fields_grouping(source, fields=("key",))
    elif choice < 0.9:
        declarer.global_grouping(source)
    else:
        declarer.local_or_shuffle_grouping(source)
