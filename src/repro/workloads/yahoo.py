"""The Yahoo! production topologies (paper Figure 11).

The paper evaluates two topologies "used by Yahoo! for processing
event-level data from their advertising platforms to allow for near
real-time analytical reporting".  It publishes the DAG layouts
(Figure 11) but not the component code, so — per the reproduction's
substitution policy (DESIGN.md) — these builders transcribe the layout
shapes and give every component a synthetic profile calibrated so the
*mechanisms* the paper reports reproduce:

* **PageLoad** (Figure 11a): spout -> deserialise -> filter -> enrich ->
  aggregate.  The deserialiser needs most of a core per task; the default
  scheduler's round-robin lands deserialisers next to other busy tasks
  and over-utilises those machines, while R-Storm, fed the declared
  loads, never over-commits a node (Figure 12a: ~+50%).
* **Processing** (Figure 11b): spout -> parse -> validate -> join ->
  score -> write.  Besides busy CPU profiles, the session joiner holds a
  large in-memory session store (1.3 GB/task).  Alone on the paper's
  12-node cluster that is harmless; but on the shared 24-node cluster the
  default scheduler stacks every joiner task onto a machine already
  hosting PageLoad aggregators, blowing through physical memory — those
  machines thrash and the Processing topology grinds to a near halt
  while PageLoad merely degrades (Figure 13).

Both topologies run with Storm's default *unbounded* spout pending
(``max_spout_pending=None``) and rate-capped spouts, which is how
production topologies consuming from an upstream feed behave.
"""

from __future__ import annotations

from typing import Optional

from repro.simulation.config import SimulationConfig
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile
from repro.topology.topology import Topology

__all__ = [
    "pageload_topology",
    "processing_topology",
    "yahoo_simulation_config",
]


def yahoo_simulation_config(duration_s: float = 120.0) -> SimulationConfig:
    """Simulation knobs the Yahoo experiments run under: no spout flow
    control (Storm's default), event-sized serialisation costs, and the
    queue-overflow worker-crash model enabled."""
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        max_spout_pending=None,
        serde_ms_per_tuple=0.1,
        queue_overflow_batches=500,
        worker_restart_s=10.0,
    )


def pageload_topology(name: str = "pageload") -> Topology:
    """The PageLoad analytics topology (Figure 11a shape), 20 tasks."""
    builder = TopologyBuilder(name)

    spout = builder.set_spout(
        "ad-event-spout",
        4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.35,
            tuple_bytes=512,
            emit_batch_tuples=100,
            max_rate_tps=1400.0,
        ),
    )
    spout.set_memory_load(900.0).set_cpu_load(50.0)

    deser = builder.set_bolt(
        "event-deserializer",
        6,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.6, tuple_bytes=384, emit_batch_tuples=100
        ),
    )
    deser.shuffle_grouping("ad-event-spout")
    deser.set_memory_load(900.0).set_cpu_load(90.0)

    flt = builder.set_bolt(
        "event-filter",
        2,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.1,
            output_ratio=0.8,
            tuple_bytes=384,
            emit_batch_tuples=100,
        ),
    )
    flt.shuffle_grouping("event-deserializer")
    flt.set_memory_load(900.0).set_cpu_load(30.0)

    enrich = builder.set_bolt(
        "geo-enricher",
        2,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.25, tuple_bytes=448, emit_batch_tuples=100
        ),
    )
    enrich.shuffle_grouping("event-filter")
    enrich.set_memory_load(900.0).set_cpu_load(60.0)

    agg = builder.set_bolt(
        "page-aggregator",
        10,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.4, tuple_bytes=128, emit_batch_tuples=100
        ),
    )
    agg.fields_grouping("geo-enricher", fields=("page_id",))
    agg.set_memory_load(900.0).set_cpu_load(30.0)

    return builder.build()


def processing_topology(name: str = "processing") -> Topology:
    """The Processing topology (Figure 11b shape), 24 tasks."""
    builder = TopologyBuilder(name)

    spout = builder.set_spout(
        "stream-spout",
        4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.2,
            tuple_bytes=256,
            emit_batch_tuples=200,
            max_rate_tps=1000.0,
        ),
    )
    spout.set_memory_load(700.0).set_cpu_load(30.0)

    parser = builder.set_bolt(
        "event-parser",
        5,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.6, tuple_bytes=256, emit_batch_tuples=200
        ),
    )
    parser.shuffle_grouping("stream-spout")
    parser.set_memory_load(700.0).set_cpu_load(65.0)

    validator = builder.set_bolt(
        "event-validator",
        5,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.25,
            output_ratio=0.9,
            tuple_bytes=256,
            emit_batch_tuples=200,
        ),
    )
    validator.shuffle_grouping("event-parser")
    validator.set_memory_load(700.0).set_cpu_load(35.0)

    joiner = builder.set_bolt(
        "session-joiner",
        4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.55, tuple_bytes=320, emit_batch_tuples=200
        ),
    )
    joiner.fields_grouping("event-validator", fields=("session_id",))
    joiner.set_memory_load(1200.0).set_cpu_load(65.0)

    scorer = builder.set_bolt(
        "model-scorer",
        4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.55,
            output_ratio=0.5,
            tuple_bytes=128,
            emit_batch_tuples=200,
        ),
    )
    scorer.shuffle_grouping("session-joiner")
    scorer.set_memory_load(700.0).set_cpu_load(65.0)

    writer = builder.set_bolt(
        "stream-writer",
        2,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.1, tuple_bytes=128, emit_batch_tuples=200
        ),
    )
    writer.shuffle_grouping("model-scorer")
    writer.set_memory_load(700.0).set_cpu_load(20.0)

    return builder.build()
