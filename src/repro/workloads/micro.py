"""Micro-benchmark topologies: Linear, Diamond, Star (paper Figure 7).

Each comes in the two configurations of Section 6.3:

* ``network`` — components do very little processing per tuple and emit
  large tuples, so throughput is bounded by network bandwidth/latency
  (Figure 8).
* ``compute`` — components burn significant CPU per tuple and tuples are
  small, so throughput is bounded by computation time (Figures 9 and 10).
  Spout production is capped at the rate one core-quarter sustains, which
  reproduces the paper's observation that "a topology's throughput will
  reach a ceiling at which adding more machines will not improve
  performance".

All resource declarations (the R-Storm user API inputs) are chosen so
that on the paper's 12-node testbed R-Storm packs the Linear, Diamond and
Star topologies onto about 6, 7 and 6 machines respectively, as reported
in Section 6.3.2.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile
from repro.topology.topology import Topology

__all__ = [
    "linear_topology",
    "diamond_topology",
    "star_topology",
    "hotspot_topology",
    "micro_topology",
    "VARIANTS",
]

VARIANTS = ("network", "compute")


def _check_variant(variant: str) -> None:
    if variant not in VARIANTS:
        raise ConfigError(
            f"unknown micro-benchmark variant {variant!r}; pick from {VARIANTS}"
        )


# Network-bound profile: negligible CPU, fat tuples.
_NET_PROFILE = ExecutionProfile(
    cpu_ms_per_tuple=0.005, tuple_bytes=256, emit_batch_tuples=100
)

#: Inter-rack fabric capacity used by the network-bound experiments.  The
#: shared trunk carries 2.5x one NIC: roughly half the default
#: scheduler's traffic crosses racks and contends for it, while R-Storm's
#: rack-local placements never touch it.
NETWORK_BOUND_UPLINK_MBPS = 250.0

# Compute-bound profiles: 1 ms of CPU per tuple, skinny tuples; spouts
# capped at 250 tuples/s per task (a quarter-core's worth at 1 ms/tuple).
_COMPUTE_RATE_TPS = 250.0
_COMPUTE_PROFILE = ExecutionProfile(
    cpu_ms_per_tuple=1.0, tuple_bytes=64, emit_batch_tuples=50
)
_COMPUTE_SPOUT_PROFILE = ExecutionProfile(
    cpu_ms_per_tuple=1.0,
    tuple_bytes=64,
    emit_batch_tuples=50,
    max_rate_tps=_COMPUTE_RATE_TPS,
)


def linear_topology(
    variant: str = "network",
    parallelism: int = 6,
    name: Optional[str] = None,
) -> Topology:
    """Spout -> bolt1 -> bolt2 -> bolt3 (Figure 7a).

    The compute variant declares 25 CPU points per task: 24 tasks x 25
    points = 600 points = 6 fully-packed single-core machines.
    """
    _check_variant(variant)
    builder = TopologyBuilder(name or f"linear-{variant}")
    if variant == "network":
        spout_profile, bolt_profile = _NET_PROFILE, _NET_PROFILE
        memory_mb, cpu_load = 512.0, 15.0
    else:
        spout_profile, bolt_profile = _COMPUTE_SPOUT_PROFILE, _COMPUTE_PROFILE
        memory_mb, cpu_load = 256.0, 25.0
    spout = builder.set_spout("spout", parallelism, profile=spout_profile)
    spout.set_memory_load(memory_mb).set_cpu_load(cpu_load)
    previous = "spout"
    for i in range(1, 4):
        bolt = builder.set_bolt(f"bolt-{i}", parallelism, profile=bolt_profile)
        bolt.shuffle_grouping(previous)
        bolt.set_memory_load(memory_mb).set_cpu_load(cpu_load)
        previous = f"bolt-{i}"
    return builder.build()


def hotspot_topology(
    parallelism: int = 6,
    narrow: int = 2,
    name: Optional[str] = None,
) -> Topology:
    """The Linear compute topology with a narrow, slow middle stage.

    ``spout -> bolt-1 -> bolt-2 -> bolt-3`` where bolt-2 runs at twice
    the per-tuple cost of every other stage with only ``narrow`` tasks —
    a fan-in bottleneck (``parallelism`` producers feed ``narrow``
    consumers).  On the balanced linear topology, single-core nodes
    equalise stage rates via round-robin servicing and backlog only ever
    accumulates at the spout ingress; the hotspot is what makes
    *internal* edges fill, so it is the flow-control experiments'
    workload: the bolt-1 -> bolt-2 edge hits its high watermark first,
    then the stall propagates upstream edge-by-edge to the spouts.

    bolt-2 declares its true appetite (50 points per task), so R-Storm
    provisions it honestly — the bottleneck is structural (not enough
    tasks), which no placement can schedule away.
    """
    if parallelism < 1 or narrow < 1:
        raise ConfigError("hotspot parallelism values must be >= 1")
    slow_profile = ExecutionProfile(
        cpu_ms_per_tuple=2.0, tuple_bytes=64, emit_batch_tuples=50
    )
    builder = TopologyBuilder(name or "hotspot-compute")
    spout = builder.set_spout(
        "spout", parallelism, profile=_COMPUTE_SPOUT_PROFILE
    )
    spout.set_memory_load(256.0).set_cpu_load(25.0)
    bolt1 = builder.set_bolt("bolt-1", parallelism, profile=_COMPUTE_PROFILE)
    bolt1.shuffle_grouping("spout")
    bolt1.set_memory_load(256.0).set_cpu_load(25.0)
    bolt2 = builder.set_bolt("bolt-2", narrow, profile=slow_profile)
    bolt2.shuffle_grouping("bolt-1")
    bolt2.set_memory_load(256.0).set_cpu_load(50.0)
    bolt3 = builder.set_bolt("bolt-3", parallelism, profile=_COMPUTE_PROFILE)
    bolt3.shuffle_grouping("bolt-2")
    bolt3.set_memory_load(256.0).set_cpu_load(25.0)
    return builder.build()


def diamond_topology(
    variant: str = "network",
    branches: int = 2,
    parallelism: int = 5,
    name: Optional[str] = None,
) -> Topology:
    """Spout fanning out to ``branches`` middle bolts, all merging into
    one sink bolt (Figure 7b).  Every middle bolt receives a full copy of
    the spout's stream, so the diamond carries ``branches`` times the
    spout's traffic — which is why its network-bound gains are the
    smallest of the three (the paper reports +30%).

    The compute variant declares 25 CPU points per spout/middle task and
    ``branches`` x 25 per sink task: 15 x 25 + 5 x 50 = 625 points, which
    packs onto about 7 machines, matching Section 6.3.2.
    """
    _check_variant(variant)
    if branches < 1:
        raise ConfigError("diamond needs at least one branch")
    builder = TopologyBuilder(name or f"diamond-{variant}")
    if variant == "network":
        spout_profile, bolt_profile = _NET_PROFILE, _NET_PROFILE
        memory_mb, cpu_load = 512.0, 15.0
    else:
        spout_profile, bolt_profile = _COMPUTE_SPOUT_PROFILE, _COMPUTE_PROFILE
        memory_mb, cpu_load = 256.0, 25.0
    spout = builder.set_spout("spout", parallelism, profile=spout_profile)
    spout.set_memory_load(memory_mb).set_cpu_load(cpu_load)
    for i in range(branches):
        mid = builder.set_bolt(f"mid-{i}", parallelism, profile=bolt_profile)
        mid.shuffle_grouping("spout")
        mid.set_memory_load(memory_mb).set_cpu_load(cpu_load)
    # The sink merges every branch's full stream, so each sink task sees
    # ``branches`` times a middle task's load; its declared CPU reflects
    # that (the compute variant: 3 branches x 25 points = 75 points).
    sink = builder.set_bolt("sink", parallelism, profile=bolt_profile)
    for i in range(branches):
        sink.shuffle_grouping(f"mid-{i}")
    sink.set_memory_load(memory_mb).set_cpu_load(
        cpu_load if variant == "network" else cpu_load * branches
    )
    return builder.build()


def star_topology(
    variant: str = "network",
    arms: int = 2,
    arm_parallelism: int = 6,
    center_parallelism: Optional[int] = None,
    name: Optional[str] = None,
) -> Topology:
    """``arms`` spout components feeding one central bolt that feeds
    ``arms`` sink bolts (Figure 7c).

    In the compute variant the spouts are the heavy components (a full
    core each at their rate cap): the default scheduler's round-robin
    wraps every spout onto a machine already hosting a centre task,
    over-utilising exactly those machines — "a scheduling is created in
    which one of the machines ... gets over utilized in computational
    resources and creates a bottleneck that throttles the overall
    throughput of the Star topology" (Section 6.3.2).
    """
    _check_variant(variant)
    if arms < 1:
        raise ConfigError("star needs at least one arm")
    if center_parallelism is None:
        # The network variant keeps every component at equal parallelism
        # so the BFS sweep packs one task of each component per node (no
        # single NIC becomes a receive hotspot); the compute variant keeps
        # the centre at 8 so declared loads total ~6 machines.
        center_parallelism = arm_parallelism if variant == "network" else 8
    builder = TopologyBuilder(name or f"star-{variant}")
    if variant == "network":
        spout_profile = _NET_PROFILE
        center_profile = _NET_PROFILE
        sink_profile = _NET_PROFILE
        spout_mem, spout_cpu = 512.0, 15.0
        center_mem, center_cpu = 512.0, 15.0
        sink_mem, sink_cpu = 512.0, 15.0
        spout_par, sink_par = arm_parallelism, arm_parallelism
    else:
        spout_profile = ExecutionProfile(
            cpu_ms_per_tuple=4.0,
            tuple_bytes=64,
            emit_batch_tuples=50,
            max_rate_tps=_COMPUTE_RATE_TPS,
        )
        center_profile = ExecutionProfile(
            cpu_ms_per_tuple=2.0, tuple_bytes=64, emit_batch_tuples=50
        )
        sink_profile = ExecutionProfile(
            cpu_ms_per_tuple=0.4, tuple_bytes=64, emit_batch_tuples=50
        )
        # A spout needs a whole core at its rate cap; declaring 100
        # points makes R-Storm give each spout a dedicated machine while
        # the default scheduler, oblivious, stacks centre tasks next to
        # them.
        spout_mem, spout_cpu = 256.0, 100.0
        center_mem, center_cpu = 256.0, 30.0
        sink_mem, sink_cpu = 256.0, 20.0
        spout_par, sink_par = 2, 2
    for i in range(arms):
        spout = builder.set_spout(f"spout-{i}", spout_par, profile=spout_profile)
        spout.set_memory_load(spout_mem).set_cpu_load(spout_cpu)
    center = builder.set_bolt(
        "center", center_parallelism, profile=center_profile
    )
    for i in range(arms):
        center.shuffle_grouping(f"spout-{i}")
    center.set_memory_load(center_mem).set_cpu_load(center_cpu)
    for i in range(arms):
        sink = builder.set_bolt(f"sink-{i}", sink_par, profile=sink_profile)
        sink.shuffle_grouping("center")
        sink.set_memory_load(sink_mem).set_cpu_load(sink_cpu)
    return builder.build()


def micro_topology(kind: str, variant: str = "network") -> Topology:
    """Dispatch helper: ``kind`` in {linear, diamond, star}."""
    builders = {
        "linear": linear_topology,
        "diamond": diamond_topology,
        "star": star_topology,
    }
    if kind not in builders:
        raise ConfigError(
            f"unknown micro-benchmark {kind!r}; pick from {sorted(builders)}"
        )
    return builders[kind](variant=variant)
