"""Scheduling-latency microbenchmark.

Section 3 of the paper motivates the greedy heuristic with a real-time
requirement: "scheduling decisions need to be made in a snappy manner"
because slow rescheduling prolongs downtime after failures.  This
experiment measures wall-clock scheduling latency for all three
schedulers across cluster and topology sizes.  Each repeat is its own
work unit (``trial=n``) so the cache keeps all samples distinct; cached
latencies are the wall-clock measurements of the run that produced the
entry.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builders import uniform_cluster
from repro.cluster.resources import ResourceVector
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, ScheduleUnit, spec
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.topology.builder import TopologyBuilder
from repro.topology.topology import Topology

__all__ = ["run", "make_chain_topology", "make_cluster"]


def make_chain_topology(
    depth: int, parallelism: int, name: str = "chain"
) -> Topology:
    """A linear chain of ``depth`` components at the given parallelism."""
    builder = TopologyBuilder(name)
    builder.set_spout("stage-00", parallelism).set_memory_load(
        128.0
    ).set_cpu_load(10.0)
    for i in range(1, depth):
        bolt = builder.set_bolt(f"stage-{i:02d}", parallelism)
        bolt.shuffle_grouping(f"stage-{i - 1:02d}")
        bolt.set_memory_load(128.0).set_cpu_load(10.0)
    return builder.build()


def make_cluster(num_nodes: int):
    nodes_per_rack = max(1, num_nodes // 2)
    racks = max(1, num_nodes // nodes_per_rack)
    return uniform_cluster(
        nodes_per_rack=nodes_per_rack,
        racks=racks,
        capacity=ResourceVector.of(
            memory_mb=16384.0, cpu=1600.0, bandwidth_mbps=1000.0
        ),
        slots_per_node=4,
    )


#: (cluster nodes, chain depth, parallelism) scales to measure.
SCALES = [
    (12, 4, 6),
    (24, 6, 10),
    (64, 8, 16),
    (128, 10, 32),
]

SCHEDULERS = (
    ("r-storm", RStormScheduler),
    ("default", DefaultScheduler),
    ("aniello-offline", AnielloOfflineScheduler),
)


def run(
    repeats: int = 5,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="overhead",
        title="Scheduler wall-clock latency (ms per full scheduling round)",
    )
    repeats = max(1, repeats)
    units = [
        ScheduleUnit(
            scheduler=spec(factory),
            topologies=(spec(make_chain_topology, depth, parallelism),),
            cluster=spec(make_cluster, num_nodes),
            trial=trial,
            label=f"{num_nodes}n/{name}/trial{trial}",
        )
        for num_nodes, depth, parallelism in SCALES
        for name, factory in SCHEDULERS
        for trial in range(repeats)
    ]
    outcomes = iter(context.run(units))
    for num_nodes, depth, parallelism in SCALES:
        row = {
            "nodes": num_nodes,
            "tasks": depth * parallelism,
        }
        for name, _ in SCHEDULERS:
            samples = [
                next(outcomes).scheduling_latency_s for _ in range(repeats)
            ]
            row[f"{name}_ms"] = round(1e3 * sum(samples) / len(samples), 2)
        result.add_row(**row)
    result.note(
        "All schedulers stay far below Nimbus's 10 s scheduling period, "
        "meeting the paper's snappiness requirement."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
