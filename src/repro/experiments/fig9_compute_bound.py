"""Figures 9 — computation-time-bound micro-benchmark topologies.

Reproduces Section 6.3.2: the same Linear/Diamond/Star layouts configured
to burn significant CPU per tuple.  Supplied with per-component CPU
requirements, R-Storm matches default Storm's throughput while using
roughly half the machines (the paper: 6, 7 and 6 of 12), and for the Star
topology beats it outright because default Storm over-utilises the
machines where its round-robin stacked heavy tasks.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import micro_topology

__all__ = ["run", "compute_bound_units", "PAPER_MACHINES"]

#: Machines the paper reports R-Storm needing (vs 12 for default).
PAPER_MACHINES = {"linear": 6, "diamond": 7, "star": 6}

KINDS = ("linear", "diamond", "star")

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))


def compute_bound_units(config: SimulationConfig):
    """The (kind, scheduler) grid as work units.

    Shared with fig10, which simulates the exact same runs — with a
    cache, the second figure reuses every outcome of the first.
    """
    return [
        SimulationUnit(
            scheduler=spec(factory),
            topologies=(spec(micro_topology, kind, "compute"),),
            cluster=spec(emulab_testbed),
            config=config,
            label=f"fig9:{kind}/{name}",
        )
        for kind in KINDS
        for name, factory in SCHEDULERS
    ]


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="fig9",
        title="Computation-bound micro-benchmarks (tuples per 10 s window)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    units = compute_bound_units(config)
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )
    for kind in KINDS:
        outcomes = {
            name: outcomes_by_label[f"fig9:{kind}/{name}"]
            for name, _ in SCHEDULERS
        }
        topo_id = f"{kind}-compute"
        for name, outcome in outcomes.items():
            result.add_series(
                f"{kind}/{name}", outcome.report.throughput_series(topo_id)
            )
        rstorm, default = outcomes["r-storm"], outcomes["default"]
        r_thr, d_thr = rstorm.throughput(topo_id), default.throughput(topo_id)
        result.add_row(
            topology=kind,
            rstorm_tuples_per_10s=round(r_thr),
            default_tuples_per_10s=round(d_thr),
            throughput_ratio=round(r_thr / d_thr, 2) if d_thr else float("inf"),
            rstorm_nodes=len(rstorm.assignments[topo_id].nodes),
            default_nodes=len(default.assignments[topo_id].nodes),
            paper_rstorm_nodes=PAPER_MACHINES[kind],
            rstorm_max_cpu_overcommit=round(
                rstorm.qualities[topo_id].max_cpu_overcommit, 2
            ),
        )
    result.note(
        "Throughput is input-rate bound, so matching default Storm with "
        "half the machines is the win; for Star, default Storm's "
        "round-robin over-utilises the spout machines and loses outright."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
