"""Figures 9 — computation-time-bound micro-benchmark topologies.

Reproduces Section 6.3.2: the same Linear/Diamond/Star layouts configured
to burn significant CPU per tuple.  Supplied with per-component CPU
requirements, R-Storm matches default Storm's throughput while using
roughly half the machines (the paper: 6, 7 and 6 of 12), and for the Star
topology beats it outright because default Storm over-utilises the
machines where its round-robin stacked heavy tasks.
"""

from __future__ import annotations

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult, run_scheduled
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import micro_topology

__all__ = ["run", "PAPER_MACHINES"]

#: Machines the paper reports R-Storm needing (vs 12 for default).
PAPER_MACHINES = {"linear": 6, "diamond": 7, "star": 6}

KINDS = ("linear", "diamond", "star")


def run(duration_s: float = 120.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="Computation-bound micro-benchmarks (tuples per 10 s window)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    for kind in KINDS:
        outcomes = {}
        for scheduler in (RStormScheduler(), DefaultScheduler()):
            topology = micro_topology(kind, "compute")
            cluster = emulab_testbed()
            outcome = run_scheduled(scheduler, [topology], cluster, config)
            outcomes[scheduler.name] = outcome
            result.add_series(
                f"{kind}/{scheduler.name}",
                outcome.report.throughput_series(topology.topology_id),
            )
        topo_id = f"{kind}-compute"
        rstorm, default = outcomes["r-storm"], outcomes["default"]
        r_thr, d_thr = rstorm.throughput(topo_id), default.throughput(topo_id)
        result.add_row(
            topology=kind,
            rstorm_tuples_per_10s=round(r_thr),
            default_tuples_per_10s=round(d_thr),
            throughput_ratio=round(r_thr / d_thr, 2) if d_thr else float("inf"),
            rstorm_nodes=len(rstorm.assignments[topo_id].nodes),
            default_nodes=len(default.assignments[topo_id].nodes),
            paper_rstorm_nodes=PAPER_MACHINES[kind],
            rstorm_max_cpu_overcommit=round(
                rstorm.qualities[topo_id].max_cpu_overcommit, 2
            ),
        )
    result.note(
        "Throughput is input-rate bound, so matching default Storm with "
        "half the machines is the win; for Star, default Storm's "
        "round-robin over-utilises the spout machines and loses outright."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
