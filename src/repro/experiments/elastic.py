"""Elastic runtime experiment: autoscaling vs static placement.

The overload sweep ("traffic") showed the failure mode of static
resource-aware placement: R-Storm packs tasks to their declared
capacity, so any offered load past 1x has nowhere to go — queues grow
until workers crash, and tail latency runs away.  This experiment
closes the loop: the same Linear compute topology faces ramping and
bursting open-loop traffic with the elastic controller
(:mod:`repro.nimbus.elastic`) either off (static baseline) or on, under
both R-Storm and default scheduling.

Three traffic scenarios, all peaking at 1.5x nominal capacity:

* ``sustained`` — Poisson at a flat 1.5x, the operating point where the
  static R-Storm placement collapses (achieved ratio ~0.66 in the
  traffic sweep);
* ``diurnal``  — a sinusoidal day compressed into the run, mean 1x and
  peak 1.5x, the canonical slow ramp;
* ``burst``    — Poisson 1x background plus periodic 0.5x burst storms,
  the flash-crowd case where adaptation speed matters most.

Reported per (scenario, configuration): offered vs achieved throughput,
p99 arrival→ack latency through the ramp, time-to-adapt (first scale
action), and executor churn (tasks moved + added + removed by the
controller — fault-driven churn would be accounted separately, see
:class:`~repro.faults.monitor.RecoveryReport`).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.overload import BASE_RATE_TPS
from repro.experiments.parallel import ElasticUnit, ExperimentContext, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstOverlay,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workloads.micro import linear_topology

__all__ = ["run", "scenario_units", "SCENARIOS", "CONFIGS", "PEAK_MULTIPLIER"]

#: Peak offered load, as a multiple of the closed-loop nominal rate.
PEAK_MULTIPLIER = 1.5

#: StormConfig overrides that switch the control loop on.  Everything
#: else stays at the documented ``nimbus.elastic.*`` defaults.
ELASTIC_ON: Tuple[Tuple[str, Any], ...] = (("nimbus.elastic.enabled", True),)

#: (label, scheduler factory, storm overrides) — the three columns of
#: the comparison.  The static baseline uses the *same* unit type with
#: elastic left disabled, so both sides share one code path.
CONFIGS = (
    ("static/r-storm", RStormScheduler, ()),
    ("elastic/r-storm", RStormScheduler, ELASTIC_ON),
    ("elastic/default", DefaultScheduler, ELASTIC_ON),
)

SCENARIOS = ("sustained", "diurnal", "burst")


def _arrivals(scenario: str, duration_s: float) -> ArrivalProcess:
    if scenario == "sustained":
        return PoissonArrivals(rate_tps=BASE_RATE_TPS * PEAK_MULTIPLIER)
    if scenario == "diurnal":
        # One full "day" per run: mean 1x, peak (1 + amplitude) = 1.5x
        # a quarter of the way in.
        return DiurnalArrivals(
            daily_tuples=BASE_RATE_TPS * duration_s,
            day_s=duration_s,
            amplitude=PEAK_MULTIPLIER - 1.0,
        )
    if scenario == "burst":
        # 1x background with 0.5x storms half the time: 30 s bursts
        # every 60 s, first opening after the warmup.
        return BurstOverlay(
            base=PoissonArrivals(rate_tps=BASE_RATE_TPS),
            burst_rate_tps=BASE_RATE_TPS * (PEAK_MULTIPLIER - 1.0),
            period_s=60.0,
            burst_s=30.0,
            offset_s=20.0,
        )
    raise ValueError(f"unknown scenario {scenario!r}")


def _scenario_config(scenario: str, duration_s: float) -> SimulationConfig:
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        arrival_process=_arrivals(scenario, duration_s),
    )


def scenario_units(duration_s: float):
    """The (scenario, configuration) grid as cacheable work units."""
    return [
        ElasticUnit(
            scheduler=spec(factory),
            topologies=(spec(linear_topology, "compute"),),
            cluster=spec(emulab_testbed),
            config=_scenario_config(scenario, duration_s),
            storm=storm,
            label=f"elastic:{scenario}/{name}",
        )
        for scenario in SCENARIOS
        for name, factory, storm in CONFIGS
    ]


def _time_to_adapt(outcome) -> Optional[float]:
    """Simulated time of the first committed scale action, if any."""
    for decision in outcome.decisions:
        if decision.action in ("scale-up", "scale-down"):
            return decision.time_s
    return None


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="elastic",
        title=(
            "Elastic runtime: queue-driven autoscaling vs static "
            "placement under ramping and bursting load"
        ),
    )
    units = scenario_units(duration_s)
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )

    topo_id = "linear-compute"
    ratios = {}
    for scenario in SCENARIOS:
        for name, _, _ in CONFIGS:
            outcome = outcomes_by_label[f"elastic:{scenario}/{name}"]
            report = outcome.report
            latency = report.e2e_latency(topo_id)
            adapt = _time_to_adapt(outcome)
            ratios[(scenario, name)] = report.achieved_ratio(topo_id)
            recovery = outcome.recovery[topo_id]
            result.add_row(
                scenario=scenario,
                config=name,
                offered_per_10s=round(report.offered_per_window(topo_id)),
                achieved_per_10s=round(
                    report.average_throughput_per_window(topo_id)
                ),
                achieved_ratio=round(report.achieved_ratio(topo_id), 3),
                e2e_p99_ms=round(latency.p99 * 1e3, 1),
                adapt_s=round(adapt, 1) if adapt is not None else "-",
                churn=recovery.elastic_tasks_moved,
                rescales=recovery.rescales,
                failed=report.failed(topo_id),
                crashes=report.crashes(topo_id),
            )

    # Throughput through the ramp: offered vs static vs elastic.
    for scenario in ("diurnal", "burst"):
        offered = outcomes_by_label[f"elastic:{scenario}/static/r-storm"]
        result.add_series(
            f"{scenario}/offered",
            offered.report.offered_series(topo_id),
        )
        for name in ("static/r-storm", "elastic/r-storm"):
            outcome = outcomes_by_label[f"elastic:{scenario}/{name}"]
            result.add_series(
                f"{scenario}/{name}",
                outcome.report.throughput_series(topo_id),
            )

    static = ratios[("sustained", "static/r-storm")]
    elastic = ratios[("sustained", "elastic/r-storm")]
    gain = elastic / static if static > 0 else float("inf")
    result.note(
        f"At a sustained {PEAK_MULTIPLIER:g}x offered load the elastic "
        f"R-Storm run achieves {elastic:.3f} of offered vs the static "
        f"placement's {static:.3f} — a {gain:.2f}x throughput gain from "
        "scaling bolts to the observed arrival rate instead of the "
        "declared (mean-load) parallelism."
    )
    result.note(
        "time-to-adapt is the simulated time of the first committed "
        "scale action; churn counts tasks moved + added + removed by "
        "the controller (fault-driven moves are accounted separately "
        "and are zero here — no faults are injected)."
    )
    result.note(
        "Both sides of every comparison face identical arrival samples "
        "(streams are seeded by task identity, not placement or "
        "parallelism of downstream bolts), and the static rows run the "
        "very same unit with nimbus.elastic.enabled left false."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
