"""Figure 8 — network-bound micro-benchmark topologies.

Reproduces the paper's Section 6.3.1: Linear, Diamond and Star topologies
configured to do very little per-tuple processing on the two-rack Emulab
cluster, scheduled by R-Storm and by default Storm.  The paper reports
R-Storm winning by about +50% (Linear), +30% (Diamond) and +47% (Star).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import NETWORK_BOUND_UPLINK_MBPS, micro_topology

__all__ = ["run", "PAPER_IMPROVEMENT"]

#: The paper's reported R-Storm throughput improvements (Section 6.3.1).
PAPER_IMPROVEMENT = {"linear": 0.50, "diamond": 0.30, "star": 0.47}

KINDS = ("linear", "diamond", "star")

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    """Run the Figure 8 comparison and return its table/series."""
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="fig8",
        title="Network-bound micro-benchmarks (tuples per 10 s window)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    units = [
        SimulationUnit(
            scheduler=spec(factory),
            topologies=(spec(micro_topology, kind, "network"),),
            cluster=spec(emulab_testbed),
            config=config,
            interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS,
            label=f"{kind}/{name}",
        )
        for kind in KINDS
        for name, factory in SCHEDULERS
    ]
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )
    for kind in KINDS:
        topo_id = f"{kind}-network"
        outcomes = {
            name: outcomes_by_label[f"{kind}/{name}"]
            for name, _ in SCHEDULERS
        }
        for name, outcome in outcomes.items():
            result.add_series(
                f"{kind}/{name}", outcome.report.throughput_series(topo_id)
            )
        rstorm = outcomes["r-storm"]
        default = outcomes["default"]
        r_thr = rstorm.throughput(topo_id)
        d_thr = default.throughput(topo_id)
        improvement = r_thr / d_thr - 1.0 if d_thr else float("inf")
        result.add_row(
            topology=kind,
            rstorm_tuples_per_10s=round(r_thr),
            default_tuples_per_10s=round(d_thr),
            improvement_pct=round(improvement * 100.0, 1),
            paper_pct=round(PAPER_IMPROVEMENT[kind] * 100.0, 1),
            rstorm_nodes=len(rstorm.assignments[topo_id].nodes),
            default_nodes=len(default.assignments[topo_id].nodes),
            rstorm_mean_netdist=round(
                rstorm.qualities[topo_id].mean_network_distance, 2
            ),
            default_mean_netdist=round(
                default.qualities[topo_id].mean_network_distance, 2
            ),
        )
    result.note(
        "R-Storm keeps every hop inside one rack; default Storm's "
        "pseudo-random placement pushes ~half the traffic through the "
        f"shared {NETWORK_BOUND_UPLINK_MBPS:.0f} Mbps inter-rack fabric."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
