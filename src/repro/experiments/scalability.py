"""Scalability beyond the testbed.

The paper closes by arguing R-Storm's concepts apply to any DAG-based
stream processor; this experiment checks the *scheduler* holds up as
clusters and topologies grow well past the 12-node testbed.  For each
scale it measures:

* scheduling latency (must stay far below Nimbus's 10 s period),
* predicted steady-state throughput of the R-Storm vs default placements
  (via the analytical flow model — the DES would take minutes per point
  at these scales, the flow model microseconds),
* placement locality.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.builders import uniform_cluster
from repro.cluster.resources import ResourceVector
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, ScheduleUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.generator import TopologySpec, random_topology

__all__ = ["run", "SCALES"]

#: (racks, nodes per rack, topology seed count)
SCALES: List[Tuple[int, int, int]] = [
    (2, 6, 3),
    (4, 8, 3),
    (8, 16, 3),
]

_SPEC = TopologySpec(
    min_layers=2,
    max_layers=4,
    min_width=2,
    max_width=3,
    max_parallelism=8,
    memory_choices_mb=(128.0, 256.0, 512.0),
    cpu_choices=(10.0, 20.0, 35.0),
)

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))


def run(
    duration_s: float = 0.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    """``duration_s`` is accepted for CLI uniformity and ignored — the
    throughput column comes from the analytical model."""
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="scalability",
        title="Scheduler scalability on growing clusters (flow-model throughput)",
    )
    capacity = ResourceVector.of(
        memory_mb=8192.0, cpu=400.0, bandwidth_mbps=1000.0
    )
    units = [
        ScheduleUnit(
            scheduler=spec(factory),
            topologies=(spec(random_topology, seed, _SPEC),),
            cluster=spec(
                uniform_cluster,
                nodes_per_rack=nodes_per_rack,
                racks=racks,
                capacity=capacity,
            ),
            label=f"{racks}x{nodes_per_rack}/seed{seed}/{name}",
        )
        for racks, nodes_per_rack, seeds in SCALES
        for seed in range(seeds)
        for name, factory in SCHEDULERS
    ]
    outcomes = iter(context.run(units))
    for racks, nodes_per_rack, seeds in SCALES:
        num_nodes = racks * nodes_per_rack
        totals = {"r-storm": 0.0, "default": 0.0}
        latency = {"r-storm": 0.0, "default": 0.0}
        locality = {"r-storm": 0.0, "default": 0.0}
        tasks = 0
        for seed in range(seeds):
            topology = random_topology(seed, _SPEC)
            tasks += topology.num_tasks
            for name, _ in SCHEDULERS:
                outcome = next(outcomes)
                topo_id = topology.topology_id
                latency[name] += outcome.scheduling_latency_s
                totals[name] += outcome.predicted_tps[topo_id]
                locality[name] += outcome.qualities[
                    topo_id
                ].mean_network_distance
        result.add_row(
            nodes=num_nodes,
            tasks=tasks,
            rstorm_ms=round(1e3 * latency["r-storm"] / seeds, 2),
            default_ms=round(1e3 * latency["default"] / seeds, 2),
            rstorm_pred_tps=round(totals["r-storm"] / seeds),
            default_pred_tps=round(totals["default"] / seeds),
            rstorm_mean_netdist=round(locality["r-storm"] / seeds, 2),
            default_mean_netdist=round(locality["default"] / seeds, 2),
        )
    result.note(
        "Throughput is the analytical flow-model prediction averaged over "
        "random topologies; scheduling latency is wall clock (from the "
        "run that produced the cache entry, when cached).  The flow "
        "model ignores latency and queueing, so R-Storm's locality "
        "advantage shows in the netdist column rather than predicted tps "
        "on these resource-rich clusters."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
