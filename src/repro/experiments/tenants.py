"""Multi-tenant SLO scheduling experiment: contention on purpose.

One shared 24-node cluster; 36 single-parallelism Linear compute
topologies submitted over eight Nimbus rounds by four tenant classes
(the "millions of users" setting from the ROADMAP: many small
topologies, one cluster).  The cluster fits 24 of them — a third of the
offered work must wait, which is exactly what weighted-DRF admission,
credit accrual and priority preemption are for:

* ``gold``   — weight 3, priority 2, tight SLO; arrives *last*, when
  the cluster is already full, so it can only get on via preemption;
* ``silver`` — weight 2, priority 1, mid SLO; arrives second-to-last;
* ``bronze`` — weight 1, priority 0, loose SLO; arrives first;
* ``free``   — weight 0.5, priority 0, no SLO; arrives first.

After the admission phase the admitted set runs under open-loop Poisson
traffic at 0.75x each topology's nominal capacity, and the table reports
per-tenant SLO attainment (deferred topologies count as misses — an SLO
cannot be met by not running), the Jain fairness index over weighted
dominant shares, and preemption churn, for R-Storm vs default
placement.  Admission itself is placement-agnostic (it reasons over
aggregate demand), so both schedulers admit the identical set and the
comparison isolates placement quality.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import (
    ExperimentContext,
    FactorySpec,
    TenantUnit,
    spec,
)
from repro.nimbus.tenancy import SLO, Tenant
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.traffic.arrivals import PoissonArrivals
from repro.workloads.micro import _COMPUTE_RATE_TPS, linear_topology

__all__ = ["run", "tenant_units", "TENANTS", "CONFIGS", "SUBMISSIONS"]

#: Offered load per topology, as a fraction of its nominal capacity —
#: high enough that placement quality shows in the tail, low enough
#: that a well-placed topology keeps up.
LOAD_FRACTION = 0.75

#: StormConfig overrides that switch admission on; everything else
#: stays at the documented ``nimbus.tenancy.*`` defaults.
TENANCY_ON: Tuple[Tuple[str, object], ...] = (
    ("nimbus.tenancy.enabled", True),
)

#: (label, scheduler spec) — admission is identical across both, so
#: the comparison isolates placement quality under multi-tenant load.
#: The default scheduler is given the per-topology worker count a real
#: user would request (one per task); left at its "all slots" default
#: it would claim 24 workers per 4-task topology and every admission
#: round would restack the same four nodes.  Even with the honest
#: worker count it stays resource-oblivious: its slot cursor resets
#: every round, so staged admissions pile onto already-loaded nodes.
CONFIGS = (
    ("r-storm", spec(RStormScheduler)),
    ("default", spec(DefaultScheduler, workers_per_topology=4)),
)

#: The four tenant classes.  SLO p99 targets are end-to-end
#: (arrival -> full ack); min_ratio is achieved/offered throughput.
#: Targets sit just above the batching floor a well-placed topology
#: measures at this load (p99 ~1.8-2.6 s end-to-end), so a node-local
#: placement attains them and an overcommitted one does not.
TENANTS: Tuple[Tenant, ...] = (
    Tenant("gold", weight=3.0, priority=2, slo=SLO(p99_ms=3000.0, min_ratio=0.9)),
    Tenant("silver", weight=2.0, priority=1, slo=SLO(p99_ms=4000.0, min_ratio=0.8)),
    Tenant("bronze", weight=1.0, priority=0, slo=SLO(p99_ms=8000.0, min_ratio=0.5)),
    Tenant("free", weight=0.5, priority=0, slo=SLO()),
)

#: Topologies per tenant class — 36 total on a cluster that fits 24.
_CLASS_SIZES = {"gold": 8, "silver": 8, "bronze": 10, "free": 10}

#: Admission rounds in the staged-submission phase.
ROUNDS = 12


def _submission_schedule() -> Tuple[Tuple[int, str, FactorySpec], ...]:
    """(round, tenant, topology spec): bronze/free land first and fill
    the cluster; silver then gold arrive into a full cluster, so their
    admission exercises credits and priority preemption."""
    arrival_rounds = {
        "bronze": (0, 0, 0, 0, 0, 1, 1, 1, 1, 1),
        "free": (0, 0, 0, 0, 0, 1, 1, 1, 1, 1),
        "silver": (2, 2, 2, 2, 3, 3, 3, 3),
        "gold": (3, 3, 3, 3, 4, 4, 4, 4),
    }
    submissions: List[Tuple[int, str, FactorySpec]] = []
    for tenant_id, rounds in arrival_rounds.items():
        assert len(rounds) == _CLASS_SIZES[tenant_id]
        for index, round_index in enumerate(rounds):
            submissions.append(
                (
                    round_index,
                    tenant_id,
                    spec(
                        linear_topology,
                        "compute",
                        parallelism=1,
                        name=f"{tenant_id}-{index}",
                    ),
                )
            )
    submissions.sort(key=lambda item: item[0])
    return tuple(submissions)


SUBMISSIONS = _submission_schedule()


def _traffic_config(duration_s: float) -> SimulationConfig:
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        arrival_process=PoissonArrivals(
            rate_tps=_COMPUTE_RATE_TPS * LOAD_FRACTION
        ),
    )


def tenant_units(duration_s: float) -> List[TenantUnit]:
    """One unit per scheduler, identical tenants/submissions/config."""
    return [
        TenantUnit(
            scheduler=scheduler_spec,
            tenants=TENANTS,
            submissions=SUBMISSIONS,
            cluster=spec(emulab_testbed, nodes_per_rack=12),
            config=_traffic_config(duration_s),
            storm=TENANCY_ON,
            rounds=ROUNDS,
            label=f"tenants:{name}",
        )
        for name, scheduler_spec in CONFIGS
    ]


def _attainment(outcome, tenant: Tenant) -> Tuple[int, int]:
    """(attained, owned): per-topology SLO checks; deferred = miss."""
    owned = [
        topology_id
        for topology_id, owner in outcome.owners.items()
        if owner == tenant.tenant_id
    ]
    attained = 0
    for topology_id in owned:
        if topology_id not in outcome.admitted:
            continue
        report = outcome.report
        p99_ms = report.e2e_latency(topology_id).p99 * 1e3
        ratio = report.achieved_ratio(topology_id)
        if tenant.slo.attained(p99_ms, ratio):
            attained += 1
    return attained, len(owned)


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="tenants",
        title=(
            "Multi-tenant SLO scheduling: weighted-DRF admission, "
            "credits and priority preemption on one shared cluster"
        ),
    )
    units = tenant_units(duration_s)
    outcomes = dict(zip([u.label for u in units], context.run(units)))

    for name, _ in CONFIGS:
        outcome = outcomes[f"tenants:{name}"]
        tenant_rows = outcome.report.tenant_summary(outcome.owners)
        for tenant in TENANTS:
            tenant_id = tenant.tenant_id
            attained, owned = _attainment(outcome, tenant)
            admitted = sum(
                1
                for topology_id in outcome.admitted
                if outcome.owners[topology_id] == tenant_id
            )
            rollup = tenant_rows.get(tenant_id, {})
            result.add_row(
                config=name,
                tenant=tenant_id,
                admitted=f"{admitted}/{owned}",
                slo_attained=f"{attained}/{owned}",
                achieved_ratio=rollup.get("achieved_ratio", 0.0),
                e2e_p99_ms=rollup.get("e2e_p99_ms", 0.0),
                share=round(outcome.shares.get(tenant_id, 0.0), 3),
                credits=round(outcome.credits.get(tenant_id, 0.0), 1),
            )
        result.add_row(
            config=name,
            tenant="(cluster)",
            admitted=f"{len(outcome.admitted)}/{len(outcome.owners)}",
            slo_attained="-",
            achieved_ratio="-",
            e2e_p99_ms="-",
            share=f"jain={outcome.jain:.3f}",
            credits=f"evictions={outcome.preemptions}",
        )

    rstorm = outcomes["tenants:r-storm"]
    default = outcomes["tenants:default"]

    def _total_attained(outcome) -> int:
        return sum(_attainment(outcome, tenant)[0] for tenant in TENANTS)

    result.note(
        f"Admission is placement-agnostic: both schedulers admit the "
        f"same {len(rstorm.admitted)}/{len(rstorm.owners)} topologies "
        f"({len(rstorm.deferred)} deferred) with "
        f"{rstorm.preemptions} priority evictions "
        f"({rstorm.preempted_tasks} tasks displaced), so the rows "
        "compare placement quality alone."
    )
    result.note(
        f"SLO attainment (all tenants): r-storm "
        f"{_total_attained(rstorm)}/{len(rstorm.owners)} vs default "
        f"{_total_attained(default)}/{len(default.owners)}; deferred "
        "topologies count as misses — an SLO cannot be met by not "
        "running."
    )
    result.note(
        f"Jain fairness over weighted dominant shares: r-storm "
        f"{rstorm.jain:.3f}, default {default.jain:.3f} (1.0 = every "
        "tenant holds exactly its weighted entitlement).  gold/silver "
        "arrive last into a full cluster: priority preemption evicts "
        "priority-0 topologies (never same-or-higher priority), and "
        "deferred tenants accrue credits that bias later rounds."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
