"""Figure 10 — CPU utilisation comparison.

The paper compares average CPU utilisation over the machines each
scheduler actually uses during the computation-bound runs: R-Storm's
utilisation is 69% (Linear), 91% (Diamond) and 350% (Star) higher than
default Storm's, because it packs the same work onto about half the
machines and, for Star, because default Storm's throughput collapses and
leaves its machines idle.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.fig9_compute_bound import (
    KINDS,
    SCHEDULERS,
    compute_bound_units,
)
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext
from repro.simulation.config import SimulationConfig

__all__ = ["run", "PAPER_UTIL_IMPROVEMENT"]

#: Paper-reported utilisation improvements.
PAPER_UTIL_IMPROVEMENT = {"linear": 0.69, "diamond": 0.91, "star": 3.50}


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="fig10",
        title="Average CPU utilisation of machines used (compute-bound runs)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    # The exact same work units as fig9 — with a shared cache this figure
    # costs zero fresh simulations after fig9 has run.
    units = compute_bound_units(config)
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )
    for kind in KINDS:
        utils = {
            name: outcomes_by_label[
                f"fig9:{kind}/{name}"
            ].report.topology_cpu_utilisation(f"{kind}-compute")
            for name, _ in SCHEDULERS
        }
        r_util, d_util = utils["r-storm"], utils["default"]
        improvement = r_util / d_util - 1.0 if d_util else float("inf")
        result.add_row(
            topology=kind,
            rstorm_cpu_util=round(r_util, 3),
            default_cpu_util=round(d_util, 3),
            improvement_pct=round(improvement * 100.0, 1),
            paper_pct=round(PAPER_UTIL_IMPROVEMENT[kind] * 100.0, 1),
        )
    result.note(
        "Utilisation is averaged over the machines hosting at least one "
        "task, the population Figure 10 uses."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
