"""Figure 10 — CPU utilisation comparison.

The paper compares average CPU utilisation over the machines each
scheduler actually uses during the computation-bound runs: R-Storm's
utilisation is 69% (Linear), 91% (Diamond) and 350% (Star) higher than
default Storm's, because it packs the same work onto about half the
machines and, for Star, because default Storm's throughput collapses and
leaves its machines idle.
"""

from __future__ import annotations

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult, run_scheduled
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import micro_topology

__all__ = ["run", "PAPER_UTIL_IMPROVEMENT"]

#: Paper-reported utilisation improvements.
PAPER_UTIL_IMPROVEMENT = {"linear": 0.69, "diamond": 0.91, "star": 3.50}

KINDS = ("linear", "diamond", "star")


def run(duration_s: float = 120.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title="Average CPU utilisation of machines used (compute-bound runs)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    for kind in KINDS:
        utils = {}
        for scheduler in (RStormScheduler(), DefaultScheduler()):
            topology = micro_topology(kind, "compute")
            cluster = emulab_testbed()
            outcome = run_scheduled(scheduler, [topology], cluster, config)
            utils[scheduler.name] = outcome.report.topology_cpu_utilisation(
                topology.topology_id
            )
        r_util, d_util = utils["r-storm"], utils["default"]
        improvement = r_util / d_util - 1.0 if d_util else float("inf")
        result.add_row(
            topology=kind,
            rstorm_cpu_util=round(r_util, 3),
            default_cpu_util=round(d_util, 3),
            improvement_pct=round(improvement * 100.0, 1),
            paper_pct=round(PAPER_UTIL_IMPROVEMENT[kind] * 100.0, 1),
        )
    result.note(
        "Utilisation is averaged over the machines hosting at least one "
        "task, the population Figure 10 uses."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
