"""Content-addressed result cache for experiment work units.

Every simulation the experiment suite runs is a pure function of its
inputs: the cluster spec, the topology specs, the scheduler (name +
parameters), the :class:`~repro.simulation.config.SimulationConfig` and
the code itself (the DES is deterministic — no wall-clock or RNG state
leaks into a report).  That makes results memoisable: a
:class:`ResultCache` stores each finished
:class:`~repro.experiments.harness.SingleRunOutcome` on disk under a
stable SHA-256 key of those inputs, so re-running a figure command only
simulates what changed.

Key structure (see :func:`cache_key`)::

    sha256(v1 || code_version || stable_token(work unit))

* ``code_version`` is a digest over every ``repro`` source file, so any
  change to the library invalidates the whole cache — the conservative
  rule that keeps cached rows trustworthy.
* :func:`stable_token` canonicalises a work unit into a JSON-able
  structure: dataclasses by field, enums by qualified member name,
  callables by qualified name, floats by exact ``repr``.  Anything it
  cannot canonicalise raises :class:`CacheKeyError` instead of silently
  producing an unstable key.

Cache layout on disk::

    <root>/<key[:2]>/<key>.pkl     one pickled outcome per work unit

Entries are written atomically (temp file + ``os.replace``) so a killed
worker never leaves a truncated entry, and unreadable entries are
treated as misses and deleted.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import functools
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Iterator, Optional

__all__ = [
    "CacheKeyError",
    "stable_token",
    "code_version",
    "cache_key",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
]

#: Default on-disk location used by the CLI (overridable via
#: ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every existing cache entry on format changes.
_KEY_VERSION = "v1"


class CacheKeyError(TypeError):
    """An object in a work unit cannot be canonicalised into a stable key."""


def stable_token(obj: Any) -> Any:
    """Canonicalise ``obj`` into a JSON-serialisable token.

    Equal inputs produce equal tokens across processes and interpreter
    restarts; unsupported types raise :class:`CacheKeyError` so key
    instability surfaces at build time, not as silently wrong hits.

    Types that are neither dataclasses nor containers opt in by defining
    ``__cache_token__(self)`` returning any tokenisable value (see
    :class:`~repro.cluster.resources.ResourceVector`).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    token_hook = getattr(type(obj), "__cache_token__", None)
    if token_hook is not None:
        return ["custom", _qualname(type(obj)), stable_token(token_hook(obj))]
    if isinstance(obj, float):
        # repr() round-trips floats exactly; json would too, but being
        # explicit keeps the token readable when debugging keys.
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", _qualname(type(obj)), obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: stable_token(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return ["dc", _qualname(type(obj)), fields]
    if isinstance(obj, (list, tuple)):
        return ["seq", [stable_token(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        tokens = [stable_token(item) for item in obj]
        return ["set", sorted(tokens, key=lambda t: json.dumps(t, sort_keys=True))]
    if isinstance(obj, dict):
        items = [
            [stable_token(k), stable_token(v)] for k, v in obj.items()
        ]
        return ["map", sorted(items, key=lambda kv: json.dumps(kv[0], sort_keys=True))]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if callable(obj):
        # Functions and classes are identified by where they live; their
        # behaviour is covered by code_version().
        return ["callable", _qualname(obj)]
    raise CacheKeyError(
        f"cannot build a stable cache token for {type(obj).__name__}: {obj!r}"
    )


def _qualname(obj: Any) -> str:
    module = getattr(obj, "__module__", None) or "?"
    qual = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))
    return f"{module}.{qual}"


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file.

    Any library change — scheduler, DES, workloads — changes this digest
    and thereby invalidates all cached outcomes.  Computed once per
    process.
    """
    import repro

    package_root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(unit: Any) -> str:
    """The stable SHA-256 cache key of a work unit."""
    payload = json.dumps(
        [_KEY_VERSION, code_version(), stable_token(unit)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk memoisation of work-unit outcomes.

    Args:
        root: Cache directory (created on first write).

    Attributes:
        hits/misses: Lookup counters for this process, reported by the
            CLI after each experiment.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    # -- lookup ----------------------------------------------------------

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached outcome for ``key``, or ``None`` on a miss.

        Corrupted/unreadable entries count as misses and are removed.
        """
        from repro.simulation.export import load_outcome

        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            outcome = load_outcome(str(path))
        except Exception:
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, key: str, outcome: Any) -> None:
        """Store ``outcome`` under ``key`` atomically."""
        from repro.simulation.export import dump_outcome

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            os.close(fd)
            dump_outcome(outcome, tmp)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    # -- maintenance -----------------------------------------------------

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.pkl")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
