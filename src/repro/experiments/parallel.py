"""Parallel, cached execution of experiment work units.

The figure experiments decompose into independent *work units* — one
(scheduler, topology set, cluster, config, trial) combination each.
Units are declarative and picklable: they carry :class:`FactorySpec`
recipes (module-level callable + arguments) rather than live clusters or
topologies, so they can cross process boundaries and hash into stable
cache keys (:mod:`repro.experiments.cache`).

Two unit kinds cover the whole suite:

* :class:`SimulationUnit` — schedule then run the discrete-event
  simulator; returns a
  :class:`~repro.experiments.harness.SingleRunOutcome` (figs 8–13,
  ablations, weight sweep).
* :class:`ScheduleUnit` — schedule only, evaluate placement quality and
  the analytical flow-model prediction; returns a
  :class:`ScheduleOutcome` (scalability, scheduling overhead — the DES
  would take minutes per point at those scales).

:func:`run_units` executes a batch: cache hits return instantly, misses
fan out over a :class:`concurrent.futures.ProcessPoolExecutor` when
``jobs > 1`` (or run inline otherwise), and fresh results are written
back to the cache.  Each unit's execution deterministically seeds the
global :mod:`random` state from its cache key, so any stochastic
component behaves identically in-process, in a worker and on replay —
the contract the determinism regression tests pin down.

:class:`ExperimentContext` bundles the ``jobs``/cache policy and is what
the CLI threads into every experiment's ``run(..., context=...)``.
"""

from __future__ import annotations

import concurrent.futures
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow import FlowModel
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.harness import SingleRunOutcome, run_scheduled
from repro.scheduler.assignment import Assignment
from repro.scheduler.quality import ScheduleQuality, evaluate_assignment
from repro.simulation.config import SimulationConfig

__all__ = [
    "FactorySpec",
    "spec",
    "SimulationUnit",
    "ScheduleUnit",
    "ScheduleOutcome",
    "run_units",
    "ExperimentContext",
]


@dataclass(frozen=True)
class FactorySpec:
    """A picklable recipe for building one object.

    ``fn`` must be an importable module-level callable (class or
    function); ``args``/``kwargs`` must be stable-tokenisable (see
    :func:`repro.experiments.cache.stable_token`).  Keeping recipes
    instead of instances is what lets units cross process boundaries and
    hash deterministically.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


def spec(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> FactorySpec:
    """Convenience constructor: ``spec(micro_topology, "linear", "compute")``."""
    return FactorySpec(fn, args, tuple(sorted(kwargs.items())))


def _seed_for(unit: Any) -> int:
    """Deterministic per-unit RNG seed derived from the cache key.

    Uses ``cache_token()`` (not the dataclass itself) so presentational
    fields like ``label`` cannot perturb the seed.
    """
    return int(cache_key(unit.cache_token())[:16], 16)


@dataclass(frozen=True)
class SimulationUnit:
    """One (scheduler, topology set, cluster, config, trial) DES run.

    ``trial`` distinguishes repeats of otherwise-identical work (each
    gets its own cache entry and RNG seed); ``label`` is presentational
    only and deliberately excluded from the cache key, so identical work
    shared between experiments (fig9 and fig10 simulate the exact same
    runs) hits the same entry.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: SimulationConfig
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "sim",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> SingleRunOutcome:
        random.seed(_seed_for(self))
        return run_scheduled(
            self.scheduler.build(),
            [t.build() for t in self.topologies],
            self.cluster.build(),
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        )


@dataclass(frozen=True)
class ScheduleOutcome:
    """Everything measured for one schedule-only unit."""

    scheduler: str
    assignments: Dict[str, Assignment]
    qualities: Dict[str, ScheduleQuality]
    scheduling_latency_s: float
    #: flow-model steady-state prediction, tuples/s per topology
    predicted_tps: Dict[str, float]


@dataclass(frozen=True)
class ScheduleUnit:
    """Schedule + evaluate + flow-model predict, without the DES.

    Used where simulation is unnecessary or unaffordable: the
    scheduling-overhead benchmark (latency only) and the scalability
    sweep (analytical throughput on clusters the DES would chew minutes
    on).  Cached latency figures are wall-clock measurements from the
    run that produced the entry.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: Optional[SimulationConfig] = None
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "schedule",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> ScheduleOutcome:
        random.seed(_seed_for(self))
        scheduler = self.scheduler.build()
        topologies = [t.build() for t in self.topologies]
        cluster = self.cluster.build()
        round_info = scheduler.run(topologies, cluster)
        assignments = round_info.assignments
        placements = [
            (t, assignments[t.topology_id]) for t in topologies
        ]
        qualities = {}
        for topology in topologies:
            others = {
                t.topology_id: (t, assignments[t.topology_id])
                for t in topologies
                if t.topology_id != topology.topology_id
            }
            qualities[topology.topology_id] = evaluate_assignment(
                topology, assignments[topology.topology_id], cluster, others
            )
        flow = FlowModel(
            cluster,
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        ).solve(placements)
        return ScheduleOutcome(
            scheduler=scheduler.name,
            assignments=assignments,
            qualities=qualities,
            scheduling_latency_s=round_info.duration_s,
            predicted_tps=dict(flow.topology_throughput_tps),
        )


def _execute_unit(unit: Any) -> Any:
    """Module-level worker entry point (must be picklable by reference)."""
    return unit.execute()


def run_units(
    units: Sequence[Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """Execute ``units``, in input order, with caching and fan-out.

    Args:
        units: Work units exposing ``execute()`` and ``cache_token()``.
        jobs: Worker processes for cache misses.  ``1`` runs inline
            (no subprocesses at all); ``N > 1`` uses a process pool.
        cache: Optional :class:`ResultCache`; hits skip execution
            entirely and fresh results are stored back.

    Returns:
        One outcome per unit, aligned with the input order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    results: List[Any] = [None] * len(units)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    for i, unit in enumerate(units):
        if cache is not None:
            key = cache_key(unit.cache_token())
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)
    if pending:
        if jobs > 1 and len(pending) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                outcomes = list(
                    pool.map(
                        _execute_unit,
                        [units[i] for i in pending],
                        chunksize=1,
                    )
                )
        else:
            outcomes = [units[i].execute() for i in pending]
        for i, outcome in zip(pending, outcomes):
            results[i] = outcome
            if cache is not None:
                cache.put(keys[i], outcome)
    return results


@dataclass
class ExperimentContext:
    """Execution policy threaded through every experiment's ``run``.

    The default — sequential, uncached — reproduces the historical
    behaviour exactly, so library callers and tests that never mention a
    context are unaffected.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None

    def run(self, units: Sequence[Any]) -> List[Any]:
        return run_units(units, jobs=self.jobs, cache=self.cache)
