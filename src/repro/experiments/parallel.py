"""Parallel, cached execution of experiment work units.

The figure experiments decompose into independent *work units* — one
(scheduler, topology set, cluster, config, trial) combination each.
Units are declarative and picklable: they carry :class:`FactorySpec`
recipes (module-level callable + arguments) rather than live clusters or
topologies, so they can cross process boundaries and hash into stable
cache keys (:mod:`repro.experiments.cache`).

Three unit kinds cover the whole suite:

* :class:`SimulationUnit` — schedule then run the discrete-event
  simulator; returns a
  :class:`~repro.experiments.harness.SingleRunOutcome` (figs 8–13,
  ablations, weight sweep).
* :class:`ScheduleUnit` — schedule only, evaluate placement quality and
  the analytical flow-model prediction; returns a
  :class:`ScheduleOutcome` (scalability, scheduling overhead — the DES
  would take minutes per point at those scales).
* :class:`ChaosUnit` — a full coordination-plane run (ZooKeeper,
  supervisors, heartbeat failure detector, periodic Nimbus rescheduling)
  with a deterministic fault schedule injected; returns a
  :class:`ChaosOutcome` with per-topology recovery reports
  (``repro chaos``, the failure-recovery comparison).

:func:`run_units` executes a batch: cache hits return instantly, misses
fan out over a :class:`concurrent.futures.ProcessPoolExecutor` when
``jobs > 1`` (or run inline otherwise), and fresh results are written
back to the cache.  Each unit's execution deterministically seeds the
global :mod:`random` state from its cache key, so any stochastic
component behaves identically in-process, in a worker and on replay —
the contract the determinism regression tests pin down.

:class:`ExperimentContext` bundles the ``jobs``/cache policy and is what
the CLI threads into every experiment's ``run(..., context=...)``.
"""

from __future__ import annotations

import concurrent.futures
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow import FlowModel
from repro.errors import ConfigError, SchedulingError
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.harness import SingleRunOutcome, run_scheduled
from repro.faults.chaos import ChaosGenerator
from repro.faults.injector import FaultInjector
from repro.faults.monitor import RecoveryMonitor, RecoveryReport
from repro.faults.schedule import FaultSchedule
from repro.nimbus.config import StormConfig
from repro.nimbus.elastic import ElasticController, ElasticDecision
from repro.nimbus.failure_detector import HeartbeatFailureDetector
from repro.nimbus.nimbus import Nimbus
from repro.nimbus.supervisor import Supervisor
from repro.nimbus.tenancy import (
    AdmissionRoundRecord,
    TenancyController,
    Tenant,
)
from repro.nimbus.zookeeper import InMemoryZooKeeper
from repro.scheduler.admission import AdmissionDecision
from repro.scheduler.assignment import Assignment
from repro.scheduler.quality import ScheduleQuality, evaluate_assignment
from repro.simulation.config import SimulationConfig
from repro.simulation.report import SimulationReport
from repro.simulation.runtime import SimulationRun

__all__ = [
    "FactorySpec",
    "spec",
    "SimulationUnit",
    "ScheduleUnit",
    "ScheduleOutcome",
    "ChaosUnit",
    "ChaosOutcome",
    "ElasticUnit",
    "ElasticOutcome",
    "TenantUnit",
    "TenantOutcome",
    "run_units",
    "ExperimentContext",
]


@dataclass(frozen=True)
class FactorySpec:
    """A picklable recipe for building one object.

    ``fn`` must be an importable module-level callable (class or
    function); ``args``/``kwargs`` must be stable-tokenisable (see
    :func:`repro.experiments.cache.stable_token`).  Keeping recipes
    instead of instances is what lets units cross process boundaries and
    hash deterministically.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


def spec(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> FactorySpec:
    """Convenience constructor: ``spec(micro_topology, "linear", "compute")``."""
    return FactorySpec(fn, args, tuple(sorted(kwargs.items())))


def _seed_for(unit: Any) -> int:
    """Deterministic per-unit RNG seed derived from the cache key.

    Uses ``cache_token()`` (not the dataclass itself) so presentational
    fields like ``label`` cannot perturb the seed.
    """
    return int(cache_key(unit.cache_token())[:16], 16)


@dataclass(frozen=True)
class SimulationUnit:
    """One (scheduler, topology set, cluster, config, trial) DES run.

    ``trial`` distinguishes repeats of otherwise-identical work (each
    gets its own cache entry and RNG seed); ``label`` is presentational
    only and deliberately excluded from the cache key, so identical work
    shared between experiments (fig9 and fig10 simulate the exact same
    runs) hits the same entry.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: SimulationConfig
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "sim",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> SingleRunOutcome:
        random.seed(_seed_for(self))
        return run_scheduled(
            self.scheduler.build(),
            [t.build() for t in self.topologies],
            self.cluster.build(),
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        )


@dataclass(frozen=True)
class ScheduleOutcome:
    """Everything measured for one schedule-only unit."""

    scheduler: str
    assignments: Dict[str, Assignment]
    qualities: Dict[str, ScheduleQuality]
    scheduling_latency_s: float
    #: flow-model steady-state prediction, tuples/s per topology
    predicted_tps: Dict[str, float]


@dataclass(frozen=True)
class ScheduleUnit:
    """Schedule + evaluate + flow-model predict, without the DES.

    Used where simulation is unnecessary or unaffordable: the
    scheduling-overhead benchmark (latency only) and the scalability
    sweep (analytical throughput on clusters the DES would chew minutes
    on).  Cached latency figures are wall-clock measurements from the
    run that produced the entry.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: Optional[SimulationConfig] = None
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "schedule",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> ScheduleOutcome:
        random.seed(_seed_for(self))
        scheduler = self.scheduler.build()
        topologies = [t.build() for t in self.topologies]
        cluster = self.cluster.build()
        round_info = scheduler.run(topologies, cluster)
        assignments = round_info.assignments
        placements = [
            (t, assignments[t.topology_id]) for t in topologies
        ]
        qualities = {}
        for topology in topologies:
            others = {
                t.topology_id: (t, assignments[t.topology_id])
                for t in topologies
                if t.topology_id != topology.topology_id
            }
            qualities[topology.topology_id] = evaluate_assignment(
                topology, assignments[topology.topology_id], cluster, others
            )
        flow = FlowModel(
            cluster,
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        ).solve(placements)
        return ScheduleOutcome(
            scheduler=scheduler.name,
            assignments=assignments,
            qualities=qualities,
            scheduling_latency_s=round_info.duration_s,
            predicted_tps=dict(flow.topology_throughput_tps),
        )


@dataclass(frozen=True)
class ChaosOutcome:
    """Everything measured for one fault-injected coordination-plane run."""

    scheduler: str
    report: SimulationReport
    #: final (post-recovery) assignments, per topology
    assignments: Dict[str, Assignment]
    #: per-topology recovery metrics distilled from the causal trace
    recovery: Dict[str, RecoveryReport]
    #: ``(simulated time, description)`` of every fault actually injected
    injected: Tuple[Tuple[float, str], ...]
    #: ``(simulated time, error)`` of every infeasible scheduling round
    scheduling_failures: Tuple[Tuple[float, str], ...]
    #: ``(simulated time, node id)`` of every Nimbus quarantine decision
    quarantined: Tuple[Tuple[float, str], ...] = ()


@dataclass(frozen=True)
class ChaosUnit:
    """One fault-injected run of the full coordination plane.

    Unlike :class:`SimulationUnit`, which simulates a fixed placement,
    a chaos unit stands up ZooKeeper, one supervisor per node, a
    heartbeat failure detector and a periodically-rescheduling Nimbus,
    then injects a :class:`~repro.faults.schedule.FaultSchedule` and
    measures detection, rescheduling and throughput recovery.

    ``faults`` is a :class:`FactorySpec` whose built object may be:

    * a :class:`~repro.faults.schedule.FaultSchedule` — used as-is;
    * a :class:`~repro.faults.chaos.ChaosGenerator` — sampled against
      the built cluster;
    * any callable ``(cluster, assignments) -> FaultSchedule`` —
      placement-aware scenarios ("crash the busiest node") that can
      only be resolved after the initial scheduling round.

    All three are deterministic functions of the unit's fields, which is
    what keeps chaos outcomes cacheable.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: SimulationConfig
    faults: FactorySpec
    heartbeat_interval_s: float = 3.0
    heartbeat_timeout_s: float = 10.0
    scheduling_interval_s: float = 10.0
    interrack_uplink_mbps: Optional[float] = None
    #: enable Nimbus flap-tracking/quarantine for this run
    quarantine: bool = False
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "chaos",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.faults,
            self.heartbeat_interval_s,
            self.heartbeat_timeout_s,
            self.scheduling_interval_s,
            self.interrack_uplink_mbps,
            self.quarantine,
            self.trial,
        )

    def _resolve_faults(self, cluster, assignments) -> FaultSchedule:
        built = self.faults.build()
        if isinstance(built, FaultSchedule):
            return built
        if isinstance(built, ChaosGenerator):
            return built.generate(cluster)
        if callable(built):
            schedule = built(cluster, assignments)
            if not isinstance(schedule, FaultSchedule):
                raise ConfigError(
                    "fault scenario callable must return a FaultSchedule, "
                    f"got {type(schedule).__name__}"
                )
            return schedule
        raise ConfigError(
            "faults spec must build a FaultSchedule, a ChaosGenerator or "
            f"a scenario callable, got {type(built).__name__}"
        )

    def execute(self) -> ChaosOutcome:
        random.seed(_seed_for(self))
        scheduler = self.scheduler.build()
        topologies = [t.build() for t in self.topologies]
        cluster = self.cluster.build()

        zk = InMemoryZooKeeper()
        config = (
            StormConfig({"nimbus.quarantine.enabled": True})
            if self.quarantine
            else None
        )
        nimbus = Nimbus(cluster, scheduler=scheduler, zk=zk, config=config)
        supervisors = []
        for node in cluster.nodes:
            supervisor = Supervisor(node, zk)
            nimbus.register_supervisor(supervisor)
            supervisors.append(supervisor)
        for topology in topologies:
            nimbus.submit_topology(topology)
        nimbus.schedule_round()

        run = SimulationRun(
            cluster,
            [(t, nimbus.assignments[t.topology_id]) for t in topologies],
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        )
        detector = HeartbeatFailureDetector(
            supervisors,
            heartbeat_interval_s=self.heartbeat_interval_s,
            timeout_s=self.heartbeat_timeout_s,
        )
        monitor = RecoveryMonitor()
        monitor.attach(run, detector=detector, nimbus=nimbus)
        detector.attach(run)
        nimbus.attach(run, interval_s=self.scheduling_interval_s)
        schedule = self._resolve_faults(cluster, dict(nimbus.assignments))
        injector = FaultInjector(
            schedule, detector=detector, tracer=monitor.tracer
        )
        injector.attach(run)

        report = run.run()
        recovery = {
            t.topology_id: monitor.report(t.topology_id, report)
            for t in topologies
        }
        # the report references the stats server the tracer wrapped with
        # closures; unwrap so the outcome stays picklable (cache, workers)
        monitor.tracer.uninstall()
        return ChaosOutcome(
            scheduler=scheduler.name,
            report=report,
            assignments=dict(nimbus.assignments),
            recovery=recovery,
            injected=tuple(
                (time, event.describe()) for time, event in injector.injected
            ),
            scheduling_failures=tuple(nimbus.scheduling_failures),
            quarantined=tuple(nimbus.quarantine_events),
        )


@dataclass(frozen=True)
class ElasticOutcome:
    """Everything measured for one elastic-runtime run."""

    scheduler: str
    report: SimulationReport
    #: final (post-rescale) assignments, per topology
    assignments: Dict[str, Assignment]
    #: per-topology churn accounting distilled from the causal trace
    #: (fault- vs elastic-driven moves split by the monitor)
    recovery: Dict[str, RecoveryReport]
    #: every committed control action, in decision order
    decisions: Tuple[ElasticDecision, ...]
    #: total elastic churn (tasks moved + added + removed)
    tasks_moved: int
    #: ``(simulated time, message)`` of scale attempts the scheduler refused
    actions_failed: Tuple[Tuple[float, str], ...]
    #: topology -> component -> parallelism at end of run
    final_parallelism: Dict[str, Dict[str, int]]


@dataclass(frozen=True)
class ElasticUnit:
    """One run with the elastic control loop attached (or deliberately
    disabled — the static baselines use the same unit with
    ``nimbus.elastic.enabled`` left false, so both sides of the
    comparison take the identical code path).

    ``storm`` carries flat ``nimbus.elastic.*`` StormConfig overrides as
    a sorted tuple of ``(key, value)`` pairs, keeping the unit hashable
    and its cache key stable.
    """

    scheduler: FactorySpec
    topologies: Tuple[FactorySpec, ...]
    cluster: FactorySpec
    config: SimulationConfig
    #: flat StormConfig overrides, e.g. (("nimbus.elastic.enabled", True),)
    storm: Tuple[Tuple[str, Any], ...] = ()
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "elastic",
            self.scheduler,
            self.topologies,
            self.cluster,
            self.config,
            self.storm,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> ElasticOutcome:
        random.seed(_seed_for(self))
        scheduler = self.scheduler.build()
        topologies = [t.build() for t in self.topologies]
        cluster = self.cluster.build()

        storm_config = StormConfig(dict(self.storm)) if self.storm else None
        nimbus = Nimbus(cluster, scheduler=scheduler, config=storm_config)
        for topology in topologies:
            nimbus.submit_topology(topology)
        nimbus.schedule_round()

        run = SimulationRun(
            cluster,
            [(t, nimbus.assignments[t.topology_id]) for t in topologies],
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        )
        monitor = RecoveryMonitor()
        monitor.attach(run)
        controller = ElasticController(nimbus)
        controller.attach(run)

        report = run.run()
        recovery = {
            t.topology_id: monitor.report(t.topology_id, report)
            for t in topologies
        }
        final_parallelism = {
            topology_id: {
                name: comp.parallelism
                for name, comp in sorted(
                    nimbus.topology(topology_id).components.items()
                )
            }
            for topology_id in sorted(nimbus.assignments)
        }
        # unwrap the tracer's closures so the outcome stays picklable
        monitor.tracer.uninstall()
        return ElasticOutcome(
            scheduler=scheduler.name,
            report=report,
            assignments=dict(nimbus.assignments),
            recovery=recovery,
            decisions=tuple(controller.decisions),
            tasks_moved=controller.tasks_moved,
            actions_failed=tuple(controller.actions_failed),
            final_parallelism=final_parallelism,
        )


@dataclass(frozen=True)
class TenantOutcome:
    """Everything measured for one multi-tenant contention run."""

    scheduler: str
    report: SimulationReport
    #: final assignments of the admitted topologies
    assignments: Dict[str, Assignment]
    #: every admit/defer/evict verdict, in decision order
    decisions: Tuple[AdmissionDecision, ...]
    #: per-admission-round fairness records (shares, Jain index)
    round_records: Tuple[AdmissionRoundRecord, ...]
    #: topology ids admitted and simulated, in submission order
    admitted: Tuple[str, ...]
    #: topology ids still queued when the admission phase ended
    deferred: Tuple[str, ...]
    #: topologies evicted by priority preemption (churn)
    preemptions: int
    #: tasks those evictions displaced
    preempted_tasks: int
    #: outstanding credit balance per tenant
    credits: Dict[str, float]
    #: final weighted dominant share per tenant
    shares: Dict[str, float]
    #: Jain fairness index over the final dominant shares
    jain: float
    #: topology id -> owning tenant id, for per-tenant rollups
    owners: Dict[str, str]
    #: ``(simulated time, error)`` of every infeasible scheduling round
    scheduling_failures: Tuple[Tuple[float, str], ...]


@dataclass(frozen=True)
class TenantUnit:
    """One multi-tenant contention run: a staged submission schedule is
    pushed through weighted-DRF admission (credits, preemption) over
    ``rounds`` Nimbus scheduling rounds, then the admitted set runs in
    the DES under the unit's (typically open-loop) config.

    ``submissions`` is a tuple of ``(round, tenant_id, topology_spec)``:
    the topology is submitted through the tenancy controller just
    before admission round ``round`` (0-based), so staggered arrivals
    exercise credit accrual and preemption deterministically.  ``storm``
    carries flat ``nimbus.tenancy.*`` overrides the same way
    :class:`ElasticUnit` carries ``nimbus.elastic.*`` ones.
    """

    scheduler: FactorySpec
    tenants: Tuple[Tenant, ...]
    submissions: Tuple[Tuple[int, str, FactorySpec], ...]
    cluster: FactorySpec
    config: SimulationConfig
    #: flat StormConfig overrides, e.g. (("nimbus.tenancy.enabled", True),)
    storm: Tuple[Tuple[str, Any], ...] = ()
    rounds: int = 8
    scheduling_interval_s: float = 10.0
    interrack_uplink_mbps: Optional[float] = None
    trial: int = 0
    label: str = field(default="", compare=False)

    def cache_token(self) -> Any:
        return (
            "tenants",
            self.scheduler,
            self.tenants,
            self.submissions,
            self.cluster,
            self.config,
            self.storm,
            self.rounds,
            self.scheduling_interval_s,
            self.interrack_uplink_mbps,
            self.trial,
        )

    def execute(self) -> TenantOutcome:
        random.seed(_seed_for(self))
        scheduler = self.scheduler.build()
        cluster = self.cluster.build()
        storm_config = StormConfig(dict(self.storm)) if self.storm else None
        nimbus = Nimbus(cluster, scheduler=scheduler, config=storm_config)
        controller = TenancyController(nimbus)
        for tenant in self.tenants:
            controller.register_tenant(tenant)
        by_round: Dict[int, List[Tuple[str, FactorySpec]]] = {}
        for round_index, tenant_id, topology_spec in self.submissions:
            by_round.setdefault(round_index, []).append(
                (tenant_id, topology_spec)
            )
        for round_index in range(self.rounds):
            for tenant_id, topology_spec in by_round.get(round_index, ()):
                controller.submit(topology_spec.build(), tenant_id)
            try:
                nimbus.schedule_round(round_index * self.scheduling_interval_s)
            except SchedulingError as err:
                # Aggregate slack fit but per-node packing failed —
                # degraded-mode record, same contract as the chaos path.
                nimbus.scheduling_failures.append(
                    (round_index * self.scheduling_interval_s, str(err))
                )
        placed = [
            topology
            for topology in nimbus.topologies
            if topology.topology_id in nimbus.assignments
        ]
        run = SimulationRun(
            cluster,
            [(t, nimbus.assignments[t.topology_id]) for t in placed],
            self.config,
            interrack_uplink_mbps=self.interrack_uplink_mbps,
        )
        report = run.run()
        latest = (
            controller.round_records[-1]
            if controller.round_records
            else None
        )
        return TenantOutcome(
            scheduler=scheduler.name,
            report=report,
            assignments=dict(nimbus.assignments),
            decisions=tuple(controller.decisions),
            round_records=tuple(controller.round_records),
            admitted=tuple(t.topology_id for t in placed),
            deferred=tuple(controller.pending_ids),
            preemptions=controller.preemptions,
            preempted_tasks=controller.preempted_tasks,
            credits=dict(controller.credits),
            shares=dict(latest.shares) if latest else {},
            jain=latest.jain if latest else 1.0,
            owners=controller.owners(),
            scheduling_failures=tuple(nimbus.scheduling_failures),
        )


def _execute_unit(unit: Any) -> Any:
    """Module-level worker entry point (must be picklable by reference)."""
    return unit.execute()


def run_units(
    units: Sequence[Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """Execute ``units``, in input order, with caching and fan-out.

    Args:
        units: Work units exposing ``execute()`` and ``cache_token()``.
        jobs: Worker processes for cache misses.  ``1`` runs inline
            (no subprocesses at all); ``N > 1`` uses a process pool.
        cache: Optional :class:`ResultCache`; hits skip execution
            entirely and fresh results are stored back.

    Returns:
        One outcome per unit, aligned with the input order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    results: List[Any] = [None] * len(units)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    for i, unit in enumerate(units):
        if cache is not None:
            key = cache_key(unit.cache_token())
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)
    if pending:
        if jobs > 1 and len(pending) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                outcomes = list(
                    pool.map(
                        _execute_unit,
                        [units[i] for i in pending],
                        chunksize=1,
                    )
                )
        else:
            outcomes = [units[i].execute() for i in pending]
        for i, outcome in zip(pending, outcomes):
            results[i] = outcome
            if cache is not None:
                cache.put(keys[i], outcome)
    return results


@dataclass
class ExperimentContext:
    """Execution policy threaded through every experiment's ``run``.

    The default — sequential, uncached — reproduces the historical
    behaviour exactly, so library callers and tests that never mention a
    context are unaffected.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None

    def run(self, units: Sequence[Any]) -> List[Any]:
        return run_units(units, jobs=self.jobs, cache=self.cache)
