"""Figure 12 — Yahoo! production topologies, one at a time.

PageLoad and Processing on the 12-node cluster under each scheduler.  The
paper reports R-Storm beating default Storm by ~50% (PageLoad) and ~47%
(Processing): default Storm's placement over-utilises the machines where
its round-robin stacked heavy components, throttling the pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.yahoo import (
    pageload_topology,
    processing_topology,
    yahoo_simulation_config,
)

__all__ = ["run", "PAPER_IMPROVEMENT"]

PAPER_IMPROVEMENT = {"pageload": 0.50, "processing": 0.47}

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))

TOPOLOGIES = (("pageload", pageload_topology), ("processing", processing_topology))


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="fig12",
        title="Yahoo topologies, single tenancy (tuples per 10 s window)",
    )
    config = yahoo_simulation_config(duration_s)
    units = [
        SimulationUnit(
            scheduler=spec(sched_factory),
            topologies=(spec(topo_factory),),
            cluster=spec(emulab_testbed),
            config=config,
            label=f"{topo_id}/{name}",
        )
        for topo_id, topo_factory in TOPOLOGIES
        for name, sched_factory in SCHEDULERS
    ]
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )
    for topo_id, _ in TOPOLOGIES:
        outcomes = {
            name: outcomes_by_label[f"{topo_id}/{name}"]
            for name, _ in SCHEDULERS
        }
        for name, outcome in outcomes.items():
            result.add_series(
                f"{topo_id}/{name}",
                outcome.report.throughput_series(topo_id),
            )
        rstorm, default = outcomes["r-storm"], outcomes["default"]
        r_thr, d_thr = rstorm.throughput(topo_id), default.throughput(topo_id)
        result.add_row(
            topology=topo_id,
            rstorm_tuples_per_10s=round(r_thr),
            default_tuples_per_10s=round(d_thr),
            improvement_pct=round((r_thr / d_thr - 1.0) * 100.0, 1)
            if d_thr
            else float("inf"),
            paper_pct=round(PAPER_IMPROVEMENT[topo_id] * 100.0, 1),
            rstorm_crashes=rstorm.report.crashes(topo_id),
            default_crashes=default.report.crashes(topo_id),
            default_max_cpu_overcommit=round(
                default.qualities[topo_id].max_cpu_overcommit, 2
            ),
        )
    result.note(
        "Runs use Storm's default unbounded spout pending; worker crashes "
        "are queue overflows on over-utilised machines."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
