"""Failure recovery under fault injection: R-Storm vs default Storm.

Not a figure from the paper — the paper schedules once on a healthy
cluster — but the obvious operational question it leaves open: when
machines die mid-run, does resource-aware scheduling recover as fast as
round-robin, and at what throughput does the survivor run?

Three deterministic scenarios (same for both schedulers) on the Emulab
testbed cluster:

* ``single-crash`` — the busiest node crashes at 40 s and stays dead;
* ``rack-partition`` — the busiest rack drops out at 40 s and heals at
  70 s (crash + rejoin of every node in it);
* ``crash-rejoin`` — the busiest node crashes at 40 s and rejoins at
  70 s.

Two further scenarios light up in *extended* (delivery-semantics) mode,
enabled via ``repro chaos --loss-rate/--quarantine``, which also turns on
the simulator's at-least-once replay layer:

* ``lossy-link`` — the trunk between the busiest rack and its neighbour
  drops (and occasionally duplicates) batches from 40 s to 70 s; the
  spouts replay the timed-out trees;
* ``flapping-node`` — the busiest node crashes and rejoins repeatedly
  until Nimbus quarantines it, demonstrating partial reassignment
  (churn counted per recovery).

"Busiest" is resolved against each scheduler's own initial placement, so
both schedulers lose their own most-loaded machine — a like-for-like
worst case rather than a fixed node id that one scheduler may not even
use.  Each run goes through the full coordination plane (heartbeat
detector, periodic Nimbus rescheduling with backoff, task migration);
detection latency, reschedule latency, throughput floor and time to
steady state come from the :class:`~repro.faults.monitor.RecoveryMonitor`
causal trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ChaosUnit, ExperimentContext, spec
from repro.faults.events import MessageLoss, NodeCrash, RackPartition
from repro.faults.schedule import FaultSchedule
from repro.scheduler.assignment import Assignment
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import micro_topology

__all__ = [
    "run",
    "chaos_units",
    "single_crash",
    "rack_partition",
    "crash_rejoin",
    "lossy_link",
    "flapping_node",
    "SCENARIOS",
]

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))

FAULT_AT_S = 40.0
HEAL_AT_S = 70.0


def _task_counts_by_node(assignments: Dict[str, Assignment]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for assignment in assignments.values():
        for node_id in assignment.nodes:
            counts[node_id] = (
                counts.get(node_id, 0) + len(assignment.tasks_on_node(node_id))
            )
    return counts


def _busiest_node(cluster, assignments: Dict[str, Assignment]) -> str:
    """The node carrying the most tasks (ties break on node id)."""
    counts = _task_counts_by_node(assignments)
    if not counts:
        return sorted(node.node_id for node in cluster.nodes)[0]
    return sorted(counts, key=lambda n: (-counts[n], n))[0]


def _busiest_rack(cluster, assignments: Dict[str, Assignment]) -> str:
    """The rack whose nodes carry the most tasks (ties break on rack id)."""
    node_counts = _task_counts_by_node(assignments)
    rack_counts = {
        rack.rack_id: sum(
            node_counts.get(node.node_id, 0) for node in rack.nodes
        )
        for rack in cluster.racks
    }
    return sorted(rack_counts, key=lambda r: (-rack_counts[r], r))[0]


# -- scenario builders (module-level so FactorySpec stays picklable) ---------


def single_crash(at: float = FAULT_AT_S):
    """The busiest node crashes permanently at ``at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            NodeCrash(at=at, node_id=_busiest_node(cluster, assignments))
        )

    return build


def rack_partition(at: float = FAULT_AT_S, heal_at: float = HEAL_AT_S):
    """The busiest rack drops out at ``at`` and heals at ``heal_at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            RackPartition(
                at=at,
                rack_id=_busiest_rack(cluster, assignments),
                heal_at=heal_at,
            )
        )

    return build


def crash_rejoin(at: float = FAULT_AT_S, rejoin_at: float = HEAL_AT_S):
    """The busiest node crashes at ``at`` and rejoins at ``rejoin_at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            NodeCrash(
                at=at,
                node_id=_busiest_node(cluster, assignments),
                rejoin_at=rejoin_at,
            )
        )

    return build


def lossy_link(
    at: float = FAULT_AT_S,
    until: float = HEAL_AT_S,
    drop_probability: float = 0.05,
    duplicate_probability: float = 0.02,
    seed: int = 7,
):
    """The trunk out of the busiest rack turns lossy from ``at`` to
    ``until``: batches crossing it are dropped with ``drop_probability``
    or duplicated with ``duplicate_probability`` (seeded, deterministic).
    """

    def build(cluster, assignments) -> FaultSchedule:
        busiest = _busiest_rack(cluster, assignments)
        other = next(
            (
                rack.rack_id
                for rack in sorted(cluster.racks, key=lambda r: r.rack_id)
                if rack.rack_id != busiest
            ),
            None,
        )
        if other is None:
            raise ValueError("lossy-link scenario needs at least two racks")
        return FaultSchedule.of(
            MessageLoss(
                at=at,
                rack_a=busiest,
                rack_b=other,
                drop_probability=drop_probability,
                duplicate_probability=duplicate_probability,
                until=until,
                seed=seed,
            )
        )

    return build


def flapping_node(
    at: float = 41.0,
    period: float = 30.0,
    flaps: int = 3,
    down_s: float = 14.0,
):
    """The busiest node crash-rejoins every ``period`` seconds, ``flaps``
    times.  Each down lasts ``down_s`` — long enough for the heartbeat
    session to expire *and* for a Nimbus tick to land before the rejoin,
    so every flap is observed; the third observation trips the default
    quarantine threshold and the node is excluded despite being alive.
    """

    def build(cluster, assignments) -> FaultSchedule:
        victim = _busiest_node(cluster, assignments)
        return FaultSchedule.of(
            *(
                NodeCrash(
                    at=at + i * period,
                    node_id=victim,
                    rejoin_at=at + i * period + down_s,
                )
                for i in range(flaps)
            )
        )

    return build


SCENARIOS = (
    ("single-crash", single_crash),
    ("rack-partition", rack_partition),
    ("crash-rejoin", crash_rejoin),
)


def chaos_units(config: SimulationConfig, scenarios=None, quarantine=False):
    """The (scenario, scheduler) grid as cacheable work units.

    ``scenarios`` overrides the default grid with ``(name, FactorySpec)``
    pairs (extended mode); ``quarantine`` threads the Nimbus quarantine
    flag into every unit (and its cache key).
    """
    if scenarios is None:
        scenarios = [(name, spec(factory)) for name, factory in SCENARIOS]
    return [
        ChaosUnit(
            scheduler=spec(factory),
            topologies=(spec(micro_topology, "linear", "compute"),),
            cluster=spec(emulab_testbed),
            config=config,
            faults=fault_spec,
            quarantine=quarantine,
            label=f"chaos:{scenario_name}/{name}",
        )
        for scenario_name, fault_spec in scenarios
        for name, factory in SCHEDULERS
    ]


def _fmt(value: Optional[float], digits: int = 1) -> object:
    return "-" if value is None else round(value, digits)


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
    loss_rate: float = 0.0,
    max_retries: int = 3,
    quarantine: bool = False,
) -> ExperimentResult:
    """Run the chaos grid.

    The default invocation reproduces the historical three-scenario grid
    byte-for-byte.  Passing ``loss_rate > 0`` and/or ``quarantine=True``
    switches to *extended* mode: the simulator's at-least-once layer is
    enabled (with ``max_retries``), the ``lossy-link`` and/or
    ``flapping-node`` scenarios join the grid, and the rows grow
    delivery-semantics columns (replays, churn, time-to-drain).
    """
    context = context or ExperimentContext()
    extended = loss_rate > 0 or quarantine
    result = ExperimentResult(
        experiment_id="chaos",
        title="Failure recovery under fault injection (linear/compute)",
    )
    if not extended:
        config = SimulationConfig(
            duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
        )
        scenarios = [(name, spec(factory)) for name, factory in SCENARIOS]
        units = chaos_units(config)
    else:
        config = SimulationConfig(
            duration_s=duration_s,
            warmup_s=min(20.0, duration_s / 4),
            at_least_once=True,
            max_retries=max_retries,
        )
        scenarios = [(name, spec(factory)) for name, factory in SCENARIOS]
        if loss_rate > 0:
            scenarios.append(
                ("lossy-link", spec(lossy_link, drop_probability=loss_rate))
            )
        if quarantine:
            scenarios.append(("flapping-node", spec(flapping_node)))
        units = chaos_units(config, scenarios=scenarios, quarantine=quarantine)
    outcomes_by_label = dict(zip([u.label for u in units], context.run(units)))
    topo_id = "linear-compute"
    for scenario_name, _ in scenarios:
        for name, _factory in SCHEDULERS:
            outcome = outcomes_by_label[f"chaos:{scenario_name}/{name}"]
            recovery = outcome.recovery[topo_id]
            baseline = recovery.baseline_tuples_per_window
            post = recovery.post_fault_tuples_per_window
            result.add_series(
                f"{scenario_name}/{name}",
                outcome.report.throughput_series(topo_id),
            )
            row = dict(
                scenario=scenario_name,
                scheduler=name,
                detect_s=_fmt(recovery.mean_detection_latency_s),
                resched_s=_fmt(recovery.mean_reschedule_latency_s),
                steady_s=_fmt(recovery.mean_time_to_steady_state_s),
                floor_ratio=_fmt(recovery.worst_throughput_floor_ratio, 3),
                post_vs_baseline=_fmt(
                    post / baseline if baseline else None, 3
                ),
                migrations=recovery.migrations,
                failed_tuples=recovery.total_failed_tuples,
                sched_failures=len(outcome.scheduling_failures),
            )
            if extended:
                row.update(
                    tasks_moved=recovery.total_tasks_moved,
                    replayed=recovery.replayed_tuples,
                    exhausted=recovery.exhausted_tuples,
                    lost=recovery.lost_tuples,
                    duplicated=recovery.duplicated_tuples,
                    drain_s=_fmt(recovery.time_to_drain_s),
                    quarantined=len(outcome.quarantined),
                )
            result.add_row(**row)
    result.note(
        "Both schedulers lose their own busiest node/rack at t=40s. "
        "detect_s = heartbeat-session expiry latency, resched_s = first "
        "migration applied, steady_s = windowed throughput back above 90% "
        "of the pre-fault baseline and holding. floor_ratio is the worst "
        "post-fault window relative to baseline."
    )
    if extended:
        result.note(
            "Extended mode: at-least-once delivery is on "
            f"(max_retries={max_retries}); tasks_moved counts reassignment "
            "churn across all migrations, replayed/exhausted/lost/"
            "duplicated are delivery-layer tuple counts, drain_s is the "
            "replay backlog drain time after the last fault, quarantined "
            "counts Nimbus quarantine decisions."
        )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
