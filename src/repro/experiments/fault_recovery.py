"""Failure recovery under fault injection: R-Storm vs default Storm.

Not a figure from the paper — the paper schedules once on a healthy
cluster — but the obvious operational question it leaves open: when
machines die mid-run, does resource-aware scheduling recover as fast as
round-robin, and at what throughput does the survivor run?

Three deterministic scenarios (same for both schedulers) on the Emulab
testbed cluster:

* ``single-crash`` — the busiest node crashes at 40 s and stays dead;
* ``rack-partition`` — the busiest rack drops out at 40 s and heals at
  70 s (crash + rejoin of every node in it);
* ``crash-rejoin`` — the busiest node crashes at 40 s and rejoins at
  70 s.

"Busiest" is resolved against each scheduler's own initial placement, so
both schedulers lose their own most-loaded machine — a like-for-like
worst case rather than a fixed node id that one scheduler may not even
use.  Each run goes through the full coordination plane (heartbeat
detector, periodic Nimbus rescheduling with backoff, task migration);
detection latency, reschedule latency, throughput floor and time to
steady state come from the :class:`~repro.faults.monitor.RecoveryMonitor`
causal trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ChaosUnit, ExperimentContext, spec
from repro.faults.events import NodeCrash, RackPartition
from repro.faults.schedule import FaultSchedule
from repro.scheduler.assignment import Assignment
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import micro_topology

__all__ = [
    "run",
    "chaos_units",
    "single_crash",
    "rack_partition",
    "crash_rejoin",
    "SCENARIOS",
]

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))

FAULT_AT_S = 40.0
HEAL_AT_S = 70.0


def _task_counts_by_node(assignments: Dict[str, Assignment]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for assignment in assignments.values():
        for node_id in assignment.nodes:
            counts[node_id] = (
                counts.get(node_id, 0) + len(assignment.tasks_on_node(node_id))
            )
    return counts


def _busiest_node(cluster, assignments: Dict[str, Assignment]) -> str:
    """The node carrying the most tasks (ties break on node id)."""
    counts = _task_counts_by_node(assignments)
    if not counts:
        return sorted(node.node_id for node in cluster.nodes)[0]
    return sorted(counts, key=lambda n: (-counts[n], n))[0]


def _busiest_rack(cluster, assignments: Dict[str, Assignment]) -> str:
    """The rack whose nodes carry the most tasks (ties break on rack id)."""
    node_counts = _task_counts_by_node(assignments)
    rack_counts = {
        rack.rack_id: sum(
            node_counts.get(node.node_id, 0) for node in rack.nodes
        )
        for rack in cluster.racks
    }
    return sorted(rack_counts, key=lambda r: (-rack_counts[r], r))[0]


# -- scenario builders (module-level so FactorySpec stays picklable) ---------


def single_crash(at: float = FAULT_AT_S):
    """The busiest node crashes permanently at ``at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            NodeCrash(at=at, node_id=_busiest_node(cluster, assignments))
        )

    return build


def rack_partition(at: float = FAULT_AT_S, heal_at: float = HEAL_AT_S):
    """The busiest rack drops out at ``at`` and heals at ``heal_at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            RackPartition(
                at=at,
                rack_id=_busiest_rack(cluster, assignments),
                heal_at=heal_at,
            )
        )

    return build


def crash_rejoin(at: float = FAULT_AT_S, rejoin_at: float = HEAL_AT_S):
    """The busiest node crashes at ``at`` and rejoins at ``rejoin_at``."""

    def build(cluster, assignments) -> FaultSchedule:
        return FaultSchedule.of(
            NodeCrash(
                at=at,
                node_id=_busiest_node(cluster, assignments),
                rejoin_at=rejoin_at,
            )
        )

    return build


SCENARIOS = (
    ("single-crash", single_crash),
    ("rack-partition", rack_partition),
    ("crash-rejoin", crash_rejoin),
)


def chaos_units(config: SimulationConfig):
    """The (scenario, scheduler) grid as cacheable work units."""
    return [
        ChaosUnit(
            scheduler=spec(factory),
            topologies=(spec(micro_topology, "linear", "compute"),),
            cluster=spec(emulab_testbed),
            config=config,
            faults=spec(scenario),
            label=f"chaos:{scenario_name}/{name}",
        )
        for scenario_name, scenario in SCENARIOS
        for name, factory in SCHEDULERS
    ]


def _fmt(value: Optional[float], digits: int = 1) -> object:
    return "-" if value is None else round(value, digits)


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="chaos",
        title="Failure recovery under fault injection (linear/compute)",
    )
    config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    units = chaos_units(config)
    outcomes_by_label = dict(zip([u.label for u in units], context.run(units)))
    topo_id = "linear-compute"
    for scenario_name, _ in SCENARIOS:
        for name, _factory in SCHEDULERS:
            outcome = outcomes_by_label[f"chaos:{scenario_name}/{name}"]
            recovery = outcome.recovery[topo_id]
            baseline = recovery.baseline_tuples_per_window
            post = recovery.post_fault_tuples_per_window
            result.add_series(
                f"{scenario_name}/{name}",
                outcome.report.throughput_series(topo_id),
            )
            result.add_row(
                scenario=scenario_name,
                scheduler=name,
                detect_s=_fmt(recovery.mean_detection_latency_s),
                resched_s=_fmt(recovery.mean_reschedule_latency_s),
                steady_s=_fmt(recovery.mean_time_to_steady_state_s),
                floor_ratio=_fmt(recovery.worst_throughput_floor_ratio, 3),
                post_vs_baseline=_fmt(
                    post / baseline if baseline else None, 3
                ),
                migrations=recovery.migrations,
                failed_tuples=recovery.total_failed_tuples,
                sched_failures=len(outcome.scheduling_failures),
            )
    result.note(
        "Both schedulers lose their own busiest node/rack at t=40s. "
        "detect_s = heartbeat-session expiry latency, resched_s = first "
        "migration applied, steady_s = windowed throughput back above 90% "
        "of the pre-fault baseline and holding. floor_ratio is the worst "
        "post-fault window relative to baseline."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
