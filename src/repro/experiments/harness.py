"""Shared experiment harness.

Each experiment module builds topologies, schedules them with the
schedulers under comparison, simulates, and reports rows/series through
:class:`ExperimentResult`, which both the CLI and the pytest-benchmark
suite consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.scheduler.assignment import Assignment
from repro.scheduler.base import IScheduler
from repro.scheduler.quality import ScheduleQuality, evaluate_assignment
from repro.simulation.config import SimulationConfig
from repro.simulation.report import SimulationReport
from repro.simulation.runtime import SimulationRun
from repro.topology.topology import Topology

__all__ = ["ExperimentResult", "SingleRunOutcome", "run_scheduled", "format_table"]


@dataclass
class SingleRunOutcome:
    """Everything measured for one (topology set, scheduler) simulation."""

    scheduler: str
    report: SimulationReport
    assignments: Dict[str, Assignment]
    qualities: Dict[str, ScheduleQuality]
    scheduling_latency_s: float

    def throughput(self, topology_id: str) -> float:
        return self.report.average_throughput_per_window(topology_id)


@dataclass
class ExperimentResult:
    """Rows + time series + free-form notes for one experiment."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def add_series(self, label: str, points: Sequence[Tuple[float, int]]) -> None:
        self.series[label] = list(points)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def format(self, include_series: bool = False) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        if include_series:
            for label, points in self.series.items():
                compact = " ".join(f"{int(v)}" for _, v in points)
                lines.append(f"series {label}: {compact}")
        return "\n".join(lines)

    def row_value(self, match: Mapping[str, Any], column: str) -> Any:
        """Look up a single cell: the first row whose fields contain
        ``match`` returns its ``column`` value."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row[column]
        raise KeyError(f"no row matching {dict(match)!r}")


def format_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.1f}"
        return str(value)

    widths = {
        col: max(len(col), *(len(cell(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(cell(row.get(col, "")).rjust(widths[col]) for col in columns)
        for row in rows
    ]
    return "\n".join([header, sep] + body)


def run_scheduled(
    scheduler: IScheduler,
    topologies: Sequence[Topology],
    cluster: Cluster,
    config: SimulationConfig,
    interrack_uplink_mbps: Optional[float] = None,
) -> SingleRunOutcome:
    """Schedule ``topologies`` onto ``cluster`` and simulate them."""
    round_info = scheduler.run(topologies, cluster)
    assignments = round_info.assignments
    qualities = {}
    extra = {
        t.topology_id: (t, assignments[t.topology_id]) for t in topologies
    }
    for topology in topologies:
        others = {
            tid: pair for tid, pair in extra.items() if tid != topology.topology_id
        }
        qualities[topology.topology_id] = evaluate_assignment(
            topology, assignments[topology.topology_id], cluster, others
        )
    run = SimulationRun(
        cluster,
        [(t, assignments[t.topology_id]) for t in topologies],
        config,
        interrack_uplink_mbps=interrack_uplink_mbps,
    )
    report = run.run()
    return SingleRunOutcome(
        scheduler=scheduler.name,
        report=report,
        assignments=assignments,
        qualities=qualities,
        scheduling_latency_s=round_info.duration_s,
    )
