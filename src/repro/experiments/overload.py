"""Open-loop overload sweep ("traffic"): offered load vs what survives.

The paper's benchmarks are closed-loop, so a bad placement just runs
slower.  Under open-loop traffic a bad placement *falls behind*: queues
absorb the gap until workers die of overflow, and tail latency explodes
long before mean throughput moves.  This experiment offers the Linear
compute topology Poisson traffic from 0.5x to 2x its nominal capacity
(the ``max_rate_tps`` cap closed-loop spouts run at: 250 tuples/s per
spout task) and compares how R-Storm's packed placement and default
Storm's spread placement degrade past saturation — offered vs achieved
throughput and p50/p99/p999 end-to-end latency per operating point.

Both schedulers face *the same* arrival sample at each multiplier:
arrival streams are seeded by (seed, topology, component, task), never
by placement, so the comparison is paired, not two draws.

A second section lands the same offered load on a fields-grouped
variant with uniform vs Zipf-distributed keys: skewed keys concentrate
traffic on one hot executor, which saturates while the component-level
averages still look healthy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.topology.builder import TopologyBuilder
from repro.topology.topology import Topology
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.keys import KeyGenerator, UniformKeys, ZipfKeys
from repro.workloads.micro import (
    _COMPUTE_PROFILE,
    _COMPUTE_RATE_TPS,
    _COMPUTE_SPOUT_PROFILE,
    linear_topology,
)

__all__ = ["run", "sweep_units", "keyed_linear_topology", "MULTIPLIERS",
           "BASE_RATE_TPS"]

#: Nominal per-spout-task capacity: the rate the closed-loop compute
#: benchmarks cap their spouts at (a quarter core at 1 ms/tuple).
BASE_RATE_TPS = _COMPUTE_RATE_TPS

#: Offered load as multiples of nominal capacity; the interesting knee
#: is between 1.0x and 1.25x.
MULTIPLIERS = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))

#: Key-skew section: operating point and key-space shape.  1.25x with a
#: Zipf(1.4) hot key (~1/3 of all traffic) drives one executor far past
#: its share while the uniform baseline still keeps up.
SKEW_MULTIPLIER = 1.25
SKEW_KEYS = 64
SKEW_EXPONENT = 1.4


def keyed_linear_topology(
    parallelism: int = 6, name: str = "linear-keyed"
) -> Topology:
    """The Linear compute topology with a fields-grouped first hop.

    Identical resources/profiles to ``linear_topology("compute")``, but
    spout -> bolt-1 partitions by the arrival key, so a skewed key
    generator lands unevenly across bolt-1's tasks.  Later hops stay
    shuffle-grouped (keys are per-arrival, not propagated down the
    tree).
    """
    builder = TopologyBuilder(name)
    spout = builder.set_spout(
        "spout", parallelism, profile=_COMPUTE_SPOUT_PROFILE
    )
    spout.set_memory_load(256.0).set_cpu_load(25.0)
    previous = "spout"
    for i in range(1, 4):
        bolt = builder.set_bolt(
            f"bolt-{i}", parallelism, profile=_COMPUTE_PROFILE
        )
        if i == 1:
            bolt.fields_grouping(previous)
        else:
            bolt.shuffle_grouping(previous)
        bolt.set_memory_load(256.0).set_cpu_load(25.0)
        previous = f"bolt-{i}"
    return builder.build()


def _sweep_config(duration_s: float, multiplier: float) -> SimulationConfig:
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        arrival_process=PoissonArrivals(rate_tps=BASE_RATE_TPS * multiplier),
    )


def _skew_config(
    duration_s: float, keys: KeyGenerator
) -> SimulationConfig:
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        arrival_process=PoissonArrivals(
            rate_tps=BASE_RATE_TPS * SKEW_MULTIPLIER
        ),
        arrival_keys=keys,
    )


def sweep_units(
    duration_s: float,
    multipliers: Sequence[float] = MULTIPLIERS,
):
    """The (multiplier, scheduler) grid as cacheable work units."""
    return [
        SimulationUnit(
            scheduler=spec(factory),
            topologies=(spec(linear_topology, "compute"),),
            cluster=spec(emulab_testbed),
            config=_sweep_config(duration_s, multiplier),
            label=f"traffic:{multiplier:g}x/{name}",
        )
        for multiplier in multipliers
        for name, factory in SCHEDULERS
    ]


def _skew_units(duration_s: float):
    generators: Tuple[Tuple[str, KeyGenerator], ...] = (
        ("uniform", UniformKeys(num_keys=SKEW_KEYS)),
        ("zipf", ZipfKeys(num_keys=SKEW_KEYS, exponent=SKEW_EXPONENT)),
    )
    return [
        SimulationUnit(
            scheduler=spec(RStormScheduler),
            topologies=(spec(keyed_linear_topology),),
            cluster=spec(emulab_testbed),
            config=_skew_config(duration_s, keys),
            label=f"traffic:keys/{name}",
        )
        for name, keys in generators
    ]


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
    multipliers: Sequence[float] = MULTIPLIERS,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="traffic",
        title=(
            "Open-loop overload sweep: offered vs achieved throughput and "
            "end-to-end tail latency"
        ),
    )
    units = sweep_units(duration_s, multipliers) + _skew_units(duration_s)
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )

    topo_id = "linear-compute"
    for multiplier in multipliers:
        for name, _ in SCHEDULERS:
            outcome = outcomes_by_label[f"traffic:{multiplier:g}x/{name}"]
            report = outcome.report
            latency = report.e2e_latency(topo_id)
            result.add_row(
                offered_x=multiplier,
                scheduler=name,
                offered_per_10s=round(report.offered_per_window(topo_id)),
                achieved_per_10s=round(
                    report.average_throughput_per_window(topo_id)
                ),
                achieved_ratio=round(report.achieved_ratio(topo_id), 3),
                e2e_p50_ms=round(latency.p50 * 1e3, 1),
                e2e_p99_ms=round(latency.p99 * 1e3, 1),
                e2e_p999_ms=round(latency.p999 * 1e3, 1),
                failed=report.failed(topo_id),
                crashes=report.crashes(topo_id),
            )
    # Degradation curves at the knee and deep overload.
    for multiplier in (1.0, 2.0):
        if multiplier not in multipliers:
            continue
        for name, _ in SCHEDULERS:
            outcome = outcomes_by_label[f"traffic:{multiplier:g}x/{name}"]
            result.add_series(
                f"{multiplier:g}x/{name}",
                outcome.report.throughput_series(topo_id),
            )
    if 2.0 in multipliers:
        outcome = outcomes_by_label["traffic:2x/r-storm"]
        result.add_series("2x/offered", outcome.report.offered_series(topo_id))

    keyed_id = "linear-keyed"
    zipf = ZipfKeys(num_keys=SKEW_KEYS, exponent=SKEW_EXPONENT)
    for name in ("uniform", "zipf"):
        outcome = outcomes_by_label[f"traffic:keys/{name}"]
        report = outcome.report
        latency = report.e2e_latency(keyed_id)
        result.add_row(
            offered_x=SKEW_MULTIPLIER,
            scheduler=f"r-storm/{name}-keys",
            offered_per_10s=round(report.offered_per_window(keyed_id)),
            achieved_per_10s=round(
                report.average_throughput_per_window(keyed_id)
            ),
            achieved_ratio=round(report.achieved_ratio(keyed_id), 3),
            e2e_p50_ms=round(latency.p50 * 1e3, 1),
            e2e_p99_ms=round(latency.p99 * 1e3, 1),
            e2e_p999_ms=round(latency.p999 * 1e3, 1),
            failed=report.failed(keyed_id),
            crashes=report.crashes(keyed_id),
        )
    result.note(
        "Offered load is Poisson per spout task at multiples of the "
        f"closed-loop rate cap ({BASE_RATE_TPS:g} tuples/s/task); both "
        "schedulers face identical arrival samples (streams are seeded "
        "by task identity, not placement)."
    )
    result.note(
        "Past 1x, p999 latency runs away before the achieved ratio "
        "moves.  R-Storm packs tasks to their declared capacity, so it "
        "has no headroom above 1x and degrades harder than default's "
        "spread placement — resource declarations must cover peak, not "
        "mean, load."
    )
    result.note(
        "The keyed rows offer identical load; the Zipf hot key "
        f"(~{zipf.hot_share(1):.0%} of traffic on one key) overloads a "
        "single executor, showing up as failed batches and a fatter "
        "tail than the uniform-key run at the same operating point."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
