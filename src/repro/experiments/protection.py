"""Overload protection: backpressure and shedding vs unbounded queues.

The traffic experiment established the failure mode this PR exists for:
past 1x offered load, unbounded queues absorb the gap until workers die
of overflow and p99 latency diverges.  This experiment turns the flow
layer on and measures what protection buys, on a workload built to
stress *internal* edges: the hotspot topology's narrow slow stage
(``bolt-1 -> bolt-2`` fan-in) fills first, so backpressure has to
propagate upstream edge-by-edge before the spouts throttle.

Three modes per (multiplier, scheduler) operating point:

* ``unprotected`` — the historical default: unbounded queues, crashes
  past saturation;
* ``backpressure`` — bounded queues + credit backpressure, no shedding:
  no tuple is ever dropped by policy, spouts throttle instead.  Under
  *open-loop* traffic the spout ingress queue still grows (arrivals
  cannot be refused without shedding), so deep overload can still crash
  spout workers — the documented limit of backpressure alone;
* ``backpressure+shed`` — bounded queues + tail-drop shedding: overload
  is converted into an audited shed ledger, crashes disappear, and p99
  stays bounded by the queue depth.

A second section runs a gold and a free topology side by side under the
``priority`` policy (thresholds from the tenant registry via
:func:`~repro.simulation.flowcontrol.tenant_priorities`): the free
tier's queues shed at a lower occupancy, so when the cluster drowns, the
free topology sheds first and the gold topology keeps the larger share
of its traffic.  The default scheduler's spread placement co-locates the
two tenants on every node, which is exactly when the decision of *whose*
tuple to shed matters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.nimbus.tenancy import Tenant
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.flowcontrol import FlowControlConfig, tenant_priorities
from repro.traffic.arrivals import PoissonArrivals
from repro.workloads.micro import _COMPUTE_RATE_TPS, hotspot_topology

__all__ = ["run", "sweep_units", "MODES", "MULTIPLIERS", "QUEUE_CAPACITY"]

#: Nominal per-spout-task capacity (the closed-loop rate cap).
BASE_RATE_TPS = _COMPUTE_RATE_TPS

#: Offered load multiples; 1.0x already overloads the narrow stage.
MULTIPLIERS = (1.0, 1.5, 2.0)

#: Bounded input-queue depth in batches.  32 batches of 50 tuples keeps
#: the worst-case queueing delay (and with it p99) bounded while leaving
#: enough credit for the pipeline to stay busy between stalls.
QUEUE_CAPACITY = 32

SCHEDULERS = (("r-storm", RStormScheduler), ("default", DefaultScheduler))

#: (mode label, flow config) — None is the unprotected baseline.
MODES = (
    ("unprotected", None),
    (
        "backpressure",
        FlowControlConfig(queue_capacity=QUEUE_CAPACITY, shedding="none"),
    ),
    (
        "backpressure+shed",
        FlowControlConfig(queue_capacity=QUEUE_CAPACITY, shedding="tail-drop"),
    ),
)

TOPO_ID = "hotspot-compute"

# -- priority section: gold sheds last ----------------------------------

GOLD_ID, FREE_ID = "hotspot-gold", "hotspot-free"
PRIORITY_MULTIPLIER = 1.0

_TENANTS = {
    "gold": Tenant("gold", priority=2),
    "free": Tenant("free", priority=0),
}
_OWNERS = {GOLD_ID: "gold", FREE_ID: "free"}


def _config(
    duration_s: float, multiplier: float, flow: Optional[FlowControlConfig]
) -> SimulationConfig:
    return SimulationConfig(
        duration_s=duration_s,
        warmup_s=min(20.0, duration_s / 4),
        arrival_process=PoissonArrivals(rate_tps=BASE_RATE_TPS * multiplier),
        flow=flow,
    )


def sweep_units(
    duration_s: float,
    multipliers: Sequence[float] = MULTIPLIERS,
):
    """The (multiplier, scheduler, mode) grid as cacheable work units."""
    return [
        SimulationUnit(
            scheduler=spec(factory),
            topologies=(spec(hotspot_topology),),
            cluster=spec(emulab_testbed),
            config=_config(duration_s, multiplier, flow),
            label=f"protect:{multiplier:g}x/{name}/{mode}",
        )
        for multiplier in multipliers
        for name, factory in SCHEDULERS
        for mode, flow in MODES
    ]


def _priority_units(duration_s: float):
    """Gold + free topologies sharing the cluster, tail-drop vs priority.

    Both runs face identical arrivals; only the shedding policy differs,
    so any gold/free asymmetry under ``priority`` is the policy's doing.
    """
    priorities = tenant_priorities(_TENANTS, _OWNERS)
    units = []
    for policy, pairs in (("tail-drop", ()), ("priority", priorities)):
        flow = FlowControlConfig(
            queue_capacity=QUEUE_CAPACITY,
            shedding=policy,
            priorities=pairs,
        )
        units.append(
            SimulationUnit(
                scheduler=spec(DefaultScheduler),
                topologies=(
                    spec(hotspot_topology, 3, 1, GOLD_ID),
                    spec(hotspot_topology, 3, 1, FREE_ID),
                ),
                cluster=spec(emulab_testbed),
                config=_config(duration_s, PRIORITY_MULTIPLIER, flow),
                label=f"protect:priority/{policy}",
            )
        )
    return units


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
    multipliers: Sequence[float] = MULTIPLIERS,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="overload-protection",
        title=(
            "Overload protection: bounded queues, credit backpressure and "
            "priority-aware load shedding vs the unbounded default"
        ),
    )
    units = sweep_units(duration_s, multipliers) + _priority_units(duration_s)
    outcomes_by_label = dict(
        zip([u.label for u in units], context.run(units))
    )

    for multiplier in multipliers:
        for name, _ in SCHEDULERS:
            for mode, flow in MODES:
                outcome = outcomes_by_label[
                    f"protect:{multiplier:g}x/{name}/{mode}"
                ]
                report = outcome.report
                latency = report.e2e_latency(TOPO_ID)
                row = dict(
                    offered_x=multiplier,
                    scheduler=name,
                    mode=mode,
                    offered_per_10s=round(report.offered_per_window(TOPO_ID)),
                    achieved_per_10s=round(
                        report.average_throughput_per_window(TOPO_ID)
                    ),
                    achieved_ratio=round(report.achieved_ratio(TOPO_ID), 3),
                    e2e_p99_ms=round(latency.p99 * 1e3, 1),
                    failed=report.failed(TOPO_ID),
                    crashes=report.crashes(TOPO_ID),
                )
                if flow is not None:
                    row.update(
                        shed=report.shed(TOPO_ID),
                        shed_rate=round(report.shed_rate(TOPO_ID), 3),
                        throttled_s=round(
                            report.spout_throttled_s(TOPO_ID), 1
                        ),
                        stalls=report.credit_stall_total(TOPO_ID),
                    )
                result.add_row(**row)

    # Degradation curves at deep overload: achieved throughput under
    # each mode against the common offered series.
    knee = 1.5 if 1.5 in multipliers else multipliers[-1]
    for name, _ in SCHEDULERS:
        for mode, _ in MODES:
            outcome = outcomes_by_label[f"protect:{knee:g}x/{name}/{mode}"]
            result.add_series(
                f"{knee:g}x/{name}/{mode}",
                outcome.report.throughput_series(TOPO_ID),
            )
    outcome = outcomes_by_label[f"protect:{knee:g}x/r-storm/unprotected"]
    result.add_series(
        f"{knee:g}x/offered", outcome.report.offered_series(TOPO_ID)
    )
    shed_outcome = outcomes_by_label[
        f"protect:{knee:g}x/r-storm/backpressure+shed"
    ]
    result.add_series(
        f"{knee:g}x/r-storm/shed",
        shed_outcome.report.shed_series(TOPO_ID),
    )

    for policy in ("tail-drop", "priority"):
        outcome = outcomes_by_label[f"protect:priority/{policy}"]
        report = outcome.report
        for topo_id, tier in ((GOLD_ID, "gold"), (FREE_ID, "free")):
            latency = report.e2e_latency(topo_id)
            result.add_row(
                offered_x=PRIORITY_MULTIPLIER,
                scheduler="default",
                mode=f"{policy}/{tier}",
                offered_per_10s=round(report.offered_per_window(topo_id)),
                achieved_per_10s=round(
                    report.average_throughput_per_window(topo_id)
                ),
                achieved_ratio=round(report.achieved_ratio(topo_id), 3),
                e2e_p99_ms=round(latency.p99 * 1e3, 1),
                failed=report.failed(topo_id),
                crashes=report.crashes(topo_id),
                shed=report.shed(topo_id),
                shed_rate=round(report.shed_rate(topo_id), 3),
                throttled_s=round(report.spout_throttled_s(topo_id), 1),
                stalls=report.credit_stall_total(topo_id),
            )

    result.note(
        "The hotspot topology's narrow slow stage (bolt-1 -> bolt-2 "
        "fan-in) is the structural bottleneck: no placement can "
        "schedule it away, so every operating point past its capacity "
        "must queue, crash, throttle or shed."
    )
    result.note(
        "Unprotected runs convert overload into worker crashes and "
        "mass tuple timeouts; backpressure converts it into throttled "
        "spout time (zero failed tuples) but open-loop arrivals still "
        "pile up at the spout ingress; backpressure+shed converts it "
        "into an audited shed ledger with zero crashes and a p99 "
        "bounded by the queue depth."
    )
    result.note(
        "Priority rows: gold and free run the same topology under "
        "identical arrivals on shared nodes.  tail-drop sheds them "
        "evenly; the priority policy (thresholds from the tenant "
        "registry) moves the shedding onto the free tier — free sheds "
        "earlier and more while gold's shed rate stays at its "
        "tail-drop level, so gold's traffic is the last to go."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
