"""Experiments reproducing every figure of the paper's evaluation."""

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    elastic,
    fault_recovery,
    fig10_cpu_utilization,
    fig12_yahoo,
    fig13_multi_topology,
    fig8_network_bound,
    fig9_compute_bound,
    overload,
    protection,
    scalability,
    scheduling_overhead,
    tenants,
    weight_sweep,
)
from repro.experiments.cache import ResultCache, cache_key, stable_token
from repro.experiments.harness import (
    ExperimentResult,
    SingleRunOutcome,
    format_table,
    run_scheduled,
)
from repro.experiments.parallel import (
    ChaosOutcome,
    ChaosUnit,
    ElasticOutcome,
    ElasticUnit,
    ExperimentContext,
    FactorySpec,
    ScheduleOutcome,
    ScheduleUnit,
    SimulationUnit,
    TenantOutcome,
    TenantUnit,
    run_units,
    spec,
)

#: Registry used by the CLI and the benchmark suite.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig8": fig8_network_bound.run,
    "fig9": fig9_compute_bound.run,
    "fig10": fig10_cpu_utilization.run,
    "fig12": fig12_yahoo.run,
    "fig13": fig13_multi_topology.run,
    "overhead": scheduling_overhead.run,
    "ablations": ablations.run,
    "weights": weight_sweep.run,
    "scalability": scalability.run,
    "chaos": fault_recovery.run,
    "traffic": overload.run,
    "elastic": elastic.run,
    "tenants": tenants.run,
    "protection": protection.run,
}

__all__ = [
    "ChaosOutcome",
    "ChaosUnit",
    "ElasticOutcome",
    "ElasticUnit",
    "ExperimentContext",
    "ExperimentResult",
    "FactorySpec",
    "REGISTRY",
    "ResultCache",
    "ScheduleOutcome",
    "ScheduleUnit",
    "SimulationUnit",
    "SingleRunOutcome",
    "TenantOutcome",
    "TenantUnit",
    "cache_key",
    "format_table",
    "run_scheduled",
    "run_units",
    "spec",
    "stable_token",
]
