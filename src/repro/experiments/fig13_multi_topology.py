"""Figure 13 — scheduling multiple topologies on a 24-node cluster.

Both Yahoo topologies (Processing submitted first, then PageLoad) share a
24-machine, two-rack cluster.  The paper reports:

* R-Storm: PageLoad 25,496 tuples/10 s, Processing 67,115 tuples/10 s;
* default: PageLoad 16,695 tuples/10 s (-35%), Processing ~10 tuples/10 s
  — "grinded to a near halt": default Storm co-locates the Processing
  topology's memory-hungry session joiners with PageLoad tasks, blowing
  through physical memory on those machines.

Absolute tuple rates differ on the simulated substrate; the comparisons —
R-Storm healthy on both, default degrading PageLoad and effectively
killing Processing — are the reproduction target.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builders import emulab_testbed
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.quality import aggregate_node_load
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.yahoo import (
    pageload_topology,
    processing_topology,
    yahoo_simulation_config,
)

__all__ = ["run", "PAPER_TUPLES_PER_10S"]

#: The paper's reported averages (tuples per 10 s).
PAPER_TUPLES_PER_10S = {
    ("r-storm", "pageload"): 25496,
    ("r-storm", "processing"): 67115,
    ("default", "pageload"): 16695,
    ("default", "processing"): 10,
}

NODES_PER_RACK = 12  # 24-machine cluster, two racks


def run(
    duration_s: float = 120.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="fig13",
        title="Multi-topology scheduling on 24 nodes (tuples per 10 s window)",
    )
    config = yahoo_simulation_config(duration_s)
    schedulers = (("r-storm", RStormScheduler), ("default", DefaultScheduler))
    units = [
        SimulationUnit(
            scheduler=spec(factory),
            # submission order matters: Processing first, as in the paper
            topologies=(spec(processing_topology), spec(pageload_topology)),
            cluster=spec(emulab_testbed, nodes_per_rack=NODES_PER_RACK),
            config=config,
            label=name,
        )
        for name, factory in schedulers
    ]
    outcomes = context.run(units)
    for (name, _), outcome in zip(schedulers, outcomes):
        cluster = emulab_testbed(nodes_per_rack=NODES_PER_RACK)
        overcommitted = _overcommitted_nodes(outcome, cluster)
        for topo_id in ("pageload", "processing"):
            thr = outcome.throughput(topo_id)
            result.add_row(
                scheduler=name,
                topology=topo_id,
                tuples_per_10s=round(thr),
                paper_tuples_per_10s=PAPER_TUPLES_PER_10S[(name, topo_id)],
                nodes_used=len(outcome.assignments[topo_id].nodes),
                worker_crashes=outcome.report.crashes(topo_id),
                memory_overcommitted_nodes=overcommitted,
            )
            result.add_series(
                f"{topo_id}/{name}",
                outcome.report.throughput_series(topo_id),
            )
    result.note(
        "memory_overcommitted_nodes counts machines whose summed resident "
        "memory exceeds physical capacity — always 0 for R-Storm (hard "
        "constraint), and the thrashing machines that flatten Processing "
        "under default Storm."
    )
    return result


def _overcommitted_nodes(outcome, cluster) -> int:
    """Machines whose summed resident memory exceeds physical capacity."""
    topologies = {
        "pageload": pageload_topology(),
        "processing": processing_topology(),
    }
    pairs = [
        (topologies[tid], assignment)
        for tid, assignment in outcome.assignments.items()
    ]
    load = aggregate_node_load(pairs)
    over = 0
    for node_id, demand in load.items():
        node = cluster.node(node_id)
        if demand.memory_mb > node.capacity.memory_mb + 1e-9:
            over += 1
    return over


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
