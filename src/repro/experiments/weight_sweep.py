"""Distance-weight sweep.

The paper lets users weight the soft constraints ("allowing users to
decide which constraints are more valued", Section 4).  This experiment
sweeps the CPU-vs-network weighting of R-Storm's distance function on
the network-bound Linear topology and on PageLoad-over-heterogeneous-
machines, showing where each term earns its keep.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.builders import emulab_testbed
from repro.experiments.ablations import make_ablation_cluster
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import ExperimentContext, SimulationUnit, spec
from repro.scheduler.rstorm import DistanceWeights, RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.workloads.micro import NETWORK_BOUND_UPLINK_MBPS, linear_topology
from repro.workloads.yahoo import pageload_topology, yahoo_simulation_config

__all__ = ["run", "WEIGHTS"]

#: (label, weights) grid: network emphasis rises left to right.
WEIGHTS: List[Tuple[str, DistanceWeights]] = [
    ("cpu-only (net=0)", DistanceWeights(memory=0.5, cpu=1.0, network=0.0)),
    ("net=0.25", DistanceWeights(memory=0.5, cpu=1.0, network=0.25)),
    ("balanced (paper-ish)", DistanceWeights(memory=0.5, cpu=1.0, network=1.0)),
    ("net=4", DistanceWeights(memory=0.5, cpu=1.0, network=4.0)),
    ("net-only (cpu=0)", DistanceWeights(memory=0.0, cpu=0.0, network=1.0)),
]


def run(
    duration_s: float = 90.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="weights",
        title="Distance-weight sweep (R-Storm soft-constraint weights)",
    )
    micro_config = SimulationConfig(
        duration_s=duration_s, warmup_s=min(20.0, duration_s / 4)
    )
    yahoo_config = yahoo_simulation_config(duration_s)
    units = []
    for label, weights in WEIGHTS:
        units.append(
            SimulationUnit(
                scheduler=spec(RStormScheduler, weights=weights),
                topologies=(spec(linear_topology, "network"),),
                cluster=spec(emulab_testbed),
                config=micro_config,
                interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS,
                label=f"micro/{label}",
            )
        )
        units.append(
            SimulationUnit(
                scheduler=spec(RStormScheduler, weights=weights),
                topologies=(spec(pageload_topology),),
                cluster=spec(make_ablation_cluster),
                config=yahoo_config,
                label=f"prod/{label}",
            )
        )
    outcomes = context.run(units)
    for i, (label, _) in enumerate(WEIGHTS):
        micro, prod = outcomes[2 * i], outcomes[2 * i + 1]
        micro_topo_id = "linear-network"
        micro_quality = micro.qualities[micro_topo_id]
        result.add_row(
            weights=label,
            linear_net_tuples_per_10s=round(micro.throughput(micro_topo_id)),
            linear_mean_netdist=round(micro_quality.mean_network_distance, 2),
            pageload_hetero_tuples_per_10s=round(prod.throughput("pageload")),
            pageload_cpu_overcommit=round(
                prod.qualities["pageload"].max_cpu_overcommit, 2
            ),
        )
    result.note(
        "On the homogeneous testbed with uniform demands the weights "
        "barely matter (identical machines tie on every metric); on the "
        "heterogeneous cluster dropping the CPU term costs throughput. "
        "This insensitivity on uniform clusters is itself a finding: the "
        "defaults are safe, and tuning only pays off when machines differ."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
