"""Ablations of R-Storm's design choices (DESIGN.md section
"Design choices called out for ablation").

Each ablation disables or swaps one ingredient of the scheduler and
re-runs the PageLoad production topology on a *heterogeneous* two-rack
cluster (big/medium/small machines).  On the paper's homogeneous testbed
with uniform demands every distance variant ties — the interesting
differences appear exactly when machines differ, which is the regime the
knobs exist for:

* task ordering: BFS (paper) vs DFS vs topological;
* the ref-node network-distance term: on (paper) vs off;
* gap normalisation: capacity-normalised (library default) vs raw gaps;
* soft-overcommit preference: on (library default) vs paper-literal
  minimum distance, which happily over-commits CPU;
* distance weights: a network-heavy weighting;
* the Aniello et al. offline scheduler and default Storm as baselines.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.builders import heterogeneous_cluster
from repro.cluster.resources import ResourceVector
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import (
    ExperimentContext,
    FactorySpec,
    SimulationUnit,
    spec,
)
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.ordering import TaskOrderingStrategy
from repro.scheduler.rstorm import DistanceWeights, RStormScheduler
from repro.workloads.yahoo import pageload_topology, yahoo_simulation_config

__all__ = ["run", "VARIANTS", "make_ablation_cluster"]


def make_ablation_cluster():
    """Two racks of mixed machines: the regime where R-Storm's distance
    design choices actually change placements."""
    big = ResourceVector.of(memory_mb=4096.0, cpu=200.0, bandwidth_mbps=100.0)
    med = ResourceVector.of(memory_mb=2048.0, cpu=100.0, bandwidth_mbps=100.0)
    small = ResourceVector.of(memory_mb=1024.0, cpu=100.0, bandwidth_mbps=100.0)
    return heterogeneous_cluster(
        [
            [big, big, med, med, small, small],
            [med, med, med, med, small, small],
        ],
        name="ablation",
    )


def _variants() -> Dict[str, FactorySpec]:
    return {
        "r-storm (paper)": spec(RStormScheduler),
        "ordering=dfs": spec(RStormScheduler, ordering=TaskOrderingStrategy.DFS),
        "ordering=topological": spec(
            RStormScheduler, ordering=TaskOrderingStrategy.TOPOLOGICAL
        ),
        "no-network-term": spec(RStormScheduler, use_network_distance=False),
        "raw-gaps": spec(RStormScheduler, normalise_gaps=False),
        "allow-overcommit": spec(RStormScheduler, prefer_no_overcommit=False),
        "network-heavy-weights": spec(
            RStormScheduler,
            weights=DistanceWeights(memory=0.5, cpu=1.0, network=10.0),
        ),
        "aniello-offline": spec(AnielloOfflineScheduler),
        "default": spec(DefaultScheduler),
    }


VARIANTS = tuple(_variants().keys())


def run(
    duration_s: float = 90.0,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    context = context or ExperimentContext()
    result = ExperimentResult(
        experiment_id="ablations",
        title=(
            "R-Storm ablations: PageLoad on a heterogeneous two-rack cluster"
        ),
    )
    config = yahoo_simulation_config(duration_s)
    variants = _variants()
    units = [
        SimulationUnit(
            scheduler=scheduler_spec,
            topologies=(spec(pageload_topology),),
            cluster=spec(make_ablation_cluster),
            config=config,
            label=label,
        )
        for label, scheduler_spec in variants.items()
    ]
    outcomes = context.run(units)
    baseline_throughput = None
    for label, outcome in zip(variants, outcomes):
        topo_id = "pageload"
        throughput = outcome.throughput(topo_id)
        if baseline_throughput is None:
            baseline_throughput = throughput
        quality = outcome.qualities[topo_id]
        result.add_row(
            variant=label,
            tuples_per_10s=round(throughput),
            vs_paper_variant_pct=round(
                (throughput / baseline_throughput - 1.0) * 100.0, 1
            )
            if baseline_throughput
            else 0.0,
            nodes_used=quality.nodes_used,
            mean_netdist=round(quality.mean_network_distance, 2),
            cpu_overcommit=round(quality.max_cpu_overcommit, 2),
            crashes=outcome.report.crashes(topo_id),
        )
    result.note(
        "The first row is the paper's configuration; deltas show what "
        "each ingredient is worth when machines are heterogeneous."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
