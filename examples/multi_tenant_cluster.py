#!/usr/bin/env python3
"""Multi-tenancy: two production topologies sharing a 24-node cluster
(paper Figure 13).

Submits the Processing and PageLoad topologies to the same cluster under
each scheduler.  R-Storm's hard memory constraint keeps every machine
within its physical budget; default Storm co-locates the Processing
topology's 1.2 GB session-joiner tasks with PageLoad tasks, pushing those
machines past physical memory — they thrash, and Processing's throughput
"grinds to a near halt" exactly as the paper reports.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import DefaultScheduler, RStormScheduler, SimulationRun, emulab_testbed
from repro.scheduler.quality import aggregate_node_load
from repro.workloads import pageload_topology, processing_topology
from repro.workloads.yahoo import yahoo_simulation_config


def main() -> None:
    config = yahoo_simulation_config(duration_s=120.0)
    for scheduler in (RStormScheduler(), DefaultScheduler()):
        processing = processing_topology()
        pageload = pageload_topology()
        cluster = emulab_testbed(nodes_per_rack=12)  # 24 machines

        assignments = scheduler.schedule([processing, pageload], cluster)
        load = aggregate_node_load(
            [
                (processing, assignments["processing"]),
                (pageload, assignments["pageload"]),
            ]
        )
        over = {
            node_id: demand.memory_mb
            for node_id, demand in load.items()
            if demand.memory_mb > cluster.node(node_id).capacity.memory_mb
        }

        report = SimulationRun(
            cluster,
            [
                (processing, assignments["processing"]),
                (pageload, assignments["pageload"]),
            ],
            config,
        ).run()

        print(f"=== {scheduler.name} ===")
        if over:
            print(f"machines over physical memory ({len(over)}):")
            for node_id, mb in sorted(over.items()):
                print(f"  {node_id}: {mb:.0f} MB resident vs 2048 MB physical")
        else:
            print("machines over physical memory: none")
        for topo_id in ("pageload", "processing"):
            print(
                f"  {topo_id:10s}: "
                f"{report.average_throughput_per_window(topo_id):9,.0f} tuples/10s "
                f"on {len(assignments[topo_id].nodes)} nodes "
                f"({report.crashes(topo_id)} worker crashes)"
            )
        print()


if __name__ == "__main__":
    main()
