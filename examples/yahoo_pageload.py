#!/usr/bin/env python3
"""Production scenario: the Yahoo! PageLoad topology (paper Figure 12a).

Schedules the advertising-analytics PageLoad topology on the paper's
12-node cluster under R-Storm and default Storm, prints the per-window
throughput timeline (the paper's Figure 12a is exactly this plot), and
explains the placement difference that causes the gap.

Run:  python examples/yahoo_pageload.py
"""

from collections import Counter

from repro import DefaultScheduler, RStormScheduler, SimulationRun, emulab_testbed
from repro.scheduler import evaluate_assignment
from repro.workloads import pageload_topology
from repro.workloads.yahoo import yahoo_simulation_config


def describe_placement(topology, assignment) -> str:
    per_node = Counter(assignment.node_of(t) for t in assignment.tasks)
    return ", ".join(f"{node}:{count}" for node, count in sorted(per_node.items()))


def main() -> None:
    config = yahoo_simulation_config(duration_s=120.0)
    results = {}
    for scheduler in (RStormScheduler(), DefaultScheduler()):
        topology = pageload_topology()
        cluster = emulab_testbed()
        assignment = scheduler.schedule([topology], cluster)[
            topology.topology_id
        ]
        report = SimulationRun(cluster, [(topology, assignment)], config).run()
        quality = evaluate_assignment(topology, assignment, cluster)
        results[scheduler.name] = (topology, assignment, report, quality)

    for name, (topology, assignment, report, quality) in results.items():
        topo_id = topology.topology_id
        print(f"=== {name} ===")
        print(f"placement: {describe_placement(topology, assignment)}")
        print(
            f"max CPU over-commit on any node: "
            f"{quality.max_cpu_overcommit:.2f}x "
            f"(>1.0 means an over-utilised machine)"
        )
        print(f"worker crashes during run: {report.crashes(topo_id)}")
        print("throughput timeline (tuples per 10 s window):")
        series = report.throughput_series(topo_id)
        for start, tuples in series:
            bar = "#" * int(tuples / 1500)
            print(f"  t={start:5.0f}s {tuples:8d} {bar}")
        print(
            f"steady-state average: "
            f"{report.average_throughput_per_window(topo_id):,.0f} tuples/10s"
        )
        print()

    r = results["r-storm"][2].average_throughput_per_window("pageload")
    d = results["default"][2].average_throughput_per_window("pageload")
    print(f"R-Storm improvement over default: {(r / d - 1) * 100:+.0f}% "
          f"(the paper reports ~+50%)")


if __name__ == "__main__":
    main()
