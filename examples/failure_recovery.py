#!/usr/bin/env python3
"""Failure recovery: Nimbus reschedules a topology after a node dies.

Runs the full coordination plane — supervisors registered in the
in-memory ZooKeeper, Nimbus invoking R-Storm every 10 simulated seconds —
attached to a live simulation.  At t=63 s — mid-way between
scheduling ticks — one of the machines hosting the topology crashes (its
supervisor session expires); on its next tick Nimbus observes the
membership change, R-Storm re-places the orphaned tasks (respecting
resource budgets), and the simulation migrates them.  The throughput
timeline shows the outage dip and the recovery; tuples stranded on the
dead machine time out and count as failed, exactly as in Storm.

Run:  python examples/failure_recovery.py
"""

from repro import (
    InMemoryZooKeeper,
    Nimbus,
    RStormScheduler,
    SimulationConfig,
    SimulationRun,
    Supervisor,
    emulab_testbed,
)
from repro.workloads import linear_topology


def main() -> None:
    cluster = emulab_testbed()
    zk = InMemoryZooKeeper()
    supervisors = {
        node.node_id: Supervisor(node, zk) for node in cluster.nodes
    }
    nimbus = Nimbus(cluster, scheduler=RStormScheduler(), zk=zk)
    for supervisor in supervisors.values():
        nimbus.register_supervisor(supervisor)

    topology = linear_topology("network")
    nimbus.submit_topology(topology)
    nimbus.schedule_round()
    assignment = nimbus.assignments[topology.topology_id]
    print(f"initial placement on nodes: {', '.join(assignment.nodes)}")

    config = SimulationConfig(duration_s=180.0, warmup_s=20.0)
    run = SimulationRun(cluster, [(topology, assignment)], config)
    nimbus.attach(run)  # periodic scheduling ticks inside the simulation

    victim = assignment.nodes[0]

    def kill_node() -> None:
        print(f"[t={run.sim.now:.0f}s] node {victim} crashes")
        supervisors[victim].crash()  # expires the ZooKeeper session too

    run.on_time(63.0, kill_node)
    report = run.run()

    final = nimbus.assignments[topology.topology_id]
    print(f"final placement on nodes  : {', '.join(final.nodes)}")
    print(f"scheduling rounds executed: {len(nimbus.rounds)}")
    print("throughput timeline (tuples per 10 s window):")
    for start, tuples in report.throughput_series(topology.topology_id):
        marker = " <- failure at t=63s" if start == 60.0 else ""
        print(f"  t={start:5.0f}s {tuples:9,d}{marker}")
    print(f"failed (timed-out) tuples : {report.failed(topology.topology_id):,}")


if __name__ == "__main__":
    main()
