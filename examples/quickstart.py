#!/usr/bin/env python3
"""Quickstart: declare a topology, schedule it, simulate it.

Builds a small word-count-style topology with the paper's user API
(Section 5.2: ``set_memory_load`` / ``set_cpu_load``), schedules it onto
the paper's 12-node two-rack testbed with both R-Storm and default
Storm, runs each schedule in the discrete-event simulator, and prints
throughput plus placement quality.  The source emits at a fixed 2,000
tuples/s per spout task (it reads an external feed), so both schedules
keep up — but R-Storm does it on a quarter of the machines with a
fraction of the network traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    DefaultScheduler,
    ExecutionProfile,
    RStormScheduler,
    SimulationConfig,
    SimulationRun,
    TopologyBuilder,
    emulab_testbed,
    evaluate_assignment,
)


def build_topology():
    builder = TopologyBuilder("wordcount")

    sentences = builder.set_spout(
        "sentences",
        parallelism=4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.02, tuple_bytes=256, max_rate_tps=2000.0
        ),
    )
    # The paper's API: declare what one task of this component needs.
    sentences.set_memory_load(512.0).set_cpu_load(25.0)

    split = builder.set_bolt(
        "split",
        parallelism=4,
        profile=ExecutionProfile(
            cpu_ms_per_tuple=0.05, output_ratio=5.0, tuple_bytes=32
        ),
    )
    split.shuffle_grouping("sentences")
    split.set_memory_load(512.0).set_cpu_load(25.0)

    count = builder.set_bolt(
        "count",
        parallelism=4,
        profile=ExecutionProfile(cpu_ms_per_tuple=0.02, tuple_bytes=32),
    )
    count.fields_grouping("split", fields=("word",))
    count.set_memory_load(512.0).set_cpu_load(25.0)

    return builder.build()


def main() -> None:
    config = SimulationConfig(duration_s=60.0, warmup_s=15.0)
    for scheduler in (RStormScheduler(), DefaultScheduler()):
        topology = build_topology()
        cluster = emulab_testbed()

        assignment = scheduler.schedule([topology], cluster)[
            topology.topology_id
        ]
        quality = evaluate_assignment(topology, assignment, cluster)
        report = SimulationRun(cluster, [(topology, assignment)], config).run()

        throughput = report.average_throughput_per_window(topology.topology_id)
        print(f"--- {scheduler.name} ---")
        print(f"  nodes used            : {quality.nodes_used}")
        print(f"  mean network distance : {quality.mean_network_distance:.2f}")
        print(f"  throughput            : {throughput:,.0f} tuples / 10 s")
        print(f"  ack latency (p50)     : "
              f"{report.ack_latency(topology.topology_id).p50 * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
