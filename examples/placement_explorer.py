#!/usr/bin/env python3
"""Placement exploration: visualise schedules and predict them analytically.

Uses two of the library's analysis tools on the diamond micro-benchmark:

* :func:`repro.scheduler.render_assignments` draws the rack/node/slot
  placement each scheduler produced (the paper's Figure 3, in ASCII);
* :class:`repro.analysis.FlowModel` predicts each placement's steady-state
  throughput and names its bottleneck *without* running the simulator,
  then the discrete-event simulator checks the prediction.

Run:  python examples/placement_explorer.py
"""

from repro import DefaultScheduler, RStormScheduler, SimulationConfig, SimulationRun
from repro.analysis import FlowModel
from repro.cluster import emulab_testbed
from repro.scheduler import render_assignments, render_node_loads
from repro.workloads import diamond_topology
from repro.workloads.micro import NETWORK_BOUND_UPLINK_MBPS


def main() -> None:
    for scheduler in (RStormScheduler(), DefaultScheduler()):
        topology = diamond_topology("network")
        cluster = emulab_testbed()
        assignment = scheduler.schedule([topology], cluster)[
            topology.topology_id
        ]

        print(f"=== {scheduler.name} ===")
        print(render_assignments(cluster, [(topology, assignment)]))
        print()
        print(render_node_loads(cluster, [(topology, assignment)]))

        flow = FlowModel(
            cluster, interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS
        ).solve([(topology, assignment)])
        predicted = flow.throughput_per_window(topology.topology_id)
        print(
            f"\nflow model: {predicted:,.0f} tuples/10s predicted, "
            f"bottleneck = {flow.bottlenecks[topology.topology_id]}"
        )

        report = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=60.0, warmup_s=15.0),
            interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS,
        ).run()
        measured = report.average_throughput_per_window(topology.topology_id)
        print(f"simulator : {measured:,.0f} tuples/10s measured")
        if predicted:
            print(f"prediction error: {abs(measured - predicted) / predicted * 100:.0f}%")
        print()


if __name__ == "__main__":
    main()
