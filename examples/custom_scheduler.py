#!/usr/bin/env python3
"""Extending the library: plug in a custom scheduler.

Implements a deliberately naive "pack-everything-on-one-node" scheduler
against the same ``IScheduler`` contract R-Storm uses, then compares it,
R-Storm, the Aniello et al. offline baseline, and default Storm on the
network-bound Diamond micro-benchmark.

Run:  python examples/custom_scheduler.py
"""

from typing import Dict, Mapping, Optional, Sequence

from repro import (
    AnielloOfflineScheduler,
    Assignment,
    Cluster,
    DefaultScheduler,
    IScheduler,
    RStormScheduler,
    SchedulingError,
    SimulationConfig,
    SimulationRun,
    Topology,
    emulab_testbed,
)
from repro.workloads import diamond_topology
from repro.workloads.micro import NETWORK_BOUND_UPLINK_MBPS


class OneNodeScheduler(IScheduler):
    """Put every task of every topology into the first slot of the first
    alive node that satisfies the memory budget.  Maximum locality,
    catastrophic CPU contention — a useful foil for R-Storm's balance."""

    name = "one-node"

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            placed = False
            for node in sorted(cluster.alive_nodes, key=lambda n: n.node_id):
                if node.available.memory_mb >= topology.total_demand().memory_mb:
                    slot = node.slots[0]
                    result[topology.topology_id] = Assignment(
                        topology.topology_id,
                        {task: slot for task in topology.tasks},
                    )
                    placed = True
                    break
            if not placed:
                raise SchedulingError(
                    f"no single node can hold {topology.topology_id!r}",
                    unassigned=topology.tasks,
                )
        return result


def main() -> None:
    config = SimulationConfig(duration_s=60.0, warmup_s=15.0)
    schedulers = [
        RStormScheduler(),
        DefaultScheduler(),
        AnielloOfflineScheduler(),
        OneNodeScheduler(),
    ]
    print(f"{'scheduler':18s} {'nodes':>5s} {'tuples/10s':>12s}")
    for scheduler in schedulers:
        topology = diamond_topology("network")
        cluster = emulab_testbed()
        try:
            assignment = scheduler.schedule([topology], cluster)[
                topology.topology_id
            ]
        except SchedulingError as exc:
            print(f"{scheduler.name:18s} failed: {exc}")
            continue
        report = SimulationRun(
            cluster,
            [(topology, assignment)],
            config,
            interrack_uplink_mbps=NETWORK_BOUND_UPLINK_MBPS,
        ).run()
        throughput = report.average_throughput_per_window(topology.topology_id)
        print(
            f"{scheduler.name:18s} {len(assignment.nodes):5d} "
            f"{throughput:12,.0f}"
        )


if __name__ == "__main__":
    main()
