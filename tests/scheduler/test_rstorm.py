"""Tests for the R-Storm scheduler (Algorithms 1, 3, 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ResourceVector,
    emulab_testbed,
    heterogeneous_cluster,
    single_rack_cluster,
    uniform_cluster,
)
from repro.errors import SchedulingError
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.ordering import TaskOrderingStrategy
from repro.scheduler.quality import aggregate_node_load, evaluate_assignment
from repro.scheduler.rstorm import DistanceWeights, RStormScheduler
from repro.topology.builder import TopologyBuilder
from tests.conftest import make_linear


class TestDistanceWeights:
    def test_defaults_valid(self):
        weights = DistanceWeights()
        assert weights.cpu == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DistanceWeights(memory=-1.0)


class TestBasicScheduling:
    def test_complete_assignment(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_packs_fewer_nodes_than_default(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3, memory_mb=256, cpu=20)
        rstorm = RStormScheduler().schedule([topology], cluster)["chain"]
        cluster2 = emulab_testbed()
        default = DefaultScheduler().schedule([topology], cluster2)["chain"]
        assert len(rstorm.nodes) < len(default.nodes)

    def test_anchors_in_a_single_rack_when_possible(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=2, stages=3, memory_mb=256, cpu=20)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        racks = {cluster.node(n).rack_id for n in assignment.nodes}
        assert len(racks) == 1

    def test_better_network_distance_than_default(self):
        topology = make_linear(parallelism=4, stages=3, memory_mb=256, cpu=20)
        c1, c2 = emulab_testbed(), emulab_testbed()
        r = RStormScheduler().schedule([topology], c1)["chain"]
        d = DefaultScheduler().schedule([topology], c2)["chain"]
        rq = evaluate_assignment(topology, r, c1)
        dq = evaluate_assignment(topology, d, c2)
        assert rq.mean_network_distance < dq.mean_network_distance

    def test_one_worker_per_topology_per_node(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        assert len(assignment.slots) == len(assignment.nodes)

    def test_reservations_applied_to_cluster(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=2, stages=2, memory_mb=512)
        RStormScheduler().schedule([topology], cluster)
        total_reserved = sum(
            demand.memory_mb
            for node in cluster.nodes
            for demand in node.reservations.values()
        )
        assert total_reserved == 4 * 512


class TestHardConstraints:
    def test_never_overcommits_memory(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=6, stages=4, memory_mb=500, cpu=5)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        load = aggregate_node_load([(topology, assignment)])
        for node_id, demand in load.items():
            assert demand.memory_mb <= cluster.node(node_id).capacity.memory_mb

    def test_infeasible_task_raises_with_unassigned(self):
        cluster = single_rack_cluster(
            2, capacity=ResourceVector.of(memory_mb=100, cpu=100, bandwidth_mbps=100)
        )
        topology = make_linear(memory_mb=101.0)
        with pytest.raises(SchedulingError) as excinfo:
            RStormScheduler().schedule([topology], cluster)
        assert excinfo.value.unassigned

    def test_failed_topology_rolls_back_reservations(self):
        cluster = single_rack_cluster(
            2, capacity=ResourceVector.of(memory_mb=1000, cpu=100, bandwidth_mbps=100)
        )
        # 10 tasks x 300 MB > 2 x 1000 MB: fails partway through
        topology = make_linear(parallelism=5, stages=2, memory_mb=300.0)
        with pytest.raises(SchedulingError):
            RStormScheduler().schedule([topology], cluster)
        for node in cluster.nodes:
            assert node.available == node.capacity

    def test_best_effort_returns_partial(self):
        cluster = single_rack_cluster(
            2, capacity=ResourceVector.of(memory_mb=1000, cpu=100, bandwidth_mbps=100)
        )
        topology = make_linear(parallelism=5, stages=2, memory_mb=300.0)
        scheduler = RStormScheduler(best_effort=True)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert 0 < len(assignment) < topology.num_tasks

    def test_soft_constraints_may_overcommit_when_tight(self):
        cluster = single_rack_cluster(
            1, capacity=ResourceVector.of(memory_mb=4096, cpu=100, bandwidth_mbps=100)
        )
        # CPU demand 4 x 50 = 200 > 100, memory fits: must still schedule
        topology = make_linear(parallelism=2, stages=2, memory_mb=100, cpu=50)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_prefer_no_overcommit_spreads_cpu(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3, memory_mb=100, cpu=25)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.max_cpu_overcommit <= 1.0


class TestRefNode:
    def test_first_task_lands_on_most_available_node(self):
        big = ResourceVector.of(memory_mb=8192, cpu=800, bandwidth_mbps=100)
        small = ResourceVector.of(memory_mb=2048, cpu=100, bandwidth_mbps=100)
        cluster = heterogeneous_cluster([[small, small], [big, small]])
        topology = make_linear(parallelism=1, stages=1)
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        assert assignment.node_of(topology.tasks[0]) == "node-1-0"

    def test_subsequent_topology_anchors_on_emptier_rack(self):
        cluster = emulab_testbed()
        scheduler = RStormScheduler()
        t1 = make_linear("first", parallelism=4, stages=3, memory_mb=400)
        a1 = scheduler.schedule([t1], cluster)["first"]
        rack1 = {cluster.node(n).rack_id for n in a1.nodes}
        t2 = make_linear("second", parallelism=4, stages=3, memory_mb=400)
        a2 = scheduler.schedule([t1, t2], cluster, {"first": a1})["second"]
        rack2 = {cluster.node(n).rack_id for n in a2.nodes}
        assert rack1 != rack2  # second topology anchors on the other rack


class TestStatelessness:
    def test_rescheduling_preserves_surviving_placements(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = RStormScheduler()
        first = scheduler.schedule([topology], cluster)["chain"]
        second = scheduler.schedule([topology], cluster, {"chain": first})[
            "chain"
        ]
        assert second == first

    def test_reschedules_orphans_after_node_failure(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = RStormScheduler()
        first = scheduler.schedule([topology], cluster)["chain"]
        victim = first.nodes[0]
        cluster.fail_node(victim)
        surviving = first.restricted_to_nodes(
            n.node_id for n in cluster.alive_nodes
        )
        # release the dead node's reservations as Nimbus would
        for node in cluster.nodes:
            if node.node_id == victim:
                node.release_all()
        second = scheduler.schedule([topology], cluster, {"chain": surviving})[
            "chain"
        ]
        assert second.is_complete(topology)
        assert victim not in second.nodes
        for task in surviving.tasks:
            assert second.slot_of(task) == surviving.slot_of(task)


class TestMultiTopology:
    def test_resources_accounted_across_topologies(self):
        cluster = emulab_testbed()
        t1 = make_linear("t1", parallelism=4, stages=3, memory_mb=500)
        t2 = make_linear("t2", parallelism=4, stages=3, memory_mb=500)
        assignments = RStormScheduler().schedule([t1, t2], cluster)
        load = aggregate_node_load(
            [(t1, assignments["t1"]), (t2, assignments["t2"])]
        )
        for node_id, demand in load.items():
            assert demand.memory_mb <= cluster.node(node_id).capacity.memory_mb

    def test_earlier_topology_failure_does_not_block_later(self):
        cluster = emulab_testbed()
        feasible = make_linear("ok", parallelism=2, stages=2, memory_mb=100)
        infeasible = make_linear("huge", parallelism=1, stages=1, memory_mb=99999)
        scheduler = RStormScheduler()
        with pytest.raises(SchedulingError):
            scheduler.schedule([infeasible, feasible], cluster)


class TestAblationKnobs:
    @pytest.mark.parametrize("strategy", list(TaskOrderingStrategy))
    def test_all_orderings_produce_complete_assignments(self, strategy):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = RStormScheduler(ordering=strategy)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_no_network_term_still_complete(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = RStormScheduler(use_network_distance=False)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_raw_gaps_still_complete(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = RStormScheduler(normalise_gaps=False)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_allow_overcommit_packs_tighter(self):
        topology = make_linear(parallelism=4, stages=3, memory_mb=100, cpu=30)
        c1, c2 = emulab_testbed(), emulab_testbed()
        packed = RStormScheduler(prefer_no_overcommit=False).schedule(
            [topology], c1
        )["chain"]
        spread = RStormScheduler(prefer_no_overcommit=True).schedule(
            [topology], c2
        )["chain"]
        assert len(packed.nodes) <= len(spread.nodes)


# -- property-based invariants ------------------------------------------------

parallelism_lists = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=4
)
memories = st.sampled_from([64.0, 128.0, 256.0, 512.0])
cpus = st.sampled_from([5.0, 10.0, 25.0, 40.0])


@settings(max_examples=25, deadline=None)
@given(parallelism_lists, memories, cpus)
def test_property_feasible_topologies_fully_scheduled(parallelisms, memory, cpu):
    """Any chain whose total memory fits comfortably is fully placed."""
    cluster = emulab_testbed()
    topology = make_linear(
        parallelism=max(parallelisms),
        stages=len(parallelisms),
        memory_mb=memory,
        cpu=cpu,
    )
    if topology.total_demand().memory_mb > 12 * 2048:
        return  # genuinely infeasible; covered elsewhere
    assignment = RStormScheduler().schedule([topology], cluster)["chain"]
    assert assignment.is_complete(topology)


@settings(max_examples=25, deadline=None)
@given(parallelism_lists, memories, cpus)
def test_property_hard_constraints_never_violated(parallelisms, memory, cpu):
    cluster = emulab_testbed()
    topology = make_linear(
        parallelism=max(parallelisms),
        stages=len(parallelisms),
        memory_mb=memory,
        cpu=cpu,
    )
    try:
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
    except SchedulingError:
        return
    load = aggregate_node_load([(topology, assignment)])
    for node_id, demand in load.items():
        assert (
            demand.memory_mb
            <= cluster.node(node_id).capacity.memory_mb + 1e-9
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=5))
def test_property_scheduling_is_deterministic(parallelism, stages):
    topology = make_linear(parallelism=parallelism, stages=stages)
    a = RStormScheduler().schedule([topology], emulab_testbed())["chain"]
    b = RStormScheduler().schedule([topology], emulab_testbed())["chain"]
    assert a == b
