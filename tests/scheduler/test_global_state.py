"""Tests for GlobalState — scheduling-time bookkeeping."""

import pytest

from repro.cluster import single_rack_cluster
from repro.cluster.resources import ResourceVector
from repro.errors import InsufficientResourcesError, SchedulingError
from repro.scheduler.assignment import Assignment
from repro.scheduler.global_state import GlobalState
from repro.topology.builder import TopologyBuilder
from repro.topology.task import task_label


@pytest.fixture
def cluster():
    return single_rack_cluster(
        3,
        capacity=ResourceVector.of(memory_mb=1024, cpu=100, bandwidth_mbps=100),
    )


@pytest.fixture
def topology():
    builder = TopologyBuilder("t")
    builder.set_spout("s", 2).set_memory_load(256.0).set_cpu_load(25.0)
    builder.set_bolt("b", 2).shuffle_grouping("s").set_memory_load(
        256.0
    ).set_cpu_load(25.0)
    return builder.build()


class TestPlacement:
    def test_place_reserves_resources(self, cluster, topology):
        state = GlobalState(cluster)
        node = cluster.nodes[0]
        task = topology.tasks[0]
        state.place(task, node.slots[0], topology.task_demand(task))
        assert node.available.memory_mb == 768
        assert state.is_placed(task)
        assert state.node_of(task) == node.node_id

    def test_double_place_rejected(self, cluster, topology):
        state = GlobalState(cluster)
        task = topology.tasks[0]
        state.place(task, cluster.nodes[0].slots[0])
        with pytest.raises(SchedulingError):
            state.place(task, cluster.nodes[1].slots[0])

    def test_place_respects_hard_constraints(self, cluster, topology):
        state = GlobalState(cluster)
        task = topology.tasks[0]
        with pytest.raises(InsufficientResourcesError):
            state.place(
                task,
                cluster.nodes[0].slots[0],
                ResourceVector.of(memory_mb=9999),
            )
        assert not state.is_placed(task)

    def test_unplace_releases(self, cluster, topology):
        state = GlobalState(cluster)
        node = cluster.nodes[0]
        task = topology.tasks[0]
        state.place(task, node.slots[0], topology.task_demand(task))
        state.unplace(task)
        assert node.available == node.capacity
        assert not state.is_placed(task)

    def test_unplace_unknown_rejected(self, cluster, topology):
        with pytest.raises(SchedulingError):
            GlobalState(cluster).unplace(topology.tasks[0])

    def test_unplace_topology(self, cluster, topology):
        state = GlobalState(cluster)
        for i, task in enumerate(topology.tasks):
            state.place(task, cluster.nodes[i % 3].slots[0])
        state.unplace_topology("t")
        assert state.placed_tasks() == []


class TestSlotSelection:
    def test_reuses_topologys_slot_on_node(self, cluster, topology):
        state = GlobalState(cluster)
        node = cluster.nodes[0]
        first = state.slot_for_topology_on_node("t", node)
        state.place(topology.tasks[0], first)
        assert state.slot_for_topology_on_node("t", node) == first

    def test_prefers_free_slot_for_new_topology(self, cluster, topology):
        state = GlobalState(cluster)
        node = cluster.nodes[0]
        slot_t = state.slot_for_topology_on_node("t", node)
        state.place(topology.tasks[0], slot_t)
        slot_other = state.slot_for_topology_on_node("other", node)
        assert slot_other != slot_t

    def test_shares_least_loaded_when_all_taken(self, cluster):
        state = GlobalState(cluster)
        node = cluster.nodes[0]
        # occupy every slot with a distinct topology
        builders = []
        for i, slot in enumerate(node.slots):
            builder = TopologyBuilder(f"t{i}")
            builder.set_spout("s", 1)
            topo = builder.build()
            state.place(topo.tasks[0], slot)
        chosen = state.slot_for_topology_on_node("newcomer", node)
        assert chosen in node.slots


class TestFromAssignments:
    def test_rebuild_reserves_existing(self, cluster, topology):
        assignment = Assignment(
            "t",
            {task: cluster.nodes[0].slots[0] for task in topology.tasks},
        )
        state = GlobalState.from_assignments(
            cluster, {"t": topology}, {"t": assignment}
        )
        assert len(state.placed_tasks("t")) == 4
        assert cluster.nodes[0].available.memory_mb == 0

    def test_rebuild_skips_dead_nodes(self, cluster, topology):
        assignment = Assignment(
            "t",
            {task: cluster.nodes[0].slots[0] for task in topology.tasks},
        )
        cluster.fail_node(cluster.nodes[0].node_id)
        state = GlobalState.from_assignments(
            cluster, {"t": topology}, {"t": assignment}
        )
        assert state.placed_tasks("t") == []

    def test_rebuild_is_idempotent_on_reservations(self, cluster, topology):
        assignment = Assignment(
            "t",
            {task: cluster.nodes[0].slots[0] for task in topology.tasks},
        )
        GlobalState.from_assignments(cluster, {"t": topology}, {"t": assignment})
        # second rebuild over the same cluster must not double-reserve
        GlobalState.from_assignments(cluster, {"t": topology}, {"t": assignment})
        assert cluster.nodes[0].available.memory_mb == 0

    def test_assignment_for_freezes_current_state(self, cluster, topology):
        state = GlobalState(cluster)
        for task in topology.tasks:
            state.place(task, cluster.nodes[0].slots[0])
        frozen = state.assignment_for("t")
        assert frozen.is_complete(topology)
