"""Tests for the Aniello et al. offline baseline scheduler."""

import pytest

from repro.cluster import emulab_testbed
from repro.errors import TopologyValidationError
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.quality import evaluate_assignment
from repro.topology.builder import TopologyBuilder
from tests.conftest import make_linear


class TestAniello:
    def test_complete_assignment(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        assignment = AnielloOfflineScheduler().schedule([topology], cluster)[
            "chain"
        ]
        assert assignment.is_complete(topology)

    def test_rejects_cyclic_topologies(self):
        """The DEBS'13 offline scheduler only handles acyclic topologies —
        the limitation the paper calls out."""
        builder = TopologyBuilder("cyclic")
        builder.set_spout("s", 1)
        builder.set_bolt("a", 1).shuffle_grouping("s").shuffle_grouping("b")
        builder.set_bolt("b", 1).shuffle_grouping("a")
        topology = builder.build()
        with pytest.raises(TopologyValidationError):
            AnielloOfflineScheduler().schedule([topology], emulab_testbed())

    def test_better_locality_than_nothing_worse_than_rstorm(self):
        from repro.scheduler.rstorm import RStormScheduler

        topology = make_linear(parallelism=4, stages=3, memory_mb=256, cpu=20)
        c1, c2 = emulab_testbed(), emulab_testbed()
        aniello = AnielloOfflineScheduler().schedule([topology], c1)["chain"]
        rstorm = RStormScheduler().schedule([topology], c2)["chain"]
        aq = evaluate_assignment(topology, aniello, c1)
        rq = evaluate_assignment(topology, rstorm, c2)
        assert rq.mean_network_distance <= aq.mean_network_distance

    def test_workers_limit(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = AnielloOfflineScheduler(workers_per_topology=4)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert len(assignment.slots) == 4

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            AnielloOfflineScheduler(workers_per_topology=0)

    def test_existing_assignment_preserved(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=2, stages=2)
        scheduler = AnielloOfflineScheduler()
        first = scheduler.schedule([topology], cluster)["chain"]
        second = scheduler.schedule([topology], cluster, {"chain": first})[
            "chain"
        ]
        assert second == first

    def test_consecutive_linearised_tasks_on_consecutive_slots(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=1, stages=4)
        scheduler = AnielloOfflineScheduler(workers_per_topology=2)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        # 4 tasks over 2 workers: stage-0,stage-2 on one; stage-1,stage-3 on other
        slots = [assignment.slot_of(t) for t in sorted(topology.tasks, key=lambda t: t.component)]
        assert slots[0] == slots[2]
        assert slots[1] == slots[3]
