"""Tests for the schedule visualiser."""

import pytest

from repro.cluster import emulab_testbed
from repro.scheduler.assignment import Assignment
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.scheduler.visualise import render_assignments, render_node_loads
from tests.conftest import make_linear


@pytest.fixture
def scheduled():
    cluster = emulab_testbed()
    topology = make_linear(parallelism=2, stages=2)
    assignment = RStormScheduler().schedule([topology], cluster)["chain"]
    return cluster, topology, assignment


class TestRenderAssignments:
    def test_shows_racks_nodes_slots_tasks(self, scheduled):
        cluster, topology, assignment = scheduled
        text = render_assignments(cluster, [(topology, assignment)])
        assert "rack-0/" in text
        assert ":67" in text  # slot ports
        assert "stage-0[0]" in text

    def test_empty_nodes_hidden_by_default(self, scheduled):
        cluster, topology, assignment = scheduled
        text = render_assignments(cluster, [(topology, assignment)])
        shown_nodes = [l for l in text.splitlines() if l.startswith("  node")]
        assert len(shown_nodes) == len(assignment.nodes)

    def test_show_empty_nodes(self, scheduled):
        cluster, topology, assignment = scheduled
        text = render_assignments(
            cluster, [(topology, assignment)], show_empty_nodes=True
        )
        shown_nodes = [l for l in text.splitlines() if l.startswith("  node")]
        assert len(shown_nodes) == 12

    def test_resource_loads_in_brackets(self, scheduled):
        cluster, topology, assignment = scheduled
        text = render_assignments(cluster, [(topology, assignment)])
        assert "MB" in text and "pts" in text

    def test_overcommit_flagged(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3, memory_mb=900)
        slot = cluster.nodes[0].slots[0]
        assignment = Assignment(
            "chain", {t: slot for t in topology.tasks}
        )
        text = render_assignments(cluster, [(topology, assignment)])
        assert "MEMORY OVER-COMMITTED" in text

    def test_dead_node_marked(self, scheduled):
        cluster, topology, assignment = scheduled
        cluster.fail_node(assignment.nodes[0])
        text = render_assignments(cluster, [(topology, assignment)])
        assert "(DEAD)" in text

    def test_multiple_topologies_prefixed(self):
        cluster = emulab_testbed()
        t1 = make_linear("alpha", parallelism=1, stages=2)
        t2 = make_linear("beta", parallelism=1, stages=2)
        assignments = DefaultScheduler().schedule([t1, t2], cluster)
        text = render_assignments(
            cluster, [(t1, assignments["alpha"]), (t2, assignments["beta"])]
        )
        assert "alpha/stage-0[0]" in text
        assert "beta/stage-0[0]" in text

    def test_no_tasks(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=1, stages=1)
        empty = Assignment("chain", {})
        assert render_assignments(cluster, [(topology, empty)]) == (
            "(no tasks placed)"
        )


class TestRenderNodeLoads:
    def test_bars_and_percentages(self, scheduled):
        cluster, topology, assignment = scheduled
        text = render_node_loads(cluster, [(topology, assignment)])
        assert "cpu |" in text and "mem |" in text
        assert "%" in text

    def test_overfull_bar_marked(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3, cpu=60)
        slot = cluster.nodes[0].slots[0]
        assignment = Assignment("chain", {t: slot for t in topology.tasks})
        text = render_node_loads(cluster, [(topology, assignment)])
        assert "+" in text  # over 100%
