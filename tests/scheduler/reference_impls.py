"""Frozen reference schedulers — the differential-test oracles.

These are verbatim-behaviour copies of the scheduler implementations as
they stood *before* the packed-state hot-path optimisation (PR 4).  They
deliberately re-implement every piece of scheduling-time bookkeeping
(slot ordering, global placement state, distance computation) with the
original per-call ``ResourceVector`` arithmetic so that no future
optimisation of the production code can silently leak into the oracle.

The differential suite (``test_differential.py``) runs each optimised
scheduler and its reference twin on independently-built but identical
clusters and asserts the resulting assignments are *equal* — same tasks,
same worker slots — across random clusters, topologies, multi-topology
rounds and resume-after-fault rounds.

Do not "optimise" this module.  Its slowness is the point.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, WorkerSlot
from repro.cluster.resources import BANDWIDTH, ResourceVector
from repro.errors import (
    InsufficientResourcesError,
    SchedulingError,
    TopologyValidationError,
)
from repro.scheduler.assignment import Assignment
from repro.scheduler.rstorm import DistanceWeights
from repro.topology.task import Task, task_label
from repro.topology.topology import Topology
from repro.topology.traversal import (
    bfs_component_order,
    dfs_component_order,
    topological_component_order,
)

__all__ = [
    "ReferenceRStormScheduler",
    "ReferenceDefaultScheduler",
    "ReferenceAnielloScheduler",
]


# -- Algorithm 3: task selection (frozen copy of scheduler/ordering.py) ------


def _interleave_component_tasks(
    topology: Topology, component_order: Sequence[str]
) -> List[Task]:
    remaining: Dict[str, List[Task]] = {
        name: list(topology.tasks_of(name)) for name in component_order
    }
    ordering: List[Task] = []
    total = sum(len(ts) for ts in remaining.values())
    while len(ordering) < total:
        progressed = False
        for name in component_order:
            tasks = remaining[name]
            if tasks:
                ordering.append(tasks.pop(0))
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return ordering


_ORDERERS = {
    "bfs": bfs_component_order,
    "dfs": dfs_component_order,
    "topological": topological_component_order,
}


def _ordered_tasks(topology: Topology, strategy: str) -> List[Task]:
    return _interleave_component_tasks(topology, _ORDERERS[strategy](topology))


# -- frozen copy of scheduler/global_state.py --------------------------------


class _RefState:
    """Pre-optimisation ``GlobalState`` semantics, re-implemented."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._placements: Dict[Task, WorkerSlot] = {}
        self._slot_users: Dict[WorkerSlot, Set[str]] = {}

    @classmethod
    def from_assignments(
        cls,
        cluster: Cluster,
        topologies: Mapping[str, Topology],
        assignments: Mapping[str, Assignment],
    ) -> "_RefState":
        state = cls(cluster)
        for topo_id, assignment in assignments.items():
            topology = topologies.get(topo_id)
            for task in assignment.tasks:
                slot = assignment.slot_of(task)
                if not cluster.has_node(slot.node_id):
                    continue
                node = cluster.node(slot.node_id)
                if not node.alive:
                    continue
                demand = topology.task_demand(task) if topology else None
                already = task_label(task) in node.reservations
                if demand is not None and not already:
                    try:
                        node.reserve(task_label(task), demand)
                    except InsufficientResourcesError:
                        pass
                state._placements[task] = slot
                state._slot_users.setdefault(slot, set()).add(
                    task.topology_id
                )
        return state

    def is_placed(self, task: Task) -> bool:
        return task in self._placements

    def placed_tasks(self, topology_id: str) -> List[Task]:
        return sorted(
            t for t in self._placements if t.topology_id == topology_id
        )

    def node_of(self, task: Task) -> Optional[str]:
        slot = self._placements.get(task)
        return slot.node_id if slot else None

    def assignment_for(self, topology_id: str) -> Assignment:
        return Assignment(
            topology_id,
            {
                t: s
                for t, s in self._placements.items()
                if t.topology_id == topology_id
            },
        )

    def slot_for_topology_on_node(
        self, topology_id: str, node: Node
    ) -> WorkerSlot:
        for slot in node.slots:
            if topology_id in self._slot_users.get(slot, set()):
                return slot
        for slot in node.slots:
            if not self._slot_users.get(slot):
                return slot
        return min(
            node.slots,
            key=lambda s: (len(self._slot_users.get(s, set())), s),
        )

    def place(self, task: Task, slot: WorkerSlot, demand) -> None:
        if task in self._placements:
            raise SchedulingError(f"task {task} is already placed")
        node = self.cluster.node(slot.node_id)
        if demand is not None:
            node.reserve(task_label(task), demand)
        self._placements[task] = slot
        self._slot_users.setdefault(slot, set()).add(task.topology_id)

    def unplace(self, task: Task) -> None:
        slot = self._placements.pop(task, None)
        if slot is None:
            raise SchedulingError(f"task {task} is not placed")
        node = self.cluster.node(slot.node_id)
        if task_label(task) in node.reservations:
            node.release(task_label(task))
        remaining = any(
            t.topology_id == task.topology_id and s == slot
            for t, s in self._placements.items()
        )
        if not remaining:
            users = self._slot_users.get(slot)
            if users:
                users.discard(task.topology_id)
                if not users:
                    del self._slot_users[slot]


# -- frozen copy of scheduler/rstorm.py --------------------------------------


class ReferenceRStormScheduler:
    """Pre-optimisation R-Storm (Algorithms 1, 3 and 4), kept verbatim."""

    name = "r-storm-reference"

    def __init__(
        self,
        weights: DistanceWeights = DistanceWeights(),
        ordering: str = "bfs",
        normalise_gaps: bool = True,
        use_network_distance: bool = True,
        prefer_no_overcommit: bool = True,
        best_effort: bool = False,
    ):
        self.weights = weights
        self.ordering = ordering
        self.normalise_gaps = normalise_gaps
        self.use_network_distance = use_network_distance
        self.prefer_no_overcommit = prefer_no_overcommit
        self.best_effort = best_effort

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        topo_by_id = {t.topology_id: t for t in topologies}
        state = _RefState.from_assignments(
            cluster, topo_by_id, existing or {}
        )
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            self._schedule_topology(topology, cluster, state)
            result[topology.topology_id] = state.assignment_for(
                topology.topology_id
            )
        return result

    def _schedule_topology(
        self, topology: Topology, cluster: Cluster, state: _RefState
    ) -> None:
        pending = [
            task
            for task in _ordered_tasks(topology, self.ordering)
            if not state.is_placed(task)
        ]
        if not pending:
            return
        ref_node = self._initial_ref_node(topology, cluster, state)
        placed_this_round: List[Task] = []
        try:
            for task in pending:
                demand = topology.task_demand(task)
                node = self._select_node(cluster, demand, ref_node)
                if node is None:
                    if self.best_effort:
                        continue
                    raise SchedulingError(
                        f"no feasible node for task {task} "
                        f"(demand {demand!r}): every alive node violates "
                        f"a hard constraint",
                        unassigned=[
                            t for t in pending if not state.is_placed(t)
                        ],
                    )
                if ref_node is None:
                    ref_node = node
                slot = state.slot_for_topology_on_node(
                    topology.topology_id, node
                )
                state.place(task, slot, demand)
                placed_this_round.append(task)
        except SchedulingError:
            for task in placed_this_round:
                state.unplace(task)
            raise

    def _initial_ref_node(
        self, topology: Topology, cluster: Cluster, state: _RefState
    ) -> Optional[Node]:
        counts: Dict[str, int] = {}
        for task in state.placed_tasks(topology.topology_id):
            node_id = state.node_of(task)
            if node_id is not None:
                counts[node_id] = counts.get(node_id, 0) + 1
        if not counts:
            return None
        best = max(sorted(counts), key=lambda n: counts[n])
        return cluster.node(best)

    def _select_node(
        self,
        cluster: Cluster,
        demand: ResourceVector,
        ref_node: Optional[Node],
    ) -> Optional[Node]:
        feasible = [n for n in cluster.alive_nodes if n.can_host(demand)]
        if not feasible:
            return None
        if self.prefer_no_overcommit:
            uncommitted = [
                n for n in feasible if n.available.dominates(demand)
            ]
            if uncommitted:
                feasible = uncommitted
        if ref_node is None:
            anchor = self._find_ref_node(cluster, feasible)
            if anchor is not None:
                return anchor
            ref_node = feasible[0]

        def sort_key(node: Node) -> Tuple[float, str]:
            net = cluster.node_distance(node.node_id, ref_node.node_id)
            return (self.distance(node, demand, net), node.node_id)

        return min(feasible, key=sort_key)

    @staticmethod
    def _find_ref_node(
        cluster: Cluster, feasible: Sequence[Node]
    ) -> Optional[Node]:
        feasible_ids = {n.node_id for n in feasible}
        alive = cluster.alive_nodes
        if not alive:
            return None
        schema = alive[0].capacity.schema
        scale = {
            dim: max(node.capacity[dim] for node in alive) or 1.0
            for dim in schema.names
        }

        def node_score(node: Node) -> float:
            return sum(
                node.available[dim] / scale[dim] for dim in schema.names
            )

        racks = sorted(
            cluster.racks,
            key=lambda r: (
                -sum(node_score(n) for n in r.alive_nodes),
                r.rack_id,
            ),
        )
        for rack in racks:
            candidates = [
                n for n in rack.alive_nodes if n.node_id in feasible_ids
            ]
            if candidates:
                return min(
                    candidates, key=lambda n: (-node_score(n), n.node_id)
                )
        return None

    def distance(
        self, node: Node, demand: ResourceVector, net_distance: float
    ) -> float:
        schema = node.available.schema
        if self.normalise_gaps:
            gaps = node.available.normalised_gap(demand, node.capacity)
        else:
            gaps = node.available.gap(demand)
        total = 0.0
        for dim in schema:
            if dim.name == BANDWIDTH:
                continue
            weight = {
                "memory_mb": self.weights.memory,
                "cpu": self.weights.cpu,
            }.get(dim.name, dim.default_weight)
            gap = gaps[dim.name]
            total += weight * gap * gap
        if self.use_network_distance:
            total += self.weights.network * net_distance
        return math.sqrt(max(0.0, total))


# -- frozen copy of scheduler/default.py -------------------------------------


def _node_shuffle_key(node_id: str) -> int:
    return zlib.crc32(node_id.encode())


def _interleaved_slots(cluster: Cluster) -> List[WorkerSlot]:
    node_order = sorted(
        cluster.alive_nodes,
        key=lambda n: (_node_shuffle_key(n.node_id), n.node_id),
    )
    by_node: Dict[str, List[WorkerSlot]] = {
        node.node_id: sorted(node.slots, key=lambda s: s.port)
        for node in node_order
    }
    ordered: List[WorkerSlot] = []
    depth = max((len(slots) for slots in by_node.values()), default=0)
    for level in range(depth):
        for node in node_order:
            slots = by_node[node.node_id]
            if level < len(slots):
                ordered.append(slots[level])
    return ordered


class ReferenceDefaultScheduler:
    """Pre-optimisation EvenScheduler reproduction, kept verbatim."""

    name = "default-reference"

    def __init__(self, workers_per_topology: Optional[int] = None):
        if workers_per_topology is not None and workers_per_topology < 1:
            raise ValueError("workers_per_topology must be >= 1")
        self.workers_per_topology = workers_per_topology

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        existing = dict(existing or {})
        slots = _interleaved_slots(cluster)
        if not slots:
            raise SchedulingError(
                "no alive worker slots in the cluster",
                unassigned=[t for topo in topologies for t in topo.tasks],
            )
        cursor = 0
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            prior = existing.get(topology.topology_id)
            surviving: Dict[Task, WorkerSlot] = {}
            if prior is not None:
                alive = {n.node_id for n in cluster.alive_nodes}
                for task in prior.tasks:
                    slot = prior.slot_of(task)
                    if slot.node_id in alive:
                        surviving[task] = slot
            missing = [t for t in topology.tasks if t not in surviving]
            if not missing:
                result[topology.topology_id] = Assignment(
                    topology.topology_id, surviving
                )
                continue
            num_workers = self.workers_per_topology or len(
                cluster.alive_nodes
            )
            num_workers = max(1, min(num_workers, len(slots)))
            chosen = [
                slots[(cursor + i) % len(slots)] for i in range(num_workers)
            ]
            cursor = (cursor + num_workers) % len(slots)
            mapping = dict(surviving)
            for i, task in enumerate(
                sorted(missing, key=lambda t: t.task_id)
            ):
                mapping[task] = chosen[i % len(chosen)]
            result[topology.topology_id] = Assignment(
                topology.topology_id, mapping
            )
        return result


# -- frozen copy of scheduler/aniello.py -------------------------------------


class ReferenceAnielloScheduler:
    """Pre-optimisation DEBS'13 offline scheduler, kept verbatim."""

    name = "aniello-offline-reference"

    def __init__(self, workers_per_topology: Optional[int] = None):
        if workers_per_topology is not None and workers_per_topology < 1:
            raise ValueError("workers_per_topology must be >= 1")
        self.workers_per_topology = workers_per_topology

    def schedule(
        self,
        topologies: Sequence[Topology],
        cluster: Cluster,
        existing: Optional[Mapping[str, Assignment]] = None,
    ) -> Dict[str, Assignment]:
        existing = dict(existing or {})
        slots = _interleaved_slots(cluster)
        if not slots:
            raise SchedulingError(
                "no alive worker slots in the cluster",
                unassigned=[t for topo in topologies for t in topo.tasks],
            )
        cursor = 0
        result: Dict[str, Assignment] = {}
        for topology in topologies:
            self._check_acyclic(topology)
            prior = existing.get(topology.topology_id)
            surviving: Dict[Task, WorkerSlot] = {}
            if prior is not None:
                alive = {n.node_id for n in cluster.alive_nodes}
                for task in prior.tasks:
                    slot = prior.slot_of(task)
                    if slot.node_id in alive:
                        surviving[task] = slot
            order = _interleave_component_tasks(
                topology, topological_component_order(topology)
            )
            missing = [t for t in order if t not in surviving]
            if not missing:
                result[topology.topology_id] = Assignment(
                    topology.topology_id, surviving
                )
                continue
            num_workers = self.workers_per_topology or len(
                cluster.alive_nodes
            )
            num_workers = max(1, min(num_workers, len(slots)))
            chosen = [
                slots[(cursor + i) % len(slots)] for i in range(num_workers)
            ]
            cursor = (cursor + num_workers) % len(slots)
            mapping = dict(surviving)
            for i, task in enumerate(missing):
                mapping[task] = chosen[i % len(chosen)]
            result[topology.topology_id] = Assignment(
                topology.topology_id, mapping
            )
        return result

    @staticmethod
    def _check_acyclic(topology: Topology) -> None:
        in_degree = {name: 0 for name in topology.components}
        for _, target, _ in topology.edges():
            in_degree[target] += 1
        queue = [n for n, d in in_degree.items() if d == 0]
        seen = 0
        while queue:
            name = queue.pop()
            seen += 1
            for target in topology.downstream_of(name):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    queue.append(target)
        if seen != len(in_degree):
            raise TopologyValidationError(
                f"topology {topology.topology_id!r} is cyclic; the Aniello "
                "offline scheduler only supports acyclic topologies"
            )
