"""Tests for the online rebalancing controller."""

import pytest

from repro.cluster import ResourceVector, single_rack_cluster
from repro.scheduler.assignment import Assignment
from repro.scheduler.rebalance import OnlineRebalancer
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation import SimulationConfig, SimulationRun
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile


def hot_topology():
    """Two CPU-heavy pipelines that saturate one core together."""
    builder = TopologyBuilder("hot")
    spout_prof = ExecutionProfile(
        cpu_ms_per_tuple=0.8, emit_batch_tuples=50, max_rate_tps=600.0
    )
    bolt_prof = ExecutionProfile(cpu_ms_per_tuple=0.8, emit_batch_tuples=50)
    builder.set_spout("s", 2, profile=spout_prof).set_memory_load(
        128.0
    ).set_cpu_load(50.0)
    builder.set_bolt("b", 2, profile=bolt_prof).shuffle_grouping(
        "s"
    ).set_memory_load(128.0).set_cpu_load(50.0)
    return builder.build()


def make_cluster():
    return single_rack_cluster(
        4,
        capacity=ResourceVector.of(memory_mb=2048, cpu=100, bandwidth_mbps=1000),
    )


def pathological_assignment(topology, cluster):
    """Everything crammed onto one node — the hot-node scenario."""
    slot = cluster.nodes[0].slots[0]
    return Assignment("hot", {task: slot for task in topology.tasks})


class TestValidation:
    def test_invalid_watermark_rejected(self):
        with pytest.raises(ValueError):
            OnlineRebalancer(make_cluster(), high_watermark=0.0)
        with pytest.raises(ValueError):
            OnlineRebalancer(make_cluster(), high_watermark=1.5)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            OnlineRebalancer(make_cluster(), interval_s=0.0)


class TestRebalancing:
    def test_migrates_tasks_off_hot_node(self):
        topology = hot_topology()
        cluster = make_cluster()
        assignment = pathological_assignment(topology, cluster)
        run = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=120.0, warmup_s=10.0),
        )
        placements = {"hot": (topology, assignment)}
        rebalancer = OnlineRebalancer(cluster, interval_s=20.0)
        rebalancer.attach(run, placements)
        run.run()
        assert rebalancer.migrations
        final = placements["hot"][1]
        assert len(final.nodes) > 1  # spread out from the single hot node

    def test_rebalancing_improves_throughput(self):
        def run_once(rebalance):
            topology = hot_topology()
            cluster = make_cluster()
            assignment = pathological_assignment(topology, cluster)
            run = SimulationRun(
                cluster,
                [(topology, assignment)],
                SimulationConfig(duration_s=120.0, warmup_s=60.0),
            )
            if rebalance:
                rebalancer = OnlineRebalancer(cluster, interval_s=20.0)
                rebalancer.attach(run, {"hot": (topology, assignment)})
            return run.run().average_throughput_per_window("hot")

        static = run_once(rebalance=False)
        rebalanced = run_once(rebalance=True)
        assert rebalanced > 1.2 * static

    def test_balanced_schedule_left_alone(self):
        topology = hot_topology()
        cluster = make_cluster()
        assignment = RStormScheduler().schedule([topology], cluster)["hot"]
        run = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=90.0, warmup_s=10.0),
        )
        rebalancer = OnlineRebalancer(
            cluster, interval_s=20.0, high_watermark=0.99
        )
        rebalancer.attach(run, {"hot": (topology, assignment)})
        run.run()
        assert rebalancer.migrations == []

    def test_migration_cap_respected(self):
        topology = hot_topology()
        cluster = make_cluster()
        assignment = pathological_assignment(topology, cluster)
        run = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=120.0, warmup_s=10.0),
        )
        rebalancer = OnlineRebalancer(
            cluster, interval_s=10.0, max_migrations=1
        )
        rebalancer.attach(run, {"hot": (topology, assignment)})
        run.run()
        assert len(rebalancer.migrations) <= 1
