"""Property suite for weighted-DRF admission (hypothesis).

``plan_admission`` is pure — demand vectors in, a plan out — so its
contracts are checked directly over generated multi-tenant scenarios:
credit conservation, capacity never oversubscribed, pending requests
partitioned exactly into admitted/deferred, preemption never evicting a
same-or-higher-priority tenant, admission monotone in weight (for the
identical-demand case where it is a theorem), and Jain-index bounds.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import SchedulingError  # noqa: E402
from repro.scheduler.admission import (  # noqa: E402
    AdmissionRequest,
    TenantSpec,
    dominant_share,
    jain_index,
    plan_admission,
)

DIMS = ("cpu", "memory_mb", "bandwidth_mbps")

tenant_ids = st.sampled_from(["t-a", "t-b", "t-c", "t-d"])
weights = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
priorities = st.integers(min_value=0, max_value=3)
demand_values = st.floats(min_value=0.0, max_value=400.0, allow_nan=False)


@st.composite
def scenarios(draw):
    """(pending, running, capacity, tenants, credits) for one round."""
    ids = draw(
        st.lists(tenant_ids, min_size=1, max_size=4, unique=True)
    )
    tenants = {
        tid: TenantSpec(tid, weight=draw(weights), priority=draw(priorities))
        for tid in ids
    }
    capacity = {
        dim: draw(st.floats(min_value=50.0, max_value=1000.0))
        for dim in DIMS
    }

    def requests(prefix, max_size):
        out = []
        count = draw(st.integers(min_value=0, max_value=max_size))
        for index in range(count):
            tid = draw(st.sampled_from(ids))
            demand = {dim: draw(demand_values) for dim in DIMS}
            out.append(
                AdmissionRequest(f"{prefix}-{index}", tid, demand)
            )
        return out

    pending = requests("pend", 6)
    running = requests("run", 4)
    credits = {
        tid: draw(st.floats(min_value=0.0, max_value=10.0)) for tid in ids
    }
    return pending, running, capacity, tenants, credits


class TestRoundInvariants:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_pending_partitioned(self, scenario):
        """Every pending topology is admitted xor deferred, exactly
        once; evictions only ever name running topologies."""
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(pending, running, capacity, tenants, credits)
        outcome = sorted(plan.admitted + plan.deferred)
        assert outcome == sorted(r.topology_id for r in pending)
        assert set(plan.evicted) <= {r.topology_id for r in running}
        assert len(set(plan.evicted)) == len(plan.evicted)

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_capacity_never_oversubscribed(self, scenario):
        """Surviving running + newly admitted demand fits capacity on
        every dimension admission reasons about — unless the inherited
        running set alone already exceeded it (admission never *adds* to
        an oversubscribed dimension)."""
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(pending, running, capacity, tenants, credits)
        by_id = {r.topology_id: r for r in list(pending) + list(running)}
        survivors = [
            r for r in running if r.topology_id not in set(plan.evicted)
        ]
        admitted = [by_id[tid] for tid in plan.admitted]
        for dim, cap in capacity.items():
            inherited = sum(r.demand.get(dim, 0.0) for r in running)
            used = sum(
                r.demand.get(dim, 0.0) for r in survivors + admitted
            )
            assert used <= max(cap, inherited) + 1e-6

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_credit_conservation(self, scenario):
        """incoming + accrued == spent + outstanding, per tenant."""
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(pending, running, capacity, tenants, credits)
        for tid in tenants:
            lhs = credits.get(tid, 0.0) + plan.accrued[tid]
            rhs = plan.spent[tid] + plan.credits[tid]
            assert lhs == pytest.approx(rhs, abs=1e-9)

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_preemption_respects_priority(self, scenario):
        """Each eviction run is triggered by the tenant of the next
        admit/defer decision; every victim has strictly lower priority
        (same-or-higher priority tenants are never evicted)."""
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(pending, running, capacity, tenants, credits)
        decisions = list(plan.decisions)
        for index, decision in enumerate(decisions):
            if decision.action != "evict":
                continue
            trigger = next(
                d for d in decisions[index + 1:] if d.action != "evict"
            )
            victim_priority = tenants[decision.tenant_id].priority
            assert victim_priority < tenants[trigger.tenant_id].priority

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios(), limit=st.integers(min_value=0, max_value=3))
    def test_preemption_bounded(self, scenario, limit):
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(
            pending, running, capacity, tenants, credits,
            max_preemptions=limit,
        )
        assert len(plan.evicted) <= limit

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_preemption_disabled_evicts_nothing(self, scenario):
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(
            pending, running, capacity, tenants, credits,
            preemption_enabled=False,
        )
        assert plan.evicted == ()

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(scenario=scenarios())
    def test_per_tenant_fifo_preserved(self, scenario):
        """A tenant's admitted topologies are a prefix of its own queue:
        later submissions never jump the tenant's own FIFO order."""
        pending, running, capacity, tenants, credits = scenario
        plan = plan_admission(pending, running, capacity, tenants, credits)
        admitted = set(plan.admitted)
        for tid in tenants:
            queue = [r.topology_id for r in pending if r.tenant_id == tid]
            taken = [t for t in queue if t in admitted]
            assert taken == queue[: len(taken)]


class TestWeightMonotonicity:
    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(
        capacity=st.integers(min_value=1, max_value=12),
        queue_sizes=st.lists(
            st.integers(min_value=0, max_value=6), min_size=2, max_size=4
        ),
        weight=st.floats(min_value=0.1, max_value=4.0),
        bump=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_more_weight_never_fewer_admissions(
        self, capacity, queue_sizes, weight, bump
    ):
        """With identical unit demands and equal priorities, raising one
        tenant's weight (all else fixed) never shrinks its admitted
        count — the setting where weighted-DRF monotonicity is exact."""
        ids = [f"t-{i}" for i in range(len(queue_sizes))]
        pending = [
            AdmissionRequest(f"{tid}-{j}", tid, {"cpu": 1.0})
            for tid, size in zip(ids, queue_sizes)
            for j in range(size)
        ]
        cap = {"cpu": float(capacity)}

        def admitted_for(subject_weight):
            tenants = {
                tid: TenantSpec(
                    tid,
                    weight=subject_weight if tid == ids[0] else 1.0,
                )
                for tid in ids
            }
            plan = plan_admission(pending, [], cap, tenants)
            return sum(1 for t in plan.admitted if t.startswith(ids[0]))

        assert admitted_for(weight + bump) >= admitted_for(weight)


class TestShareAndJain:
    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(
        shares=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    def test_jain_bounds(self, shares):
        index = jain_index(shares)
        assert 0.0 < index <= 1.0 + 1e-12
        if sum(shares) > 0:
            assert index >= 1.0 / len(shares) - 1e-12

    def test_jain_degenerate(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_jain_even_split_is_one(self):
        assert jain_index([0.25] * 4) == pytest.approx(1.0)

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(
        usage=st.dictionaries(
            st.sampled_from(DIMS),
            st.floats(min_value=0.0, max_value=500.0),
            max_size=3,
        ),
        weight=weights,
    )
    def test_dominant_share_scales_inversely_with_weight(
        self, usage, weight
    ):
        capacity = dict.fromkeys(DIMS, 1000.0)
        base = dominant_share(usage, capacity, 1.0)
        assert dominant_share(usage, capacity, weight) == pytest.approx(
            base / weight
        )

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(SchedulingError):
            dominant_share({"cpu": 1.0}, {"cpu": 2.0}, 0.0)
        with pytest.raises(SchedulingError):
            TenantSpec("t", weight=-1.0)

    def test_rejects_nonpositive_headroom(self):
        with pytest.raises(SchedulingError):
            plan_admission([], [], {"cpu": 1.0}, {}, headroom=0.0)

    def test_unknown_tenant_rejected(self):
        request = AdmissionRequest("topo", "ghost", {"cpu": 1.0})
        with pytest.raises(SchedulingError):
            plan_admission([request], [], {"cpu": 10.0}, {})
