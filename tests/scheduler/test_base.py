"""Tests for the IScheduler contract and diagnostics wrapper."""

import pytest

from repro.cluster import emulab_testbed
from repro.scheduler.base import IScheduler, SchedulingRound
from repro.scheduler.rstorm import RStormScheduler
from tests.conftest import make_linear


class TestRunWrapper:
    def test_run_measures_latency_and_new_tasks(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=2, stages=2)
        round_info = RStormScheduler().run([topology], cluster)
        assert isinstance(round_info, SchedulingRound)
        assert round_info.scheduler == "r-storm"
        assert round_info.duration_s > 0
        assert round_info.newly_scheduled["chain"] == 4
        assert round_info.topologies == ["chain"]

    def test_run_counts_only_new_placements(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=2, stages=2)
        scheduler = RStormScheduler()
        first = scheduler.run([topology], cluster)
        second = scheduler.run(
            [topology], cluster, first.assignments
        )
        assert second.newly_scheduled["chain"] == 0

    def test_abstract_schedule_required(self):
        class Incomplete(IScheduler):
            pass

        with pytest.raises(TypeError):
            Incomplete()

    def test_round_repr_mentions_scheduler(self):
        cluster = emulab_testbed()
        round_info = RStormScheduler().run(
            [make_linear(parallelism=1, stages=2)], cluster
        )
        assert "r-storm" in repr(round_info)
