"""Unit tests for the packed flat-array cluster view."""

import pytest

from repro.cluster import Cluster, Node, Rack
from repro.cluster.builders import uniform_cluster
from repro.cluster.resources import (
    ConstraintKind,
    ResourceDimension,
    ResourceSchema,
)
from repro.errors import SchemaMismatchError
from repro.scheduler.global_state import GlobalState
from repro.scheduler.packed import PackedClusterState
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.generator import random_topology


def make_cluster(racks=2, nodes_per_rack=3):
    schema = ResourceSchema.storm_default()
    return uniform_cluster(
        nodes_per_rack=nodes_per_rack,
        racks=racks,
        capacity=schema.vector(
            memory_mb=2048.0, cpu=200.0, bandwidth_mbps=100.0
        ),
    )


class TestPackedClusterState:
    def test_rows_mirror_alive_nodes(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        alive = cluster.alive_nodes
        assert view.node_ids == [n.node_id for n in alive]
        for d in range(view.num_dims):
            for i, node in enumerate(alive):
                assert view.avail[d][i] == node.available.values[d]
                assert view.caps[d][i] == node.capacity.values[d]

    def test_excludes_dead_nodes(self):
        cluster = make_cluster()
        cluster.fail_node("node-0-1")
        view = PackedClusterState(cluster)
        assert "node-0-1" not in view.node_ids
        assert len(view.nodes) == 5

    def test_hard_dims_follow_schema(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        schema = ResourceSchema.storm_default()
        assert view.hard_dims == schema.hard_indices
        assert view.hard_dims == (0,)

    def test_refresh_tracks_reserve_and_release(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        node = cluster.node("node-1-0")
        i = view.index[node.node_id]
        schema = ResourceSchema.storm_default()
        demand = schema.vector(memory_mb=512.0, cpu=50.0)
        node.reserve("t", demand)
        view.refresh_node(node)
        assert view.avail[0][i] == node.available.values[0] == 1536.0
        node.release("t")
        view.refresh_node(node)
        assert view.avail[0][i] == 2048.0

    def test_scores_are_incrementally_consistent(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        baseline = list(view.scores)
        schema = ResourceSchema.storm_default()
        node = cluster.node("node-0-2")
        node.reserve("t", schema.vector(memory_mb=1024.0, cpu=100.0))
        view.refresh_node(node)
        fresh = PackedClusterState(cluster)
        assert view.scores == fresh.scores
        assert view.scores != baseline

    def test_scale_is_max_capacity_per_dimension(self):
        schema = ResourceSchema.storm_default()
        nodes = [
            Node("big", "r0", schema.vector(memory_mb=4096, cpu=100, bandwidth_mbps=10)),
            Node("small", "r0", schema.vector(memory_mb=1024, cpu=400, bandwidth_mbps=10)),
        ]
        view = PackedClusterState(Cluster([Rack("r0", nodes)]))
        assert view.scale == [4096.0, 400.0, 10.0]

    def test_rack_rows_preserve_iteration_order(self):
        cluster = make_cluster(racks=3, nodes_per_rack=2)
        view = PackedClusterState(cluster)
        assert [rack_id for rack_id, _ in view.rack_rows] == [
            r.rack_id for r in cluster.racks
        ]
        for (rack_id, row), rack in zip(view.rack_rows, cluster.racks):
            assert [view.node_ids[i] for i in row] == [
                n.node_id for n in rack.alive_nodes
            ]

    def test_dist_row_matches_cluster_distance(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        row = view.dist_row("node-0-0")
        assert row == [
            cluster.node_distance(nid, "node-0-0") for nid in view.node_ids
        ]
        assert view.dist_row("node-0-0") is row  # memoised

    def test_mixed_schemas_rejected(self):
        storm = ResourceSchema.storm_default()
        other = ResourceSchema(
            [ResourceDimension("memory_mb", ConstraintKind.HARD, "MB")]
        )
        nodes = [
            Node("a", "r0", storm.vector(memory_mb=1024, cpu=100)),
            Node("b", "r0", other.vector(memory_mb=1024)),
        ]
        with pytest.raises(SchemaMismatchError):
            PackedClusterState(Cluster([Rack("r0", nodes)]))

    def test_check_schema_rejects_foreign_vectors(self):
        cluster = make_cluster()
        view = PackedClusterState(cluster)
        other = ResourceSchema(
            [ResourceDimension("memory_mb", ConstraintKind.HARD, "MB")]
        )
        with pytest.raises(SchemaMismatchError):
            view.check_schema(other.vector(memory_mb=1.0))

    def test_empty_cluster_view(self):
        cluster = make_cluster(racks=1, nodes_per_rack=1)
        cluster.fail_node("node-0-0")
        view = PackedClusterState(cluster)
        assert view.nodes == []
        assert view.schema is None
        assert view.num_dims == 0
        assert view.hard_dims == ()


class TestGlobalStatePackedSync:
    def test_place_and_unplace_keep_view_in_sync(self):
        cluster = make_cluster()
        topology = random_topology(4, name="sync")
        state = GlobalState(cluster)
        view = state.packed
        assert state.packed is view  # built once per state

        RStormScheduler()._schedule_topology(topology, cluster, state)
        for i, node in enumerate(view.nodes):
            assert view.avail[0][i] == node.available.values[0]

        for task in state.placed_tasks(topology.topology_id):
            state.unplace(task)
        for i, node in enumerate(view.nodes):
            assert view.avail[0][i] == node.available.values[0] == 2048.0
