"""Differential tests: optimised schedulers vs frozen reference oracles.

The packed-array fast paths (``repro.scheduler.packed`` and friends) are
pure performance work — the PR's contract is that every scheduler
produces **byte-identical assignments** to the pre-optimisation
implementations.  ``reference_impls`` preserves those implementations
verbatim; these tests run both sides over fixed-seed and
property-generated scenarios (fresh clusters, concurrent topologies,
configuration sweeps, resume-after-fault rounds, generalised schemas)
and require exact equality of the resulting assignment maps.
"""

import pytest

from repro.cluster import Cluster, Node, Rack
from repro.cluster.builders import emulab_testbed, uniform_cluster
from repro.nimbus.config import StormConfig
from repro.nimbus.elastic import ElasticController
from repro.nimbus.nimbus import Nimbus
from repro.nimbus.tenancy import TenancyController, Tenant
from repro.simulation.config import SimulationConfig
from repro.simulation.runtime import SimulationRun
from repro.traffic.arrivals import PoissonArrivals
from repro.cluster.resources import (
    ConstraintKind,
    ResourceDimension,
    ResourceSchema,
)
from repro.errors import SchedulingError
from repro.scheduler.aniello import AnielloOfflineScheduler
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.ordering import TaskOrderingStrategy
from repro.scheduler.rstorm import DistanceWeights, RStormScheduler
from repro.topology.builder import TopologyBuilder
from repro.workloads.generator import TopologySpec, random_topology
from repro.workloads.micro import micro_topology

from tests.scheduler.reference_impls import (
    ReferenceAnielloScheduler,
    ReferenceDefaultScheduler,
    ReferenceRStormScheduler,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def as_map(assignments):
    """Assignment dict -> comparable {topology: {task_id: "node:port"}}."""
    return {
        tid: {t.task_id: str(a.slot_of(t)) for t in a.tasks}
        for tid, a in assignments.items()
    }


def small_cluster(racks=2, nodes_per_rack=3, memory=2048.0, cpu=200.0):
    schema = ResourceSchema.storm_default()
    return uniform_cluster(
        nodes_per_rack=nodes_per_rack,
        racks=racks,
        capacity=schema.vector(
            memory_mb=memory, cpu=cpu, bandwidth_mbps=100.0
        ),
    )


def run_both(make_cluster, topologies, optimised, reference, existing=None):
    """Run both schedulers on *independent but identical* clusters (each
    side mutates reservations) and return both assignment maps."""
    got = optimised.schedule(topologies, make_cluster(), existing)
    want = reference.schedule(topologies, make_cluster(), existing)
    return got, want


def assert_identical(make_cluster, topologies, optimised, reference, existing=None):
    """Both schedulers agree exactly: same assignments, or both reject
    the scenario with :class:`SchedulingError`."""
    try:
        got = optimised.schedule(topologies, make_cluster(), existing)
    except SchedulingError:
        with pytest.raises(SchedulingError):
            reference.schedule(topologies, make_cluster(), existing)
        return
    want = reference.schedule(topologies, make_cluster(), existing)
    assert as_map(got) == as_map(want)


SEEDS = (0, 1, 7, 13, 42, 99, 1234)


class TestRStormDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_topologies_identical(self, seed):
        topologies = [
            random_topology(seed * 10 + i, name=f"t{seed}-{i}")
            for i in range(3)
        ]

        def roomy():
            return small_cluster(
                racks=3, nodes_per_rack=4, memory=8192.0, cpu=400.0
            )

        got, want = run_both(
            roomy,
            topologies,
            RStormScheduler(),
            ReferenceRStormScheduler(),
        )
        assert as_map(got) == as_map(want)

    @pytest.mark.parametrize("kind", ["linear", "diamond", "star"])
    @pytest.mark.parametrize("profile", ["compute", "network"])
    def test_micro_topologies_on_emulab(self, kind, profile):
        topologies = [micro_topology(kind, profile)]
        got, want = run_both(
            emulab_testbed,
            topologies,
            RStormScheduler(),
            ReferenceRStormScheduler(),
        )
        assert as_map(got) == as_map(want)

    @pytest.mark.parametrize(
        "config",
        [
            dict(normalise_gaps=False),
            dict(use_network_distance=False),
            dict(prefer_no_overcommit=False),
            dict(weights=DistanceWeights(memory=2.0, cpu=0.25, network=3.0)),
            dict(ordering=TaskOrderingStrategy.DFS),
            dict(ordering=TaskOrderingStrategy.TOPOLOGICAL),
        ],
        ids=lambda c: next(iter(c)),
    )
    def test_config_sweep_identical(self, config):
        ref_config = dict(config)
        if "ordering" in ref_config:
            ref_config["ordering"] = ref_config["ordering"].value
        topologies = [
            random_topology(5, name="sweep-a"),
            random_topology(6, name="sweep-b"),
        ]

        def roomy():
            return small_cluster(
                racks=2, nodes_per_rack=4, memory=8192.0, cpu=400.0
            )

        got, want = run_both(
            roomy,
            topologies,
            RStormScheduler(**config),
            ReferenceRStormScheduler(**ref_config),
        )
        assert as_map(got) == as_map(want)

    def test_best_effort_partial_identical(self):
        # Memory-starved cluster: only some tasks fit; the partial
        # assignments (and which tasks are left out) must agree.
        def tight():
            return small_cluster(racks=1, nodes_per_rack=2, memory=512.0)

        topologies = [random_topology(3, name="tight")]
        got, want = run_both(
            tight,
            topologies,
            RStormScheduler(best_effort=True),
            ReferenceRStormScheduler(best_effort=True),
        )
        assert as_map(got) == as_map(want)

    def test_infeasible_raises_on_both(self):
        def tiny():
            return small_cluster(racks=1, nodes_per_rack=1, memory=32.0)

        topologies = [micro_topology("linear", "compute")]
        with pytest.raises(SchedulingError):
            RStormScheduler().schedule(topologies, tiny())
        with pytest.raises(SchedulingError):
            ReferenceRStormScheduler().schedule(topologies, tiny())

    def test_resume_after_fault_rounds_identical(self):
        """Multi-round reconciliation: schedule, fail a node, reschedule
        survivors + orphans, recover the node, schedule a new topology.
        Each side drives its own cluster; every round must agree."""
        t1 = random_topology(11, name="rounds-a")
        t2 = random_topology(12, name="rounds-b")

        def roomy():
            return small_cluster(
                racks=3, nodes_per_rack=4, memory=8192.0, cpu=400.0
            )

        opt_cluster, ref_cluster = roomy(), roomy()
        opt, ref = RStormScheduler(), ReferenceRStormScheduler()

        opt_a = opt.schedule([t1], opt_cluster)
        ref_a = ref.schedule([t1], ref_cluster)
        assert as_map(opt_a) == as_map(ref_a)

        # Fail the busiest node so some tasks genuinely need re-placement.
        loads = {}
        for task in opt_a[t1.topology_id].tasks:
            node_id = opt_a[t1.topology_id].node_of(task)
            loads[node_id] = loads.get(node_id, 0) + 1
        victim = max(sorted(loads), key=lambda n: loads[n])
        opt_cluster.fail_node(victim)
        ref_cluster.fail_node(victim)

        opt_b = opt.schedule([t1, t2], opt_cluster, opt_a)
        ref_b = ref.schedule([t1, t2], ref_cluster, ref_a)
        assert as_map(opt_b) == as_map(ref_b)
        for task in opt_b[t1.topology_id].tasks:
            assert opt_b[t1.topology_id].node_of(task) != victim

        opt_cluster.recover_node(victim)
        ref_cluster.recover_node(victim)
        t3 = random_topology(13, name="rounds-c")
        opt_c = opt.schedule([t1, t2, t3], opt_cluster, opt_b)
        ref_c = ref.schedule([t1, t2, t3], ref_cluster, ref_b)
        assert as_map(opt_c) == as_map(ref_c)

    def test_generalised_schema_identical(self):
        schema = ResourceSchema(
            [
                ResourceDimension("memory_mb", ConstraintKind.HARD, "MB"),
                ResourceDimension("cpu", ConstraintKind.SOFT, "points"),
                ResourceDimension("bandwidth_mbps", ConstraintKind.SOFT, "Mbps"),
                ResourceDimension("gpu", ConstraintKind.HARD, "devices"),
            ]
        )

        def make_cluster():
            nodes = [
                Node(
                    f"gpu-{i}",
                    "rack-0",
                    schema.vector(
                        memory_mb=4096, cpu=200, bandwidth_mbps=100, gpu=2
                    ),
                )
                for i in range(2)
            ] + [
                Node(
                    f"cpu-{i}",
                    "rack-1",
                    schema.vector(
                        memory_mb=4096, cpu=200, bandwidth_mbps=100, gpu=0
                    ),
                )
                for i in range(2)
            ]
            return Cluster(
                [Rack("rack-0", nodes[:2]), Rack("rack-1", nodes[2:])]
            )

        builder = TopologyBuilder("ml-pipeline")
        spout = builder.set_spout("frames", 2)
        spout.component.set_resource_demand(
            schema.vector(memory_mb=512, cpu=25)
        )
        infer = builder.set_bolt("inference", 2)
        infer.shuffle_grouping("frames")
        infer.component.set_resource_demand(
            schema.vector(memory_mb=1024, cpu=50, gpu=1)
        )
        sink = builder.set_bolt("sink", 2)
        sink.shuffle_grouping("inference")
        sink.component.set_resource_demand(
            schema.vector(memory_mb=256, cpu=10)
        )
        topology = builder.build()

        got, want = run_both(
            make_cluster,
            [topology],
            RStormScheduler(),
            ReferenceRStormScheduler(),
        )
        assert as_map(got) == as_map(want)


class TestBaselineSchedulersDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_identical(self, seed):
        topologies = [
            random_topology(seed * 10 + i, name=f"d{seed}-{i}")
            for i in range(2)
        ]
        got, want = run_both(
            small_cluster,
            topologies,
            DefaultScheduler(),
            ReferenceDefaultScheduler(),
        )
        assert as_map(got) == as_map(want)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aniello_identical(self, seed):
        topologies = [
            random_topology(seed * 10 + i, name=f"a{seed}-{i}")
            for i in range(2)
        ]
        got, want = run_both(
            small_cluster,
            topologies,
            AnielloOfflineScheduler(),
            ReferenceAnielloScheduler(),
        )
        assert as_map(got) == as_map(want)

    @pytest.mark.parametrize(
        "opt_cls,ref_cls",
        [
            (DefaultScheduler, ReferenceDefaultScheduler),
            (AnielloOfflineScheduler, ReferenceAnielloScheduler),
        ],
        ids=["default", "aniello"],
    )
    def test_resume_after_fault_identical(self, opt_cls, ref_cls):
        t1 = random_topology(21, name="base-rounds")
        opt_cluster, ref_cluster = small_cluster(), small_cluster()
        opt, ref = opt_cls(), ref_cls()
        opt_a = opt.schedule([t1], opt_cluster)
        ref_a = ref.schedule([t1], ref_cluster)
        assert as_map(opt_a) == as_map(ref_a)
        victim = opt_a[t1.topology_id].nodes[0]
        opt_cluster.fail_node(victim)
        ref_cluster.fail_node(victim)
        opt_b = opt.schedule([t1], opt_cluster, opt_a)
        ref_b = ref.schedule([t1], ref_cluster, ref_a)
        assert as_map(opt_b) == as_map(ref_b)

    def test_workers_per_topology_identical(self):
        topologies = [random_topology(31, name="workers")]
        got, want = run_both(
            small_cluster,
            topologies,
            DefaultScheduler(workers_per_topology=3),
            ReferenceDefaultScheduler(workers_per_topology=3),
        )
        assert as_map(got) == as_map(want)


class TestElasticDisabledDifferential:
    """A StormConfig that merely *carries* ``nimbus.elastic.*`` keys
    (with ``enabled`` false) must not perturb any scheduler: assignments
    stay byte-identical to the frozen oracles even with an
    :class:`ElasticController` attached to a live overloaded run."""

    #: Non-default elastic knobs everywhere — only ``enabled`` matters.
    ELASTIC_DISABLED = {
        "nimbus.elastic.enabled": False,
        "nimbus.elastic.interval.secs": 5.0,
        "nimbus.elastic.target.utilisation": 0.6,
        "nimbus.elastic.hysteresis": 0.1,
        "nimbus.elastic.max.parallelism": 32,
        "nimbus.elastic.scale.down.patience": 1,
    }

    SCHEDULER_PAIRS = (
        (RStormScheduler, ReferenceRStormScheduler),
        (DefaultScheduler, ReferenceDefaultScheduler),
        (AnielloOfflineScheduler, ReferenceAnielloScheduler),
    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_schedule_through_nimbus_identical(self, seed):
        """Scheduling via a Nimbus whose config carries disabled elastic
        keys matches the reference oracle for every scheduler."""
        topologies = [
            random_topology(seed * 10 + i, name=f"e{seed}-{i}")
            for i in range(2)
        ]

        def roomy():
            return small_cluster(
                racks=3, nodes_per_rack=4, memory=8192.0, cpu=400.0
            )

        for opt_cls, ref_cls in self.SCHEDULER_PAIRS:
            nimbus = Nimbus(
                roomy(),
                scheduler=opt_cls(),
                config=StormConfig(dict(self.ELASTIC_DISABLED)),
            )
            for topology in topologies:
                nimbus.submit_topology(topology)
            nimbus.schedule_round()
            want = ref_cls().schedule(topologies, roomy())
            assert as_map(dict(nimbus.assignments)) == as_map(want)

    @pytest.mark.parametrize(
        "opt_cls,ref_cls", SCHEDULER_PAIRS,
        ids=["r-storm", "default", "aniello"],
    )
    def test_disabled_controller_never_acts(self, opt_cls, ref_cls):
        """Attach the controller to a run overloaded enough that, if
        enabled, it *would* scale (1.5x offered): with ``enabled`` false
        it commits nothing and the assignments that come out of the run
        still match the oracle exactly."""
        topologies = [micro_topology("linear", "compute")]
        nimbus = Nimbus(
            emulab_testbed(),
            scheduler=opt_cls(),
            config=StormConfig(dict(self.ELASTIC_DISABLED)),
        )
        for topology in topologies:
            nimbus.submit_topology(topology)
        nimbus.schedule_round()
        before = as_map(dict(nimbus.assignments))

        run = SimulationRun(
            nimbus.cluster,
            [
                (t, nimbus.assignments[t.topology_id])
                for t in topologies
            ],
            SimulationConfig(
                duration_s=25.0,
                warmup_s=5.0,
                arrival_process=PoissonArrivals(rate_tps=375.0),
            ),
        )
        controller = ElasticController(nimbus)
        controller.attach(run)
        run.run()

        assert controller.decisions == []
        assert controller.tasks_moved == 0
        assert as_map(dict(nimbus.assignments)) == before
        want = ref_cls().schedule(topologies, emulab_testbed())
        assert as_map(dict(nimbus.assignments)) == as_map(want)


class TestPropertyDifferential:
    """Hypothesis sweeps with fixed seeds (derandomised so CI is stable)."""

    @given(
        racks=st.integers(min_value=1, max_value=3),
        nodes_per_rack=st.integers(min_value=1, max_value=4),
        memory=st.sampled_from([768.0, 1536.0, 4096.0]),
        cpu=st.sampled_from([100.0, 250.0]),
        seeds=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=3,
        ),
        prefer=st.booleans(),
        best_effort=st.booleans(),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_rstorm_matches_reference(
        self, racks, nodes_per_rack, memory, cpu, seeds, prefer, best_effort
    ):
        spec = TopologySpec(max_layers=3, max_width=2, max_parallelism=4)
        topologies = [
            random_topology(seed, spec=spec, name=f"h{i}-{seed}")
            for i, seed in enumerate(seeds)
        ]

        def make_cluster():
            return small_cluster(
                racks=racks,
                nodes_per_rack=nodes_per_rack,
                memory=memory,
                cpu=cpu,
            )

        opt = RStormScheduler(
            prefer_no_overcommit=prefer, best_effort=best_effort
        )
        ref = ReferenceRStormScheduler(
            prefer_no_overcommit=prefer, best_effort=best_effort
        )
        assert_identical(make_cluster, topologies, opt, ref)

    @given(
        racks=st.integers(min_value=1, max_value=3),
        nodes_per_rack=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_baselines_match_reference(self, racks, nodes_per_rack, seed):
        spec = TopologySpec(max_layers=3, max_width=2, max_parallelism=4)
        topologies = [random_topology(seed, spec=spec, name=f"b-{seed}")]

        def make_cluster():
            return small_cluster(racks=racks, nodes_per_rack=nodes_per_rack)

        for opt, ref in (
            (DefaultScheduler(), ReferenceDefaultScheduler()),
            (AnielloOfflineScheduler(), ReferenceAnielloScheduler()),
        ):
            got, want = run_both(make_cluster, topologies, opt, ref)
            assert as_map(got) == as_map(want)


class TestTenancyDisabledDifferential:
    """A StormConfig that merely *carries* ``nimbus.tenancy.*`` keys
    (with ``enabled`` false) must not perturb any scheduler: assignments
    stay byte-identical to the frozen oracles even when every topology
    is submitted through an attached :class:`TenancyController`."""

    #: Non-default tenancy knobs everywhere — only ``enabled`` matters.
    TENANCY_DISABLED = {
        "nimbus.tenancy.enabled": False,
        "nimbus.tenancy.headroom": 0.8,
        "nimbus.tenancy.credit.accrual": 2.5,
        "nimbus.tenancy.credit.bias": 0.2,
        "nimbus.tenancy.preemption.enabled": False,
        "nimbus.tenancy.max.preemptions": 7,
    }

    SCHEDULER_PAIRS = (
        (RStormScheduler, ReferenceRStormScheduler),
        (DefaultScheduler, ReferenceDefaultScheduler),
        (AnielloOfflineScheduler, ReferenceAnielloScheduler),
    )

    TENANTS = (
        Tenant("acme", weight=3.0, priority=2),
        Tenant("burst", weight=0.5, priority=0),
    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_submit_through_controller_identical(self, seed):
        """Submitting via a disabled controller is a strict pass-through:
        assignments match the reference oracle for every scheduler."""
        topologies = [
            random_topology(seed * 10 + i, name=f"t{seed}-{i}")
            for i in range(2)
        ]

        def roomy():
            return small_cluster(
                racks=3, nodes_per_rack=4, memory=8192.0, cpu=400.0
            )

        for opt_cls, ref_cls in self.SCHEDULER_PAIRS:
            nimbus = Nimbus(
                roomy(),
                scheduler=opt_cls(),
                config=StormConfig(dict(self.TENANCY_DISABLED)),
            )
            controller = TenancyController(nimbus)
            for tenant in self.TENANTS:
                controller.register_tenant(tenant)
            for index, topology in enumerate(topologies):
                controller.submit(
                    topology, self.TENANTS[index % 2].tenant_id
                )
            nimbus.schedule_round()
            want = ref_cls().schedule(topologies, roomy())
            assert as_map(dict(nimbus.assignments)) == as_map(want)

    @pytest.mark.parametrize(
        "opt_cls,ref_cls",
        SCHEDULER_PAIRS,
        ids=["r-storm", "default", "aniello"],
    )
    def test_disabled_controller_commits_nothing(self, opt_cls, ref_cls):
        """With ``enabled`` false the controller queues nothing, records
        nothing and never preempts — even across repeated scheduling
        rounds on a contended cluster."""
        topologies = [
            micro_topology("linear", "compute"),
            micro_topology("diamond", "compute"),
        ]
        nimbus = Nimbus(
            emulab_testbed(),
            scheduler=opt_cls(),
            config=StormConfig(dict(self.TENANCY_DISABLED)),
        )
        controller = TenancyController(nimbus)
        for tenant in self.TENANTS:
            controller.register_tenant(tenant)
        for index, topology in enumerate(topologies):
            controller.submit(topology, self.TENANTS[index % 2].tenant_id)
        for round_index in range(3):
            nimbus.schedule_round(now=float(round_index) * 10.0)

        assert controller.pending_ids == []
        assert controller.round_records == []
        assert controller.decisions == []
        assert controller.preemptions == 0
        assert controller.preempted_tasks == 0
        assert controller.credits == {"acme": 0.0, "burst": 0.0}
        want = ref_cls().schedule(topologies, emulab_testbed())
        assert as_map(dict(nimbus.assignments)) == as_map(want)
