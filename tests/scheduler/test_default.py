"""Tests for the default (round-robin/even) scheduler."""

import pytest

from repro.cluster import emulab_testbed, single_rack_cluster
from repro.errors import SchedulingError
from repro.scheduler.default import DefaultScheduler, interleaved_slots
from tests.conftest import make_linear


class TestSlotOrdering:
    def test_first_n_slots_on_distinct_nodes(self):
        cluster = emulab_testbed()
        slots = interleaved_slots(cluster)
        first_12 = slots[:12]
        assert len({s.node_id for s in first_12}) == 12

    def test_all_slots_listed(self):
        cluster = emulab_testbed()
        assert len(interleaved_slots(cluster)) == 12 * 4

    def test_excludes_dead_nodes(self):
        cluster = emulab_testbed()
        cluster.fail_node("node-0-0")
        slots = interleaved_slots(cluster)
        assert all(s.node_id != "node-0-0" for s in slots)

    def test_pseudo_random_order_mixes_racks(self):
        """The paper's "pseudo-random round robin": consecutive nodes are
        not rack-contiguous."""
        cluster = emulab_testbed()
        slots = interleaved_slots(cluster)[:12]
        racks = [cluster.node(s.node_id).rack_id for s in slots]
        assert racks != sorted(racks)

    def test_deterministic(self):
        a = interleaved_slots(emulab_testbed())
        b = interleaved_slots(emulab_testbed())
        assert a == b


class TestScheduling:
    def test_spreads_over_all_nodes(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)  # 12 tasks
        assignment = DefaultScheduler().schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)
        assert len(assignment.nodes) == 12

    def test_ignores_resources_entirely(self):
        cluster = emulab_testbed()
        # demands that massively exceed every node: default happily places
        topology = make_linear(memory_mb=99999.0, cpu=9999.0)
        assignment = DefaultScheduler().schedule([topology], cluster)["chain"]
        assert assignment.is_complete(topology)

    def test_workers_per_topology_limits_spread(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = DefaultScheduler(workers_per_topology=3)
        assignment = scheduler.schedule([topology], cluster)["chain"]
        assert len(assignment.slots) == 3

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            DefaultScheduler(workers_per_topology=0)

    def test_no_alive_slots_raises(self):
        cluster = single_rack_cluster(1)
        cluster.fail_node(cluster.nodes[0].node_id)
        with pytest.raises(SchedulingError):
            DefaultScheduler().schedule([make_linear()], cluster)

    def test_existing_assignments_preserved(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = DefaultScheduler()
        first = scheduler.schedule([topology], cluster)["chain"]
        second = scheduler.schedule([topology], cluster, {"chain": first})[
            "chain"
        ]
        assert second == first

    def test_orphaned_tasks_rescheduled_after_failure(self):
        cluster = emulab_testbed()
        topology = make_linear(parallelism=4, stages=3)
        scheduler = DefaultScheduler()
        first = scheduler.schedule([topology], cluster)["chain"]
        victim = first.nodes[0]
        cluster.fail_node(victim)
        second = scheduler.schedule([topology], cluster, {"chain": first})[
            "chain"
        ]
        assert second.is_complete(topology)
        assert victim not in second.nodes
        # surviving placements stay put
        for task in first.tasks:
            if first.node_of(task) != victim:
                assert second.slot_of(task) == first.slot_of(task)

    def test_multiple_topologies_continue_round_robin(self):
        cluster = emulab_testbed()
        t1 = make_linear("t1", parallelism=1, stages=2)
        t2 = make_linear("t2", parallelism=1, stages=2)
        assignments = DefaultScheduler().schedule([t1, t2], cluster)
        slots1 = set(assignments["t1"].slots)
        slots2 = set(assignments["t2"].slots)
        # the cursor advances, so the two topologies use different workers
        assert slots1.isdisjoint(slots2)
