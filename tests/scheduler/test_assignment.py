"""Tests for the Assignment value object."""

import pytest

from repro.cluster.node import WorkerSlot
from repro.errors import SchedulingError
from repro.scheduler.assignment import Assignment
from repro.topology.builder import TopologyBuilder


@pytest.fixture
def topology():
    builder = TopologyBuilder("t")
    builder.set_spout("s", 2)
    builder.set_bolt("b", 2).shuffle_grouping("s")
    return builder.build()


def slot(node, port=6700):
    return WorkerSlot(node, port)


@pytest.fixture
def assignment(topology):
    tasks = topology.tasks
    return Assignment(
        "t",
        {
            tasks[0]: slot("n1"),
            tasks[1]: slot("n1", 6701),
            tasks[2]: slot("n2"),
            tasks[3]: slot("n2"),
        },
    )


class TestQueries:
    def test_slot_and_node_of(self, topology, assignment):
        assert assignment.slot_of(topology.tasks[0]) == slot("n1")
        assert assignment.node_of(topology.tasks[2]) == "n2"

    def test_unassigned_task_raises(self, topology):
        empty = Assignment("t", {})
        with pytest.raises(SchedulingError):
            empty.slot_of(topology.tasks[0])

    def test_nodes_and_slots(self, assignment):
        assert assignment.nodes == ("n1", "n2")
        assert len(assignment.slots) == 3

    def test_tasks_on_slot_and_node(self, topology, assignment):
        assert assignment.tasks_on_slot(slot("n2")) == (
            topology.tasks[2],
            topology.tasks[3],
        )
        assert len(assignment.tasks_on_node("n1")) == 2
        assert assignment.tasks_on_node("ghost") == ()

    def test_completeness(self, topology, assignment):
        assert assignment.is_complete(topology)
        partial = Assignment("t", {topology.tasks[0]: slot("n1")})
        assert not partial.is_complete(topology)
        assert len(partial.missing_tasks(topology)) == 3

    def test_len_and_eq(self, topology, assignment):
        assert len(assignment) == 4
        same = Assignment("t", assignment.as_dict())
        assert assignment == same
        assert hash(assignment) == hash(same)


class TestConstruction:
    def test_foreign_task_rejected(self):
        builder = TopologyBuilder("other")
        builder.set_spout("s", 1)
        other = builder.build()
        with pytest.raises(SchedulingError):
            Assignment("t", {other.tasks[0]: slot("n1")})


class TestSurgery:
    def test_restricted_to_nodes(self, topology, assignment):
        surviving = assignment.restricted_to_nodes(["n1"])
        assert surviving.nodes == ("n1",)
        assert len(surviving) == 2

    def test_merged_with(self, topology, assignment):
        override = Assignment("t", {topology.tasks[0]: slot("n9")})
        merged = assignment.merged_with(override)
        assert merged.node_of(topology.tasks[0]) == "n9"
        assert merged.node_of(topology.tasks[3]) == "n2"

    def test_merge_different_topologies_rejected(self, assignment):
        with pytest.raises(SchedulingError):
            assignment.merged_with(Assignment("other", {}))
