"""OnlineRebalancer safety invariants.

Migration is only safe if it can never make things worse than doing
nothing: the destination's memory hard constraint must hold, the evicted
task's reservation must be restored when no better home exists, and the
hot-node blocker must never leak.
"""

from repro.cluster import ResourceVector, single_rack_cluster
from repro.scheduler import RStormScheduler
from repro.scheduler.rebalance import OnlineRebalancer
from repro.topology.task import task_label
from tests.conftest import make_linear

BLOCKER = "__rebalance_blocker__"


def scheduled(cluster=None, topology=None):
    cluster = cluster or single_rack_cluster(
        3,
        capacity=ResourceVector.of(
            memory_mb=2048.0, cpu=100.0, bandwidth_mbps=100.0
        ),
    )
    topology = topology or make_linear()
    assignment = RStormScheduler().schedule([topology], cluster)[
        topology.topology_id
    ]
    return cluster, topology, assignment


class TestReplaceTask:
    def test_successful_migration_respects_memory_everywhere(self):
        cluster, topology, assignment = scheduled()
        rebalancer = OnlineRebalancer(cluster)
        hot = assignment.nodes[0]
        task = assignment.tasks_on_node(hot)[0]
        new = rebalancer._replace_task(topology, assignment, task, hot)
        if new is not None:
            assert new.node_of(task) != hot
            assert new.is_complete(topology)
        # the hard constraint holds on every node either way
        for node in cluster.nodes:
            reserved = sum(
                vector.memory_mb for vector in node.reservations.values()
            )
            assert reserved <= node.capacity.memory_mb + 1e-6

    def test_no_better_home_restores_reservation(self):
        # a cluster where every *other* node is memory-full: the evicted
        # task has nowhere to go and must be put back where it was
        cluster, topology, assignment = scheduled()
        hot = assignment.nodes[0]
        for node in cluster.nodes:
            if node.node_id == hot:
                continue
            free = node.available.memory_mb
            if free > 0:
                node.reserve(
                    f"__filler__{node.node_id}",
                    node.capacity.schema.vector(memory_mb=free),
                )
        task = assignment.tasks_on_node(hot)[0]
        before = cluster.node(hot).reservations
        assert task_label(task) in before

        new = rebalancer_replace(cluster, topology, assignment, task, hot)
        assert new is None
        after = cluster.node(hot).reservations
        assert task_label(task) in after
        assert after[task_label(task)] == before[task_label(task)]

    def test_blocker_released_on_success_and_failure(self):
        # success path
        cluster, topology, assignment = scheduled()
        hot = assignment.nodes[0]
        task = assignment.tasks_on_node(hot)[0]
        OnlineRebalancer(cluster)._replace_task(topology, assignment, task, hot)
        assert BLOCKER not in cluster.node(hot).reservations

        # failure path: all alternatives full
        cluster, topology, assignment = scheduled()
        hot = assignment.nodes[0]
        for node in cluster.nodes:
            if node.node_id != hot and node.available.memory_mb > 0:
                node.reserve(
                    f"__filler__{node.node_id}",
                    node.capacity.schema.vector(
                        memory_mb=node.available.memory_mb
                    ),
                )
        task = assignment.tasks_on_node(hot)[0]
        OnlineRebalancer(cluster)._replace_task(topology, assignment, task, hot)
        assert BLOCKER not in cluster.node(hot).reservations

    def test_hot_node_exclusion_is_per_call(self):
        # the blocker only exists inside one _replace_task call: afterwards
        # the hot node can accept new reservations again
        cluster, topology, assignment = scheduled()
        hot = assignment.nodes[0]
        task = assignment.tasks_on_node(hot)[0]
        OnlineRebalancer(cluster)._replace_task(topology, assignment, task, hot)
        node = cluster.node(hot)
        free = node.available.memory_mb
        assert free > 0
        node.reserve("__probe__", node.capacity.schema.vector(memory_mb=free))
        assert "__probe__" in node.reservations
        node.release("__probe__")


def rebalancer_replace(cluster, topology, assignment, task, hot):
    return OnlineRebalancer(cluster)._replace_task(
        topology, assignment, task, hot
    )
