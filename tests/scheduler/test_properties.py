"""Property-based scheduler invariants (hypothesis).

Randomly generated topologies (via :func:`repro.workloads.generator.
random_topology`, itself deterministic in its seed) are scheduled on
clusters of varying size, and the invariants every placement must
satisfy are checked:

* every task is placed exactly once (assignments are complete and
  duplicate-free);
* R-Storm never violates a hard constraint: per-node summed *memory*
  demand stays within physical capacity (CPU and bandwidth are soft by
  design — R-Storm tracks but may over-commit them);
* if R-Storm cannot place a topology without breaking a hard
  constraint it raises :class:`~repro.errors.SchedulingError` rather
  than producing a partial assignment;
* :func:`~repro.scheduler.quality.evaluate_assignment` metrics are
  non-negative and internally consistent.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster.builders import uniform_cluster
from repro.cluster.resources import ResourceVector
from repro.errors import SchedulingError
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.quality import evaluate_assignment
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.generator import TopologySpec, random_topology

_SPEC = TopologySpec(
    min_layers=1,
    max_layers=3,
    min_width=1,
    max_width=3,
    max_parallelism=5,
    memory_choices_mb=(64.0, 128.0, 256.0, 512.0),
    cpu_choices=(10.0, 20.0, 40.0),
)

seeds = st.integers(min_value=0, max_value=10_000)
cluster_shapes = st.tuples(
    st.integers(min_value=1, max_value=3),  # racks
    st.integers(min_value=2, max_value=6),  # nodes per rack
)


def _make_cluster(racks, nodes_per_rack, memory_mb=2048.0):
    return uniform_cluster(
        nodes_per_rack=nodes_per_rack,
        racks=racks,
        capacity=ResourceVector.of(
            memory_mb=memory_mb, cpu=200.0, bandwidth_mbps=100.0
        ),
    )


def _assert_each_task_placed_exactly_once(topology, assignment):
    assert assignment.is_complete(topology)
    assert len(assignment) == topology.num_tasks
    placed = [t for slot in assignment.slots for t in assignment.tasks_on_slot(slot)]
    assert len(placed) == len(set(placed)) == topology.num_tasks


def _assert_quality_metrics_sane(quality):
    assert quality.nodes_used >= 1
    assert quality.slots_used >= quality.nodes_used >= 0
    assert quality.task_pairs >= 0
    assert quality.total_network_distance >= 0.0
    assert quality.mean_network_distance >= 0.0
    assert quality.hard_violations >= 0
    assert quality.max_cpu_overcommit >= 0.0
    assert all(count >= 0 for count in quality.pairs_by_level.values())
    assert sum(quality.pairs_by_level.values()) == quality.task_pairs


class TestRStormInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, shape=cluster_shapes)
    def test_memory_never_exceeds_capacity(self, seed, shape):
        topology = random_topology(seed, _SPEC)
        cluster = _make_cluster(*shape)
        try:
            assignment = RStormScheduler().schedule([topology], cluster)[
                topology.topology_id
            ]
        except SchedulingError as err:
            # Atomic failure is the documented fallback when the topology
            # genuinely cannot fit; it must name what went unplaced.
            assert err.unassigned
            return
        _assert_each_task_placed_exactly_once(topology, assignment)
        for node_id in set(assignment.nodes):
            demand = sum(
                topology.task_demand(t).memory_mb
                for t in assignment.tasks_on_node(node_id)
            )
            capacity = cluster.node(node_id).capacity.memory_mb
            assert demand <= capacity + 1e-9, (
                f"node {node_id} over-committed: {demand} > {capacity}"
            )
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.hard_violations == 0
        _assert_quality_metrics_sane(quality)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_infeasible_topology_raises_not_partial(self, seed):
        topology = random_topology(seed, _SPEC)
        # 32 MB nodes cannot host any task (the smallest demand is 64 MB).
        cluster = _make_cluster(1, 4, memory_mb=32.0)
        with pytest.raises(SchedulingError):
            RStormScheduler().schedule([topology], cluster)


class TestDefaultSchedulerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, shape=cluster_shapes)
    def test_every_task_placed_exactly_once(self, seed, shape):
        topology = random_topology(seed, _SPEC)
        cluster = _make_cluster(*shape)
        assignment = DefaultScheduler().schedule([topology], cluster)[
            topology.topology_id
        ]
        _assert_each_task_placed_exactly_once(topology, assignment)
        _assert_quality_metrics_sane(
            evaluate_assignment(topology, assignment, cluster)
        )


class TestCrossSchedulerProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_rstorm_locality_no_worse_than_default(self, seed):
        """R-Storm's whole design goal: tighter placements than round-robin
        on a multi-rack cluster (ties allowed)."""
        topology = random_topology(seed, _SPEC)
        cluster = _make_cluster(2, 6, memory_mb=8192.0)
        try:
            rstorm = RStormScheduler().schedule([topology], cluster)[
                topology.topology_id
            ]
        except SchedulingError:
            return
        default = DefaultScheduler().schedule([topology], cluster)[
            topology.topology_id
        ]
        r_quality = evaluate_assignment(topology, rstorm, cluster)
        d_quality = evaluate_assignment(topology, default, cluster)
        assert (
            r_quality.total_network_distance
            <= d_quality.total_network_distance + 1e-9
        )
