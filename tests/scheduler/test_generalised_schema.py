"""The paper's R^n generalisation: scheduling with a custom resource
schema (here: a hard GPU dimension alongside memory/CPU/bandwidth)."""

import pytest

from repro.cluster import Cluster, Node, Rack
from repro.cluster.resources import (
    ConstraintKind,
    ResourceDimension,
    ResourceSchema,
    ResourceVector,
)
from repro.errors import SchedulingError
from repro.scheduler.quality import aggregate_node_load
from repro.scheduler.rstorm import RStormScheduler
from repro.topology.builder import TopologyBuilder


@pytest.fixture
def gpu_schema():
    return ResourceSchema(
        [
            ResourceDimension("memory_mb", ConstraintKind.HARD, "MB"),
            ResourceDimension("cpu", ConstraintKind.SOFT, "points"),
            ResourceDimension("bandwidth_mbps", ConstraintKind.SOFT, "Mbps"),
            ResourceDimension("gpu", ConstraintKind.HARD, "devices"),
        ]
    )


@pytest.fixture
def gpu_cluster(gpu_schema):
    """Two GPU machines and two CPU-only machines in one rack."""
    nodes = []
    for i in range(2):
        nodes.append(
            Node(
                f"gpu-{i}",
                "rack-0",
                gpu_schema.vector(
                    memory_mb=4096, cpu=200, bandwidth_mbps=100, gpu=2
                ),
            )
        )
    for i in range(2):
        nodes.append(
            Node(
                f"cpu-{i}",
                "rack-0",
                gpu_schema.vector(
                    memory_mb=4096, cpu=200, bandwidth_mbps=100, gpu=0
                ),
            )
        )
    return Cluster([Rack("rack-0", nodes)])


def gpu_topology(gpu_schema, inference_gpus=1.0, inference_parallelism=2):
    builder = TopologyBuilder("ml-pipeline")
    spout = builder.set_spout("frames", 2)
    spout.component.set_resource_demand(
        gpu_schema.vector(memory_mb=512, cpu=25)
    )
    infer = builder.set_bolt("inference", inference_parallelism)
    infer.shuffle_grouping("frames")
    infer.component.set_resource_demand(
        gpu_schema.vector(memory_mb=1024, cpu=50, gpu=inference_gpus)
    )
    sink = builder.set_bolt("sink", 2)
    sink.shuffle_grouping("inference")
    sink.component.set_resource_demand(
        gpu_schema.vector(memory_mb=256, cpu=10)
    )
    return builder.build()


class TestGpuScheduling:
    def test_gpu_tasks_land_on_gpu_nodes(self, gpu_schema, gpu_cluster):
        topology = gpu_topology(gpu_schema)
        assignment = RStormScheduler().schedule([topology], gpu_cluster)[
            "ml-pipeline"
        ]
        assert assignment.is_complete(topology)
        for task in topology.tasks_of("inference"):
            assert assignment.node_of(task).startswith("gpu-")

    def test_gpu_budget_never_exceeded(self, gpu_schema, gpu_cluster):
        topology = gpu_topology(gpu_schema, inference_gpus=1.0,
                                inference_parallelism=4)
        assignment = RStormScheduler().schedule([topology], gpu_cluster)[
            "ml-pipeline"
        ]
        load = aggregate_node_load([(topology, assignment)])
        for node_id, demand in load.items():
            node = gpu_cluster.node(node_id)
            assert demand["gpu"] <= node.capacity["gpu"] + 1e-9

    def test_infeasible_gpu_demand_raises(self, gpu_schema, gpu_cluster):
        # 5 inference tasks x 1 GPU > the cluster's 4 GPUs
        topology = gpu_topology(gpu_schema, inference_parallelism=5)
        with pytest.raises(SchedulingError):
            RStormScheduler().schedule([topology], gpu_cluster)

    def test_non_gpu_tasks_fill_cpu_nodes_too(self, gpu_schema, gpu_cluster):
        topology = gpu_topology(gpu_schema)
        assignment = RStormScheduler().schedule([topology], gpu_cluster)[
            "ml-pipeline"
        ]
        # declared CPU totals push some non-GPU tasks onto the CPU nodes
        # or pack near the GPU anchor; either way every task is placed
        # without violating any hard dimension
        load = aggregate_node_load([(topology, assignment)])
        for node_id, demand in load.items():
            node = gpu_cluster.node(node_id)
            for dim in gpu_schema.hard_names:
                assert demand[dim] <= node.capacity[dim] + 1e-9

    def test_resident_memory_reads_custom_demand(self, gpu_schema):
        topology = gpu_topology(gpu_schema)
        inference = topology.component("inference")
        assert inference.resident_memory_mb == 1024.0
