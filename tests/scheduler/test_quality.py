"""Tests for schedule quality metrics."""

import pytest

from repro.cluster import emulab_testbed
from repro.cluster.network import DistanceLevel
from repro.cluster.node import WorkerSlot
from repro.scheduler.assignment import Assignment
from repro.scheduler.quality import aggregate_node_load, evaluate_assignment
from tests.conftest import make_linear


@pytest.fixture
def cluster():
    return emulab_testbed()


def all_on_one_slot(topology, cluster):
    slot = cluster.nodes[0].slots[0]
    return Assignment(
        topology.topology_id, {t: slot for t in topology.tasks}
    )


class TestNetworkDistance:
    def test_single_slot_assignment_has_zero_distance(self, cluster):
        topology = make_linear(parallelism=2, stages=2)
        assignment = all_on_one_slot(topology, cluster)
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.total_network_distance == 0.0
        assert quality.pairs_by_level[DistanceLevel.INTRA_PROCESS] == 4

    def test_task_pairs_counted_per_edge(self, cluster):
        topology = make_linear(parallelism=3, stages=3)
        assignment = all_on_one_slot(topology, cluster)
        quality = evaluate_assignment(topology, assignment, cluster)
        # 2 edges x 3 producers x 3 consumers
        assert quality.task_pairs == 18

    def test_cross_rack_assignment_measured(self, cluster):
        topology = make_linear(parallelism=1, stages=2)
        tasks = topology.tasks
        assignment = Assignment(
            "chain",
            {
                tasks[0]: cluster.node("node-0-0").slots[0],
                tasks[1]: cluster.node("node-1-0").slots[0],
            },
        )
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.pairs_by_level[DistanceLevel.INTER_RACK] == 1
        assert quality.mean_network_distance == cluster.topography.distance(
            DistanceLevel.INTER_RACK
        )


class TestLoadAccounting:
    def test_aggregate_node_load_sums_demands(self, cluster):
        topology = make_linear(parallelism=2, stages=2, memory_mb=300)
        assignment = all_on_one_slot(topology, cluster)
        load = aggregate_node_load([(topology, assignment)])
        assert load[cluster.nodes[0].node_id].memory_mb == 4 * 300

    def test_hard_violations_detected(self, cluster):
        topology = make_linear(parallelism=4, stages=2, memory_mb=300)
        assignment = all_on_one_slot(topology, cluster)  # 2400 > 2048
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.hard_violations == 1

    def test_cpu_overcommit_reported(self, cluster):
        topology = make_linear(parallelism=4, stages=2, memory_mb=100, cpu=30)
        assignment = all_on_one_slot(topology, cluster)  # 240 points on 100
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.max_cpu_overcommit == pytest.approx(2.4)

    def test_extra_assignments_count_toward_violations(self, cluster):
        t1 = make_linear("t1", parallelism=2, stages=2, memory_mb=600)
        t2 = make_linear("t2", parallelism=2, stages=2, memory_mb=600)
        a1 = all_on_one_slot(t1, cluster)
        a2 = Assignment(
            "t2",
            {t: WorkerSlot(cluster.nodes[0].node_id, 6701) for t in t2.tasks},
        )
        quality = evaluate_assignment(
            t1, a1, cluster, extra_assignments={"t2": (t2, a2)}
        )
        assert quality.hard_violations == 1  # 4800 MB on one 2048 MB node

    def test_nodes_and_slots_used(self, cluster):
        topology = make_linear(parallelism=1, stages=2)
        tasks = topology.tasks
        assignment = Assignment(
            "chain",
            {
                tasks[0]: cluster.node("node-0-0").slots[0],
                tasks[1]: cluster.node("node-0-0").slots[1],
            },
        )
        quality = evaluate_assignment(topology, assignment, cluster)
        assert quality.nodes_used == 1
        assert quality.slots_used == 2
