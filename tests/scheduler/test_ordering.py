"""Tests for task selection (Algorithm 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler.ordering import (
    TaskOrderingStrategy,
    interleave_component_tasks,
    ordered_tasks,
)
from repro.topology.builder import TopologyBuilder


def linear(parallelisms=(2, 3, 1)):
    builder = TopologyBuilder("t")
    builder.set_spout("c0", parallelisms[0])
    for i in range(1, len(parallelisms)):
        builder.set_bolt(f"c{i}", parallelisms[i]).shuffle_grouping(f"c{i - 1}")
    return builder.build()


class TestInterleaving:
    def test_round_robin_across_components(self):
        topology = linear((2, 2, 2))
        ordering = ordered_tasks(topology)
        components = [t.component for t in ordering]
        assert components == ["c0", "c1", "c2", "c0", "c1", "c2"]

    def test_uneven_parallelism_drains_long_components_last(self):
        topology = linear((1, 3, 1))
        ordering = ordered_tasks(topology)
        components = [t.component for t in ordering]
        assert components == ["c0", "c1", "c2", "c1", "c1"]

    def test_all_tasks_exactly_once(self):
        topology = linear((3, 2, 4))
        ordering = ordered_tasks(topology)
        assert sorted(ordering) == sorted(topology.tasks)

    def test_within_component_instance_order(self):
        topology = linear((3, 1))
        ordering = ordered_tasks(topology)
        instances = [t.instance for t in ordering if t.component == "c0"]
        assert instances == [0, 1, 2]

    def test_interleave_respects_given_component_order(self):
        topology = linear((1, 1, 1))
        ordering = interleave_component_tasks(topology, ["c2", "c0", "c1"])
        assert [t.component for t in ordering] == ["c2", "c0", "c1"]


class TestStrategies:
    @pytest.mark.parametrize("strategy", list(TaskOrderingStrategy))
    def test_every_strategy_covers_all_tasks(self, strategy):
        topology = linear((2, 3, 2))
        ordering = ordered_tasks(topology, strategy)
        assert sorted(ordering) == sorted(topology.tasks)

    def test_bfs_is_default(self):
        topology = linear((2, 2))
        assert ordered_tasks(topology) == ordered_tasks(
            topology, TaskOrderingStrategy.BFS
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5)
    )
    def test_ordering_is_permutation_for_any_chain(self, parallelisms):
        topology = linear(tuple(parallelisms))
        for strategy in TaskOrderingStrategy:
            ordering = ordered_tasks(topology, strategy)
            assert sorted(ordering) == sorted(topology.tasks)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=4)
    )
    def test_first_task_is_from_a_spout(self, parallelisms):
        topology = linear(tuple(parallelisms))
        ordering = ordered_tasks(topology, TaskOrderingStrategy.BFS)
        assert topology.component(ordering[0].component).is_spout
