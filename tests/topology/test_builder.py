"""Tests for the TopologyBuilder fluent API."""

import pytest

from repro.errors import TopologyValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    LocalOrShuffleGrouping,
    ShuffleGrouping,
)


def minimal_builder():
    builder = TopologyBuilder("t")
    builder.set_spout("s", 2)
    return builder


class TestDeclaration:
    def test_empty_topology_id_rejected(self):
        with pytest.raises(TopologyValidationError):
            TopologyBuilder("")

    def test_duplicate_component_name_rejected(self):
        builder = minimal_builder()
        with pytest.raises(TopologyValidationError):
            builder.set_bolt("s", 1)

    def test_build_produces_validated_topology(self):
        builder = minimal_builder()
        builder.set_bolt("b", 3).shuffle_grouping("s")
        topology = builder.build()
        assert topology.topology_id == "t"
        assert topology.component("b").parallelism == 3

    def test_resource_api_on_declarers(self):
        builder = TopologyBuilder("t")
        spout = builder.set_spout("s", 1)
        spout.set_memory_load(1024.0).set_cpu_load(50.0).set_bandwidth_load(5.0)
        bolt = builder.set_bolt("b", 1)
        bolt.shuffle_grouping("s")
        bolt.set_memory_load(2048.0).set_cpu_load(75.0)
        topology = builder.build()
        assert topology.component("s").resource_demand().memory_mb == 1024.0
        assert topology.component("b").resource_demand().cpu == 75.0


class TestGroupingHelpers:
    @pytest.mark.parametrize(
        "method,expected",
        [
            ("shuffle_grouping", ShuffleGrouping),
            ("all_grouping", AllGrouping),
            ("global_grouping", GlobalGrouping),
            ("local_or_shuffle_grouping", LocalOrShuffleGrouping),
        ],
    )
    def test_grouping_methods(self, method, expected):
        builder = minimal_builder()
        bolt = builder.set_bolt("b", 1)
        getattr(bolt, method)("s")
        topology = builder.build()
        sub = topology.component("b").subscriptions[0]
        assert isinstance(sub.grouping, expected)

    def test_fields_grouping_records_fields(self):
        builder = minimal_builder()
        builder.set_bolt("b", 1).fields_grouping("s", fields=("word", "lang"))
        topology = builder.build()
        grouping = topology.component("b").subscriptions[0].grouping
        assert isinstance(grouping, FieldsGrouping)
        assert grouping.fields == ("word", "lang")

    def test_multiple_subscriptions(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s1", 1)
        builder.set_spout("s2", 1)
        bolt = builder.set_bolt("join", 1)
        bolt.shuffle_grouping("s1").shuffle_grouping("s2")
        topology = builder.build()
        assert len(topology.component("join").subscriptions) == 2

    def test_declarer_exposes_component(self):
        builder = TopologyBuilder("t")
        declarer = builder.set_spout("s", 4)
        assert declarer.component.name == "s"
        assert declarer.component.parallelism == 4
