"""Tests for stream groupings."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    LocalOrShuffleGrouping,
    ShuffleGrouping,
)


class TestShuffle:
    def test_round_robin(self):
        g = ShuffleGrouping()
        assert [g.route(3)[0] for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_single_target(self):
        g = ShuffleGrouping()
        assert g.route(1) == (0,)

    def test_zero_targets_rejected(self):
        with pytest.raises(ValueError):
            ShuffleGrouping().route(0)

    def test_fresh_resets_state(self):
        g = ShuffleGrouping()
        g.route(3)
        fresh = g.fresh()
        assert fresh.route(3) == (0,)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=200))
    def test_uniform_distribution(self, num_tasks, rounds):
        g = ShuffleGrouping()
        counts = [0] * num_tasks
        for _ in range(rounds * num_tasks):
            counts[g.route(num_tasks)[0]] += 1
        assert max(counts) - min(counts) == 0  # perfectly even


class TestFields:
    def test_same_key_same_task(self):
        g = FieldsGrouping(("word",))
        assert g.route(5, key=42) == g.route(5, key=42)

    def test_different_fields_may_differ(self):
        a = FieldsGrouping(("word",))
        b = FieldsGrouping(("user",))
        routes_a = [a.route(16, key=k)[0] for k in range(100)]
        routes_b = [b.route(16, key=k)[0] for k in range(100)]
        assert routes_a != routes_b

    def test_none_key_defaults(self):
        g = FieldsGrouping(("word",))
        assert g.route(5) == g.route(5, key=0)

    def test_zero_targets_rejected(self):
        with pytest.raises(ValueError):
            FieldsGrouping(("k",)).route(0, key=1)

    @given(st.integers(min_value=1, max_value=50), st.integers())
    def test_route_in_range(self, num_tasks, key):
        (idx,) = FieldsGrouping(("k",)).route(num_tasks, key=key)
        assert 0 <= idx < num_tasks

    @given(st.integers(min_value=2, max_value=32))
    def test_keys_spread_over_tasks(self, num_tasks):
        g = FieldsGrouping(("k",))
        targets = {g.route(num_tasks, key=k)[0] for k in range(200)}
        assert len(targets) > 1


class TestAll:
    def test_every_task_receives(self):
        assert AllGrouping().route(4) == (0, 1, 2, 3)

    def test_zero_targets_rejected(self):
        with pytest.raises(ValueError):
            AllGrouping().route(0)


class TestGlobal:
    def test_lowest_task_only(self):
        assert GlobalGrouping().route(7) == (0,)

    def test_zero_targets_rejected(self):
        with pytest.raises(ValueError):
            GlobalGrouping().route(0)


class TestLocalOrShuffle:
    def test_prefers_local(self):
        g = LocalOrShuffleGrouping()
        routes = {g.route(6, local_indices=[2, 4])[0] for _ in range(10)}
        assert routes == {2, 4}

    def test_falls_back_to_all(self):
        g = LocalOrShuffleGrouping()
        routes = {g.route(3, local_indices=[])[0] for _ in range(9)}
        assert routes == {0, 1, 2}

    def test_zero_targets_rejected(self):
        with pytest.raises(ValueError):
            LocalOrShuffleGrouping().route(0)


class TestEquality:
    def test_same_type_equal(self):
        assert ShuffleGrouping() == ShuffleGrouping()
        assert AllGrouping() != ShuffleGrouping()

    def test_base_route_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Grouping().route(1)
