"""Tests for BFS/DFS/topological component orderings (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.traversal import (
    bfs_component_order,
    dfs_component_order,
    topological_component_order,
)


def linear(stages=4):
    builder = TopologyBuilder("linear")
    builder.set_spout("c0", 1)
    for i in range(1, stages):
        builder.set_bolt(f"c{i}", 1).shuffle_grouping(f"c{i - 1}")
    return builder.build()


def diamond():
    builder = TopologyBuilder("diamond")
    builder.set_spout("spout", 1)
    builder.set_bolt("mid-a", 1).shuffle_grouping("spout")
    builder.set_bolt("mid-b", 1).shuffle_grouping("spout")
    sink = builder.set_bolt("sink", 1)
    sink.shuffle_grouping("mid-a").shuffle_grouping("mid-b")
    return builder.build()


@st.composite
def random_dag_topology(draw):
    """A random layered DAG with 1 spout layer and up to 4 bolt layers."""
    num_layers = draw(st.integers(min_value=1, max_value=4))
    layers = [["spout-0", "spout-1"]]
    builder = TopologyBuilder("random")
    builder.set_spout("spout-0", 1)
    builder.set_spout("spout-1", 1)
    for layer_idx in range(num_layers):
        width = draw(st.integers(min_value=1, max_value=3))
        layer = []
        for i in range(width):
            name = f"bolt-{layer_idx}-{i}"
            bolt = builder.set_bolt(name, 1)
            sources = draw(
                st.lists(
                    st.sampled_from(layers[-1]),
                    min_size=1,
                    max_size=len(layers[-1]),
                    unique=True,
                )
            )
            for source in sources:
                bolt.shuffle_grouping(source)
            layer.append(name)
        layers.append(layer)
    return builder.build()


class TestBFS:
    def test_linear_order(self):
        assert bfs_component_order(linear()) == ["c0", "c1", "c2", "c3"]

    def test_diamond_visits_level_by_level(self):
        order = bfs_component_order(diamond())
        assert order[0] == "spout"
        assert set(order[1:3]) == {"mid-a", "mid-b"}
        assert order[3] == "sink"

    def test_starts_from_spouts_by_default(self):
        order = bfs_component_order(diamond())
        assert order[0] == "spout"

    def test_explicit_roots(self):
        order = bfs_component_order(linear(), roots=["c2"])
        assert order[0] == "c2"
        # undirected traversal reaches everything from an interior root
        assert set(order) == {"c0", "c1", "c2", "c3"}

    def test_unknown_root_rejected(self):
        with pytest.raises(TopologyValidationError):
            bfs_component_order(linear(), roots=["ghost"])

    def test_empty_roots_rejected(self):
        with pytest.raises(TopologyValidationError):
            bfs_component_order(linear(), roots=[])

    def test_handles_cycles(self):
        builder = TopologyBuilder("cyclic")
        builder.set_spout("s", 1)
        builder.set_bolt("a", 1).shuffle_grouping("s").shuffle_grouping("b")
        builder.set_bolt("b", 1).shuffle_grouping("a")
        order = bfs_component_order(builder.build())
        assert sorted(order) == ["a", "b", "s"]

    @settings(max_examples=40, deadline=None)
    @given(random_dag_topology())
    def test_every_component_exactly_once(self, topology):
        order = bfs_component_order(topology)
        assert sorted(order) == sorted(topology.components)

    @settings(max_examples=40, deadline=None)
    @given(random_dag_topology())
    def test_adjacent_components_gap_bounded_by_bfs_level(self, topology):
        """In BFS order, a consumer appears after at least one of its
        producers (levels are visited in order)."""
        order = bfs_component_order(topology)
        position = {name: i for i, name in enumerate(order)}
        for source, target, _ in topology.edges():
            assert position[target] > min(
                position[source],
                min(position[u] for u in topology.upstream_of(target)),
            ) - 1


class TestDFS:
    def test_every_component_exactly_once(self):
        order = dfs_component_order(diamond())
        assert sorted(order) == sorted(diamond().components)

    def test_dfs_goes_deep_first(self):
        order = dfs_component_order(diamond())
        # after spout, DFS follows one branch down to the sink before the
        # other branch
        assert order[:3] == ["spout", "mid-a", "sink"]

    def test_explicit_roots(self):
        order = dfs_component_order(linear(), roots=["c3"])
        assert order == ["c3", "c2", "c1", "c0"]

    def test_empty_roots_rejected(self):
        with pytest.raises(TopologyValidationError):
            dfs_component_order(linear(), roots=[])


class TestTopological:
    def test_respects_edge_direction(self):
        order = topological_component_order(diamond())
        position = {name: i for i, name in enumerate(order)}
        for source, target, _ in diamond().edges():
            assert position[source] < position[target]

    def test_cyclic_falls_back_to_bfs(self):
        builder = TopologyBuilder("cyclic")
        builder.set_spout("s", 1)
        builder.set_bolt("a", 1).shuffle_grouping("s").shuffle_grouping("b")
        builder.set_bolt("b", 1).shuffle_grouping("a")
        topology = builder.build()
        assert topological_component_order(topology) == bfs_component_order(
            topology
        )

    @settings(max_examples=40, deadline=None)
    @given(random_dag_topology())
    def test_every_component_exactly_once(self, topology):
        order = topological_component_order(topology)
        assert sorted(order) == sorted(topology.components)
