"""Tests for topology validation, task expansion, and adjacency."""

import pytest

from repro.errors import TopologyValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.topology import Topology


def diamond():
    builder = TopologyBuilder("diamond")
    builder.set_spout("spout", 2)
    builder.set_bolt("left", 2).shuffle_grouping("spout")
    builder.set_bolt("right", 2).shuffle_grouping("spout")
    sink = builder.set_bolt("sink", 2)
    sink.shuffle_grouping("left").shuffle_grouping("right")
    return builder.build()


class TestValidation:
    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyValidationError):
            Topology("t", {})

    def test_topology_without_spout_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1)
        bolt_only = {"b": builder.set_bolt("b", 1).shuffle_grouping("s").component}
        with pytest.raises(TopologyValidationError):
            Topology("t", bolt_only)

    def test_bolt_without_input_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1)
        builder.set_bolt("floating", 1)  # no grouping call
        with pytest.raises(TopologyValidationError):
            builder.build()

    def test_unknown_source_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1)
        builder.set_bolt("b", 1).shuffle_grouping("ghost")
        with pytest.raises(TopologyValidationError):
            builder.build()

    def test_unreachable_island_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1)
        builder.set_bolt("b", 1).shuffle_grouping("s")
        # an island: two bolts feeding each other, unreachable from s
        builder.set_bolt("x", 1).shuffle_grouping("y")
        builder.set_bolt("y", 1).shuffle_grouping("x")
        with pytest.raises(TopologyValidationError):
            builder.build()

    def test_cycles_reachable_from_spout_allowed(self):
        # R-Storm supports cyclic topologies (paper, related work section).
        builder = TopologyBuilder("cyclic")
        builder.set_spout("s", 1)
        builder.set_bolt("a", 1).shuffle_grouping("s").shuffle_grouping("b")
        builder.set_bolt("b", 1).shuffle_grouping("a")
        topology = builder.build()
        assert set(topology.components) == {"s", "a", "b"}


class TestTaskExpansion:
    def test_task_counts_match_parallelism(self):
        topology = diamond()
        assert topology.num_tasks == 8
        assert len(topology.tasks_of("spout")) == 2

    def test_task_ids_globally_unique_and_start_at_one(self):
        topology = diamond()
        ids = sorted(t.task_id for t in topology.tasks)
        assert ids == list(range(1, 9))

    def test_task_lookup_by_id(self):
        topology = diamond()
        task = topology.task_by_id(3)
        assert task.task_id == 3

    def test_unknown_task_id_rejected(self):
        with pytest.raises(TopologyValidationError):
            diamond().task_by_id(999)

    def test_task_instances_within_component(self):
        topology = diamond()
        instances = [t.instance for t in topology.tasks_of("sink")]
        assert instances == [0, 1]

    def test_tasks_are_ordered(self):
        topology = diamond()
        assert list(topology.tasks) == sorted(topology.tasks)


class TestAdjacency:
    def test_downstream(self):
        topology = diamond()
        assert topology.downstream_of("spout") == ("left", "right")
        assert topology.downstream_of("sink") == ()

    def test_upstream(self):
        topology = diamond()
        assert topology.upstream_of("sink") == ("left", "right")
        assert topology.upstream_of("spout") == ()

    def test_neighbours_are_undirected(self):
        topology = diamond()
        assert topology.neighbours_of("left") == ("sink", "spout")

    def test_sinks(self):
        topology = diamond()
        assert [c.name for c in topology.sinks] == ["sink"]

    def test_edges(self):
        edges = {(s, t) for s, t, _ in diamond().edges()}
        assert edges == {
            ("spout", "left"),
            ("spout", "right"),
            ("left", "sink"),
            ("right", "sink"),
        }

    def test_unknown_component_rejected(self):
        with pytest.raises(TopologyValidationError):
            diamond().downstream_of("ghost")


class TestResources:
    def test_task_demand_comes_from_component(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 2).set_memory_load(512.0).set_cpu_load(30.0)
        topology = builder.build()
        task = topology.tasks[0]
        demand = topology.task_demand(task)
        assert demand.memory_mb == 512.0
        assert demand.cpu == 30.0

    def test_total_demand_sums_tasks(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 3).set_memory_load(100.0).set_cpu_load(10.0)
        topology = builder.build()
        assert topology.total_demand().memory_mb == 300.0
        assert topology.total_demand().cpu == 30.0

    def test_spout_is_sink_when_no_bolts(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1)
        topology = builder.build()
        assert [c.name for c in topology.sinks] == ["s"]
