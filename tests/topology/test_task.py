"""Tests for the Task value object."""

from repro.topology.task import Task, task_label


class TestTask:
    def test_ordering_by_fields(self):
        a = Task("t", "bolt", 0, 1)
        b = Task("t", "bolt", 1, 2)
        assert a < b

    def test_equality_and_hash(self):
        a = Task("t", "bolt", 0, 1)
        assert a == Task("t", "bolt", 0, 1)
        assert len({a, Task("t", "bolt", 0, 1)}) == 1

    def test_str(self):
        assert str(Task("topo", "bolt", 2, 7)) == "topo/bolt[2]"

    def test_task_label_is_stable_and_unique_per_topology(self):
        a = Task("topo", "bolt", 0, 7)
        b = Task("topo", "spout", 0, 8)
        assert task_label(a) == "topo:7"
        assert task_label(a) != task_label(b)

    def test_frozen(self):
        task = Task("t", "bolt", 0, 1)
        try:
            task.task_id = 99
            raised = False
        except AttributeError:
            raised = True
        assert raised
