"""Tests for components and execution profiles."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyValidationError
from repro.topology.component import (
    DEFAULT_CPU_LOAD,
    DEFAULT_MEMORY_LOAD_MB,
    Bolt,
    ExecutionProfile,
    Spout,
)
from repro.topology.grouping import FieldsGrouping, ShuffleGrouping


class TestExecutionProfile:
    def test_defaults_are_valid(self):
        profile = ExecutionProfile()
        assert profile.output_ratio == 1.0
        assert profile.max_rate_tps is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_ms_per_tuple": -1.0},
            {"output_ratio": -0.1},
            {"tuple_bytes": 0},
            {"emit_batch_tuples": 0},
            {"max_rate_tps": 0.0},
            {"max_rate_tps": -5.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionProfile(**kwargs)


class TestComponentBasics:
    def test_kinds(self):
        assert Spout("s").is_spout and not Spout("s").is_bolt
        assert Bolt("b").is_bolt and not Bolt("b").is_spout

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyValidationError):
            Spout("")

    def test_nonpositive_parallelism_rejected(self):
        with pytest.raises(TopologyValidationError):
            Spout("s", parallelism=0)

    def test_storm_default_loads(self):
        spout = Spout("s")
        assert spout.memory_load_mb == DEFAULT_MEMORY_LOAD_MB
        assert spout.cpu_load == DEFAULT_CPU_LOAD


class TestResourceDeclaration:
    def test_paper_usage_example(self):
        # SpoutDeclarer s1 = builder.setSpout("word", ..., 10);
        # s1.setMemoryLoad(1024.0); s1.setCPULoad(50.0);
        spout = Spout("word", parallelism=10)
        spout.set_memory_load(1024.0).set_cpu_load(50.0)
        assert spout.resource_demand() == ResourceVector.of(
            memory_mb=1024.0, cpu=50.0
        )

    def test_bandwidth_load(self):
        spout = Spout("s")
        spout.set_bandwidth_load(25.0)
        assert spout.resource_demand().bandwidth_mbps == 25.0

    @pytest.mark.parametrize(
        "setter", ["set_memory_load", "set_cpu_load", "set_bandwidth_load"]
    )
    def test_negative_loads_rejected(self, setter):
        with pytest.raises(ValueError):
            getattr(Spout("s"), setter)(-1.0)

    def test_setters_chain(self):
        spout = Spout("s")
        assert spout.set_memory_load(1.0).set_cpu_load(2.0) is spout


class TestSubscriptions:
    def test_subscribe_with_default_grouping(self):
        bolt = Bolt("b")
        bolt.subscribe("source")
        assert isinstance(bolt.subscriptions[0].grouping, ShuffleGrouping)

    def test_subscribe_with_explicit_grouping(self):
        bolt = Bolt("b")
        bolt.subscribe("source", FieldsGrouping(("k",)))
        assert bolt.subscriptions[0].grouping == FieldsGrouping(("k",))

    def test_duplicate_subscription_rejected(self):
        bolt = Bolt("b")
        bolt.subscribe("source")
        with pytest.raises(TopologyValidationError):
            bolt.subscribe("source")

    def test_profile_attachment(self):
        profile = ExecutionProfile(cpu_ms_per_tuple=9.0)
        bolt = Bolt("b").set_profile(profile)
        assert bolt.profile.cpu_ms_per_tuple == 9.0
