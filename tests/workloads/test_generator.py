"""Tests and fuzzing for the random topology generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import emulab_testbed
from repro.errors import ConfigError, SchedulingError
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.quality import aggregate_node_load
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation import SimulationConfig, SimulationRun
from repro.workloads.generator import TopologySpec, random_topology


class TestGeneration:
    def test_deterministic_in_seed(self):
        a = random_topology(7)
        b = random_topology(7)
        assert a.topology_id == b.topology_id
        assert sorted(a.components) == sorted(b.components)
        assert a.num_tasks == b.num_tasks
        assert {(s, t) for s, t, _ in a.edges()} == {
            (s, t) for s, t, _ in b.edges()
        }

    def test_different_seeds_differ(self):
        shapes = {
            (random_topology(seed).num_tasks, len(random_topology(seed).components))
            for seed in range(10)
        }
        assert len(shapes) > 1

    def test_spec_bounds_respected(self):
        spec = TopologySpec(
            min_layers=2, max_layers=2, min_width=2, max_width=2, max_parallelism=3
        )
        topology = random_topology(3, spec)
        bolts = [c for c in topology.components.values() if c.is_bolt]
        assert len(bolts) == 4  # 2 layers x 2 bolts
        assert all(c.parallelism <= 3 for c in topology.components.values())

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            TopologySpec(min_layers=0)
        with pytest.raises(ConfigError):
            TopologySpec(min_width=3, max_width=2)
        with pytest.raises(ConfigError):
            TopologySpec(max_parallelism=0)

    def test_generated_topologies_are_valid(self):
        # Topology.__init__ validates; just building 20 is the test
        for seed in range(20):
            topology = random_topology(seed)
            assert topology.num_tasks >= 1
            assert topology.spouts


class TestFuzzScheduling:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_rstorm_schedules_any_generated_topology(self, seed):
        topology = random_topology(seed)
        cluster = emulab_testbed()
        try:
            assignment = RStormScheduler().schedule([topology], cluster)[
                topology.topology_id
            ]
        except SchedulingError:
            return  # legitimately infeasible (rare with these bounds)
        assert assignment.is_complete(topology)
        load = aggregate_node_load([(topology, assignment)])
        for node_id, demand in load.items():
            assert (
                demand.memory_mb
                <= cluster.node(node_id).capacity.memory_mb + 1e-9
            )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_topologies_simulate_cleanly(self, seed):
        topology = random_topology(seed)
        cluster = emulab_testbed()
        try:
            assignment = DefaultScheduler().schedule([topology], cluster)[
                topology.topology_id
            ]
        except SchedulingError:
            return
        config = SimulationConfig(duration_s=8.0, warmup_s=2.0)
        report = SimulationRun(cluster, [(topology, assignment)], config).run()
        assert report.emitted(topology.topology_id) > 0
        # conservation: nothing is double-counted at the sinks beyond the
        # stream's fan-out structure (bounded by emitted x max growth)
        assert report.sunk(topology.topology_id) >= 0
