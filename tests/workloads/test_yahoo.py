"""Tests for the Yahoo production topology builders."""

import pytest

from repro.cluster import emulab_testbed
from repro.scheduler.rstorm import RStormScheduler
from repro.workloads.yahoo import (
    pageload_topology,
    processing_topology,
    yahoo_simulation_config,
)


class TestPageLoad:
    def test_shape_matches_figure_11a(self):
        topology = pageload_topology()
        assert topology.downstream_of("ad-event-spout") == (
            "event-deserializer",
        )
        assert topology.downstream_of("geo-enricher") == ("page-aggregator",)
        assert [c.name for c in topology.sinks] == ["page-aggregator"]

    def test_spouts_are_rate_capped(self):
        topology = pageload_topology()
        assert topology.component("ad-event-spout").profile.max_rate_tps is not None

    def test_fits_the_papers_testbed_under_rstorm(self):
        topology = pageload_topology()
        assignment = RStormScheduler().schedule([topology], emulab_testbed())[
            "pageload"
        ]
        assert assignment.is_complete(topology)


class TestProcessing:
    def test_shape_matches_figure_11b(self):
        topology = processing_topology()
        chain = [
            "stream-spout",
            "event-parser",
            "event-validator",
            "session-joiner",
            "model-scorer",
            "stream-writer",
        ]
        for upstream, downstream in zip(chain, chain[1:]):
            assert topology.downstream_of(upstream) == (downstream,)

    def test_session_joiner_is_memory_heavy(self):
        topology = processing_topology()
        joiner = topology.component("session-joiner").memory_load_mb
        others = [
            comp.memory_load_mb
            for name, comp in topology.components.items()
            if name != "session-joiner"
        ]
        assert joiner > max(others)

    def test_fits_the_papers_testbed_under_rstorm(self):
        topology = processing_topology()
        assignment = RStormScheduler().schedule([topology], emulab_testbed())[
            "processing"
        ]
        assert assignment.is_complete(topology)

    def test_both_fit_the_24_node_cluster(self):
        cluster = emulab_testbed(nodes_per_rack=12)
        processing = processing_topology()
        pageload = pageload_topology()
        assignments = RStormScheduler().schedule(
            [processing, pageload], cluster
        )
        assert assignments["processing"].is_complete(processing)
        assert assignments["pageload"].is_complete(pageload)


class TestYahooConfig:
    def test_uses_storms_default_unbounded_pending(self):
        config = yahoo_simulation_config()
        assert config.max_spout_pending is None

    def test_crash_model_enabled(self):
        config = yahoo_simulation_config()
        assert config.queue_overflow_batches is not None

    def test_duration_forwarded(self):
        assert yahoo_simulation_config(33.0).duration_s == 33.0
