"""Tests for the micro-benchmark topology builders."""

import pytest

from repro.errors import ConfigError
from repro.workloads.micro import (
    VARIANTS,
    diamond_topology,
    linear_topology,
    micro_topology,
    star_topology,
)


class TestLinear:
    def test_network_variant_shape(self):
        topology = linear_topology("network")
        assert topology.topology_id == "linear-network"
        assert len(topology.components) == 4
        assert topology.num_tasks == 24

    def test_compute_variant_declares_quarter_core_tasks(self):
        topology = linear_topology("compute")
        assert topology.component("spout").cpu_load == 25.0
        # 24 tasks x 25 points = 600 points = 6 machines (paper 6.3.2)
        total = sum(
            topology.component(t.component).cpu_load for t in topology.tasks
        )
        assert total == 600.0

    def test_compute_spouts_rate_capped(self):
        topology = linear_topology("compute")
        assert topology.component("spout").profile.max_rate_tps is not None

    def test_network_spouts_unbounded(self):
        topology = linear_topology("network")
        assert topology.component("spout").profile.max_rate_tps is None


class TestDiamond:
    def test_shape(self):
        topology = diamond_topology("network")
        assert set(topology.downstream_of("spout")) == {"mid-0", "mid-1"}
        assert topology.upstream_of("sink") == ("mid-0", "mid-1")

    def test_sink_declares_branchwise_cpu_in_compute(self):
        topology = diamond_topology("compute")
        assert topology.component("sink").cpu_load == 2 * topology.component(
            "mid-0"
        ).cpu_load

    def test_branch_count_configurable(self):
        topology = diamond_topology("network", branches=4)
        assert len([c for c in topology.components if c.startswith("mid")]) == 4

    def test_zero_branches_rejected(self):
        with pytest.raises(ConfigError):
            diamond_topology(branches=0)


class TestStar:
    def test_network_variant_is_balanced(self):
        topology = star_topology("network")
        parallelisms = {
            name: comp.parallelism for name, comp in topology.components.items()
        }
        assert len(set(parallelisms.values())) == 1

    def test_arms_wire_through_center(self):
        topology = star_topology("network")
        assert set(topology.downstream_of("center")) == {"sink-0", "sink-1"}
        assert set(topology.upstream_of("center")) == {"spout-0", "spout-1"}

    def test_compute_spouts_declare_a_full_core(self):
        topology = star_topology("compute")
        assert topology.component("spout-0").cpu_load == 100.0

    def test_zero_arms_rejected(self):
        with pytest.raises(ConfigError):
            star_topology(arms=0)


class TestDispatch:
    @pytest.mark.parametrize("kind", ["linear", "diamond", "star"])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_micro_topology_dispatch(self, kind, variant):
        topology = micro_topology(kind, variant)
        assert variant in topology.topology_id

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            micro_topology("pentagon")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError):
            micro_topology("linear", "quantum")
