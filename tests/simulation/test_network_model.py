"""Tests for the transfer model (NIC/uplink serialisation + latency)."""

import pytest

from repro.cluster import emulab_testbed
from repro.cluster.network import DistanceLevel
from repro.simulation.network import TransferModel


@pytest.fixture
def model():
    return TransferModel(emulab_testbed())


ONE_MS_BYTES = 12500  # 12500 B * 8 = 0.1 Mb -> 1 ms at 100 Mbps


class TestLocalTransfers:
    def test_intra_process_pays_no_latency(self, model):
        arrival = model.transfer(
            1.0, "node-0-0", "node-0-0", DistanceLevel.INTRA_PROCESS, 10**6
        )
        assert arrival == 1.0

    def test_inter_process_pays_latency_only(self, model):
        arrival = model.transfer(
            1.0, "node-0-0", "node-0-0", DistanceLevel.INTER_PROCESS, 10**6
        )
        assert arrival == pytest.approx(1.0 + 0.05e-3)

    def test_local_transfers_do_not_occupy_nic(self, model):
        model.transfer(
            1.0, "node-0-0", "node-0-0", DistanceLevel.INTER_PROCESS, 10**6
        )
        assert model.nic_tx_free_at("node-0-0") == 0.0


class TestRemoteTransfers:
    def test_inter_node_serialisation_plus_latency(self, model):
        # store-and-forward: 1 ms on the sender NIC, 1 ms on the receiver
        # NIC, plus the 0.5 ms in-rack latency
        arrival = model.transfer(
            0.0, "node-0-0", "node-0-1", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        assert arrival == pytest.approx(0.001 + 0.001 + 0.5e-3)

    def test_sender_nic_serialises_transfers(self, model):
        first = model.transfer(
            0.0, "node-0-0", "node-0-1", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        second = model.transfer(
            0.0, "node-0-0", "node-0-2", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        assert second > first  # queued behind the first on the sender NIC

    def test_receiver_nic_serialises_transfers(self, model):
        first = model.transfer(
            0.0, "node-0-1", "node-0-0", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        second = model.transfer(
            0.0, "node-0-2", "node-0-0", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        assert second > first

    def test_disjoint_pairs_do_not_contend(self, model):
        a = model.transfer(
            0.0, "node-0-0", "node-0-1", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        b = model.transfer(
            0.0, "node-0-2", "node-0-3", DistanceLevel.INTER_NODE, ONE_MS_BYTES
        )
        assert a == b


class TestInterRack:
    def test_inter_rack_pays_higher_latency(self, model):
        local = model.transfer(
            0.0, "node-0-0", "node-0-1", DistanceLevel.INTER_NODE, 1
        )
        model2 = TransferModel(emulab_testbed())
        remote = model2.transfer(
            0.0, "node-0-0", "node-1-0", DistanceLevel.INTER_RACK, 1
        )
        assert remote > local

    def test_uplink_shared_across_rack_pairs(self):
        cluster = emulab_testbed()
        model = TransferModel(cluster, interrack_uplink_mbps=100.0)
        a = model.transfer(
            0.0, "node-0-0", "node-1-0", DistanceLevel.INTER_RACK, ONE_MS_BYTES
        )
        # a different node pair, same rack pair: contends on the uplink
        b = model.transfer(
            0.0, "node-0-1", "node-1-1", DistanceLevel.INTER_RACK, ONE_MS_BYTES
        )
        assert b > a

    def test_fat_uplink_does_not_bottleneck(self):
        cluster = emulab_testbed()
        thin = TransferModel(cluster, interrack_uplink_mbps=10.0)
        cluster2 = emulab_testbed()
        fat = TransferModel(cluster2, interrack_uplink_mbps=10000.0)
        t_thin = thin.transfer(
            0.0, "node-0-0", "node-1-0", DistanceLevel.INTER_RACK, ONE_MS_BYTES
        )
        t_fat = fat.transfer(
            0.0, "node-0-0", "node-1-0", DistanceLevel.INTER_RACK, ONE_MS_BYTES
        )
        assert t_fat < t_thin

    def test_default_uplink_is_10x_nic(self):
        model = TransferModel(emulab_testbed())
        assert model.interrack_uplink_mbps == 1000.0

    def test_uplink_free_at_tracked(self, model):
        model.transfer(
            0.0, "node-0-0", "node-1-0", DistanceLevel.INTER_RACK, ONE_MS_BYTES
        )
        assert model.uplink_free_at("rack-0", "rack-1") > 0.0
        assert model.uplink_free_at("rack-0", "rack-9") == 0.0
