"""Unit + property tests for the flow-control primitives.

The credit ledger is the backpressure state machine; its conservation
invariant (sends == drains + outstanding, outstanding >= 0) is what the
delivery-audit closure leans on, so it gets a hypothesis property suite
over arbitrary interleavings of sends and drains.
"""

import pytest

from repro.errors import ConfigError
from repro.simulation.flowcontrol import (
    SHEDDING_POLICIES,
    CreditLedger,
    FlowControlConfig,
    ShedLedger,
    ShedRecord,
    make_policy,
    tenant_priorities,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestFlowControlConfig:
    def test_defaults_validate(self):
        config = FlowControlConfig()
        assert config.queue_capacity == 64
        assert config.shedding == "none"
        assert config.high_watermark > config.low_watermark

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queue_capacity=0),
            dict(queue_capacity=True),
            dict(high_watermark=0.0),
            dict(high_watermark=1.5),
            dict(low_watermark=0.9),  # >= high watermark
            dict(low_watermark=-0.1),
            dict(shedding="random"),
            dict(priorities=(("topo",),)),
            dict(priorities=(("topo", "gold"),)),
            dict(priorities=(("topo", True),)),
            dict(shed_ledger_capacity=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FlowControlConfig(**kwargs)

    def test_policy_names(self):
        assert SHEDDING_POLICIES == ("none", "tail-drop", "priority")


class TestCreditLedger:
    def test_stall_at_high_watermark(self):
        ledger = CreditLedger(pool=10, high_watermark=0.8, low_watermark=0.4)
        stalled = [ledger.send() for _ in range(10)]
        # Exactly the 8th send (occupancy 0.8) reports the stall.
        assert stalled == [False] * 7 + [True, False, False]
        assert ledger.stalled and ledger.stall_count == 1

    def test_resume_at_low_watermark_with_hysteresis(self):
        ledger = CreditLedger(pool=10, high_watermark=0.8, low_watermark=0.4)
        for _ in range(8):
            ledger.send()
        # Draining back under the *high* watermark is not enough ...
        resumed = [ledger.drain() for _ in range(3)]
        assert resumed == [False, False, False]
        # ... only crossing the low watermark (4) resumes.
        assert ledger.drain() is True
        assert not ledger.stalled

    def test_pool_of_one_still_stalls(self):
        ledger = CreditLedger(pool=1, high_watermark=0.8, low_watermark=0.0)
        assert ledger.send() is True
        assert ledger.drain() is True

    def test_overshoot_beyond_pool_is_accounted(self):
        # In-flight deliveries may exceed the pool; the ledger tracks
        # them rather than losing them.
        ledger = CreditLedger(pool=4, high_watermark=0.75, low_watermark=0.25)
        for _ in range(6):
            ledger.send()
        assert ledger.outstanding == 6
        assert ledger.available == -2
        assert ledger.conserved()

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            CreditLedger(pool=0, high_watermark=0.8, low_watermark=0.4)


class TestCreditLedgerProperties:
    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(
        pool=st.integers(min_value=1, max_value=64),
        high=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        low_frac=st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
        ops=st.lists(st.booleans(), max_size=300),
    )
    def test_conservation_under_any_interleaving(
        self, pool, high, low_frac, ops
    ):
        """sends == drains + outstanding after any send/drain sequence."""
        low = high * low_frac
        ledger = CreditLedger(
            pool=pool, high_watermark=high, low_watermark=low
        )
        for is_send in ops:
            if is_send:
                ledger.send()
            elif ledger.outstanding > 0:
                ledger.drain()
        assert ledger.conserved()
        assert ledger.sends == ledger.drains + ledger.outstanding

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(
        pool=st.integers(min_value=1, max_value=64),
        high=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        low_frac=st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
        ops=st.lists(st.booleans(), max_size=300),
    )
    def test_stall_resume_transitions_alternate(
        self, pool, high, low_frac, ops
    ):
        """Stall/resume events strictly alternate, starting with stall,
        and the stalled flag always matches the last event."""
        low = high * low_frac
        ledger = CreditLedger(
            pool=pool, high_watermark=high, low_watermark=low
        )
        events = []
        for is_send in ops:
            if is_send:
                if ledger.send():
                    events.append("stall")
            elif ledger.outstanding > 0:
                if ledger.drain():
                    events.append("resume")
        for i, event in enumerate(events):
            assert event == ("stall" if i % 2 == 0 else "resume")
        assert ledger.stalled == (bool(events) and events[-1] == "stall")

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        pool=st.integers(min_value=1, max_value=64),
        sends=st.integers(min_value=0, max_value=200),
    )
    def test_drain_beyond_sends_raises(self, pool, sends):
        ledger = CreditLedger(
            pool=pool, high_watermark=0.8, low_watermark=0.4
        )
        for _ in range(sends):
            ledger.send()
        for _ in range(sends):
            ledger.drain()
        with pytest.raises(ValueError):
            ledger.drain()


class TestShedLedger:
    def _record(self, t, tuples=50):
        return ShedRecord(
            time_s=t, topology_id="topo", component="spout",
            stage="ingress", tuples=tuples, policy="tail-drop",
        )

    def test_totals_exact_past_ring_capacity(self):
        ledger = ShedLedger(capacity=3)
        for i in range(10):
            ledger.record(self._record(float(i)))
        assert ledger.total_batches == 10
        assert ledger.total_tuples == 500
        assert len(ledger.records) == 3
        assert ledger.dropped_records == 7
        # The ring keeps the most recent records.
        assert [r.time_s for r in ledger.records] == [7.0, 8.0, 9.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShedLedger(capacity=0)


class TestSheddingPolicy:
    def test_none_never_sheds(self):
        policy = make_policy(FlowControlConfig(queue_capacity=8))
        assert policy.threshold("any") is None
        assert not policy.should_shed("any", occupancy=10_000)

    def test_tail_drop_sheds_at_capacity(self):
        policy = make_policy(
            FlowControlConfig(queue_capacity=8, shedding="tail-drop")
        )
        assert policy.threshold("any") == 8
        assert not policy.should_shed("any", occupancy=7)
        assert policy.should_shed("any", occupancy=8)

    def test_priority_ranks_thresholds(self):
        policy = make_policy(
            FlowControlConfig(
                queue_capacity=32,
                shedding="priority",
                priorities=(("gold", 2), ("silver", 1), ("free", 0)),
            )
        )
        gold = policy.threshold("gold")
        silver = policy.threshold("silver")
        free = policy.threshold("free")
        assert gold == 32  # top class sheds only at capacity
        assert free < silver < gold
        assert free == 21  # 0.5 + 0.5 * (1/3) of 32, rounded
        # Unregistered topologies behave like tail-drop.
        assert policy.threshold("unknown") == 32

    def test_priority_without_registrations_is_tail_drop(self):
        policy = make_policy(
            FlowControlConfig(queue_capacity=8, shedding="priority")
        )
        assert policy.threshold("any") == 8


class TestTenantPriorities:
    def test_maps_owned_topologies(self):
        class FakeTenant:
            def __init__(self, priority):
                self.priority = priority

        tenants = {"gold": FakeTenant(2), "free": FakeTenant(0)}
        owners = {"topo-b": "free", "topo-a": "gold", "topo-c": "ghost"}
        pairs = tenant_priorities(tenants, owners)
        # Sorted by topology id; unregistered owners skipped.
        assert pairs == (("topo-a", 2), ("topo-b", 0))
