"""Tests for SimulationConfig validation."""

import pytest

from repro.errors import ConfigError
from repro.simulation.config import SimulationConfig


class TestDefaults:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.window_s == 10.0  # the paper's reporting window
        assert config.max_spout_pending == 10

    def test_unbounded_pending_allowed(self):
        assert SimulationConfig(max_spout_pending=None).max_spout_pending is None

    def test_crash_model_can_be_disabled(self):
        config = SimulationConfig(queue_overflow_batches=None)
        assert config.queue_overflow_batches is None


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"duration_s": -1.0},
            {"window_s": 0.0},
            {"warmup_s": -1.0},
            {"warmup_s": 120.0, "duration_s": 120.0},
            {"max_spout_pending": 0},
            {"batch_timeout_s": 0.0},
            {"thrash_factor": 0.5},
            {"context_switch_overhead": -0.1},
            {"serde_ms_per_tuple": -0.1},
            {"queue_overflow_batches": 0},
            {"worker_restart_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(AttributeError):
            config.duration_s = 5.0
