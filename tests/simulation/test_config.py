"""Tests for SimulationConfig validation."""

import pytest

from repro.errors import ConfigError
from repro.simulation.config import SimulationConfig
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.keys import UniformKeys


class TestDefaults:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.window_s == 10.0  # the paper's reporting window
        assert config.max_spout_pending == 10

    def test_unbounded_pending_allowed(self):
        assert SimulationConfig(max_spout_pending=None).max_spout_pending is None

    def test_crash_model_can_be_disabled(self):
        config = SimulationConfig(queue_overflow_batches=None)
        assert config.queue_overflow_batches is None

    def test_closed_loop_is_the_default(self):
        config = SimulationConfig()
        assert config.arrival_process is None
        assert config.arrival_keys is None
        assert config.arrival_seed == 1

    def test_open_loop_config_accepted(self):
        config = SimulationConfig(
            arrival_process=PoissonArrivals(rate_tps=100.0),
            arrival_keys=UniformKeys(num_keys=8),
            arrival_seed=7,
        )
        assert config.arrival_process.mean_rate_tps() == 100.0
        assert config.arrival_keys.num_keys == 8


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"duration_s": -1.0},
            {"window_s": 0.0},
            {"warmup_s": -1.0},
            {"warmup_s": 120.0, "duration_s": 120.0},
            {"max_spout_pending": 0},
            {"batch_timeout_s": 0.0},
            {"thrash_factor": 0.5},
            {"context_switch_overhead": -0.1},
            {"serde_ms_per_tuple": -0.1},
            {"queue_overflow_batches": 0},
            {"worker_restart_s": -1.0},
            {"arrival_process": 42},
            {"arrival_process": "poisson"},
            {"arrival_keys": UniformKeys(num_keys=4)},  # needs a process
            {"arrival_process": PoissonArrivals(rate_tps=10.0),
             "arrival_keys": 7},
            {"arrival_process": PoissonArrivals(rate_tps=10.0),
             "arrival_seed": -1},
            {"arrival_process": PoissonArrivals(rate_tps=10.0),
             "arrival_seed": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(AttributeError):
            config.duration_s = 5.0
