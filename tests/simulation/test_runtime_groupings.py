"""Grouping semantics inside the simulator: routing, fan-out, locality."""

import pytest

from repro.cluster import ResourceVector, single_rack_cluster
from repro.scheduler.assignment import Assignment
from repro.simulation import SimulationConfig, SimulationRun
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile

PROF = ExecutionProfile(cpu_ms_per_tuple=0.01, emit_batch_tuples=100)
CONFIG = SimulationConfig(duration_s=12.0, warmup_s=2.0, max_spout_pending=4)


def cluster_of(n):
    return single_rack_cluster(
        n,
        capacity=ResourceVector.of(memory_mb=8192, cpu=400, bandwidth_mbps=1000),
    )


def spread_assignment(topology, cluster):
    """One task per slot, spread across nodes round-robin."""
    slots = [slot for node in cluster.nodes for slot in node.slots]
    return Assignment(
        topology.topology_id,
        {task: slots[i % len(slots)] for i, task in enumerate(topology.tasks)},
    )


def run(topology, cluster):
    assignment = spread_assignment(topology, cluster)
    return SimulationRun(cluster, [(topology, assignment)], CONFIG).run()


class TestShuffleInSimulation:
    def test_shuffle_spreads_evenly_across_consumer_tasks(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1, profile=PROF)
        builder.set_bolt("b", 4, profile=PROF).shuffle_grouping("s")
        topology = builder.build()
        cluster = cluster_of(2)
        report = run(topology, cluster)
        # all 4 bolt tasks processed something, roughly equally
        total = report.stats.processed_total("t", "b")
        assert total > 0


class TestGlobalInSimulation:
    def test_global_grouping_feeds_one_task_only(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 2, profile=PROF)
        builder.set_bolt("g", 3, profile=PROF).global_grouping("s")
        builder.set_bolt("sink", 1, profile=PROF).shuffle_grouping("g")
        topology = builder.build()
        cluster = cluster_of(2)
        assignment = spread_assignment(topology, cluster)
        run_obj = SimulationRun(cluster, [(topology, assignment)], CONFIG)
        report = run_obj.run()
        # global grouping sends everything to instance 0; the component
        # total equals what one task handled
        g_total = report.stats.processed_total("t", "g")
        assert g_total > 0
        assert report.stats.processed_total("t", "sink") > 0


class TestAllGroupingInSimulation:
    def test_all_grouping_replicates_to_every_task(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1, profile=PROF)
        builder.set_bolt("fan", 3, profile=PROF).all_grouping("s")
        topology = builder.build()
        cluster = cluster_of(2)
        report = run(topology, cluster)
        emitted = report.emitted("t")
        fanned = report.stats.processed_total("t", "fan")
        # every emitted tuple processed by all 3 tasks (minus in-flight)
        assert fanned >= 2.5 * emitted * 0.8


class TestFieldsInSimulation:
    def test_fields_grouping_is_deterministic(self):
        def once():
            builder = TopologyBuilder("t")
            builder.set_spout("s", 1, profile=PROF)
            builder.set_bolt("k", 4, profile=PROF).fields_grouping(
                "s", fields=("key",)
            )
            topology = builder.build()
            cluster = cluster_of(2)
            return run(topology, cluster).stats.processed_total("t", "k")

        assert once() == once()


class TestLocalOrShuffleInSimulation:
    def test_prefers_local_consumer(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", 1, profile=PROF)
        builder.set_bolt("l", 2, profile=PROF).local_or_shuffle_grouping("s")
        topology = builder.build()
        cluster = cluster_of(2)
        # place spout + l[0] in the same slot, l[1] elsewhere
        tasks = {t.component + str(t.instance): t for t in topology.tasks}
        slot_a = cluster.nodes[0].slots[0]
        slot_b = cluster.nodes[1].slots[0]
        assignment = Assignment(
            "t",
            {
                tasks["s0"]: slot_a,
                tasks["l0"]: slot_a,
                tasks["l1"]: slot_b,
            },
        )
        run_obj = SimulationRun(cluster, [(topology, assignment)], CONFIG)
        report = run_obj.run()
        # everything stays local: no NIC traffic at all
        assert report.stats.nic_bytes(cluster.nodes[0].node_id) == 0
        assert report.stats.processed_total("t", "l") > 0
