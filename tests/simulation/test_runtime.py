"""Tests for the simulated Storm runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ResourceVector, emulab_testbed, single_rack_cluster
from repro.errors import SchedulingError
from repro.scheduler.default import DefaultScheduler
from repro.scheduler.rstorm import RStormScheduler
from repro.simulation.config import SimulationConfig
from repro.simulation.runtime import SimulationRun
from repro.topology.builder import TopologyBuilder
from repro.topology.component import ExecutionProfile
from tests.conftest import make_linear


def schedule_and_run(topology, cluster=None, config=None, scheduler=None):
    cluster = cluster or emulab_testbed()
    scheduler = scheduler or RStormScheduler()
    assignment = scheduler.schedule([topology], cluster)[topology.topology_id]
    run = SimulationRun(
        cluster, [(topology, assignment)], config or SimulationConfig(duration_s=20.0, warmup_s=5.0)
    )
    return run, run.run()


class TestBasicExecution:
    def test_tuples_flow_to_sinks(self):
        topology = make_linear(parallelism=2, stages=3)
        _, report = schedule_and_run(topology)
        assert report.sunk("chain") > 0

    def test_conservation_sunk_never_exceeds_emitted(self):
        topology = make_linear(parallelism=2, stages=3)
        _, report = schedule_and_run(topology)
        # 1:1 output ratios and a single sink: sink count <= emitted
        assert report.sunk("chain") <= report.emitted("chain")

    def test_spout_pending_bounds_inflight(self):
        topology = make_linear(parallelism=1, stages=2)
        config = SimulationConfig(
            duration_s=20.0, warmup_s=5.0, max_spout_pending=1
        )
        run, report = schedule_and_run(topology, config=config)
        # with credit 1 per spout, unacked work is at most 1 batch deep
        assert report.emitted("chain") - report.sunk("chain") <= (
            topology.component("stage-0").profile.emit_batch_tuples
        ) * 2

    def test_output_ratio_multiplies_stream(self):
        builder = TopologyBuilder("fanout")
        prof = ExecutionProfile(cpu_ms_per_tuple=0.01, output_ratio=3.0)
        builder.set_spout("s", 1, profile=prof)
        builder.set_bolt("triple", 1, profile=prof).shuffle_grouping("s")
        builder.set_bolt("sink", 1, profile=prof).shuffle_grouping("triple")
        topology = builder.build()
        _, report = schedule_and_run(topology)
        sunk = report.sunk("fanout")
        processed_by_triple = report.stats.processed_total("fanout", "triple")
        assert sunk >= 2.5 * processed_by_triple

    def test_copies_to_every_subscriber(self):
        builder = TopologyBuilder("copies")
        prof = ExecutionProfile(cpu_ms_per_tuple=0.01)
        builder.set_spout("s", 1, profile=prof)
        builder.set_bolt("a", 1, profile=prof).shuffle_grouping("s")
        builder.set_bolt("b", 1, profile=prof).shuffle_grouping("s")
        topology = builder.build()
        _, report = schedule_and_run(topology)
        a = report.stats.processed_total("copies", "a")
        b = report.stats.processed_total("copies", "b")
        assert a > 0 and abs(a - b) <= prof.emit_batch_tuples

    def test_rate_capped_spout_emits_at_cap(self):
        builder = TopologyBuilder("capped")
        prof = ExecutionProfile(
            cpu_ms_per_tuple=0.001, max_rate_tps=500.0, emit_batch_tuples=50
        )
        builder.set_spout("s", 1, profile=prof)
        builder.set_bolt("sink", 1).shuffle_grouping("s")
        topology = builder.build()
        _, report = schedule_and_run(topology)
        emitted_rate = report.emitted("capped") / 20.0
        assert emitted_rate == pytest.approx(500.0, rel=0.1)

    def test_spout_only_topology_counts_emissions_as_sink(self):
        builder = TopologyBuilder("solo")
        builder.set_spout("s", 1)
        topology = builder.build()
        _, report = schedule_and_run(topology)
        assert report.sunk("solo") == report.emitted("solo") > 0

    def test_incomplete_assignment_rejected(self):
        topology = make_linear()
        cluster = emulab_testbed()
        from repro.scheduler.assignment import Assignment

        partial = Assignment("chain", {})
        with pytest.raises(SchedulingError):
            SimulationRun(cluster, [(topology, partial)])


class TestCpuContention:
    def test_colocated_tasks_share_a_core(self):
        """Two CPU-heavy schedules: packed on 1 node vs spread on 2."""
        from repro.scheduler.assignment import Assignment

        def run_with(nodes):
            builder = TopologyBuilder("hot")
            prof = ExecutionProfile(cpu_ms_per_tuple=1.0, emit_batch_tuples=50)
            builder.set_spout("s", 1, profile=prof)
            builder.set_bolt("b", 1, profile=prof).shuffle_grouping("s")
            topology = builder.build()
            cluster = single_rack_cluster(
                2,
                capacity=ResourceVector.of(
                    memory_mb=2048, cpu=100, bandwidth_mbps=1000
                ),
            )
            tasks = topology.tasks
            mapping = {
                tasks[0]: cluster.nodes[nodes[0]].slots[0],
                tasks[1]: cluster.nodes[nodes[1]].slots[0],
            }
            run = SimulationRun(
                cluster,
                [(topology, Assignment("hot", mapping))],
                SimulationConfig(duration_s=20.0, warmup_s=5.0),
            )
            return run.run().sunk("hot")

        packed = run_with([0, 0])
        spread = run_with([0, 1])
        assert spread > packed * 1.5  # two cores beat one shared core

    def test_memory_overcommit_thrashes(self):
        from repro.scheduler.assignment import Assignment

        def run_with_memory(memory_mb):
            builder = TopologyBuilder("fat")
            prof = ExecutionProfile(cpu_ms_per_tuple=0.1)
            spout = builder.set_spout("s", 1, profile=prof)
            spout.set_memory_load(memory_mb)
            bolt = builder.set_bolt("b", 1, profile=prof)
            bolt.shuffle_grouping("s")
            bolt.set_memory_load(memory_mb)
            topology = builder.build()
            cluster = single_rack_cluster(
                1,
                capacity=ResourceVector.of(
                    memory_mb=2048, cpu=100, bandwidth_mbps=100
                ),
            )
            slot = cluster.nodes[0].slots[0]
            assignment = Assignment(
                "fat", {task: slot for task in topology.tasks}
            )
            run = SimulationRun(
                cluster,
                [(topology, assignment)],
                SimulationConfig(
                    duration_s=20.0, warmup_s=5.0, thrash_factor=25.0
                ),
            )
            return run.run().sunk("fat")

        thrashed = run_with_memory(1500.0)  # 3000 MB resident > 2048
        healthy = run_with_memory(500.0)  # fits comfortably
        assert healthy > 5 * thrashed


class TestFailureInjection:
    def test_node_failure_stops_its_tasks(self):
        topology = make_linear(parallelism=2, stages=2)
        cluster = emulab_testbed()
        assignment = RStormScheduler().schedule([topology], cluster)["chain"]
        run = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=60.0, warmup_s=5.0),
        )
        victim = assignment.nodes[0]
        run.fail_node_at(10.0, victim)
        report = run.run()
        # failures surface as timed-out batches
        assert report.failed("chain") > 0

    def test_migration_restores_throughput(self):
        topology = make_linear(parallelism=2, stages=2)
        cluster = emulab_testbed()
        scheduler = RStormScheduler()
        assignment = scheduler.schedule([topology], cluster)["chain"]
        run = SimulationRun(
            cluster,
            [(topology, assignment)],
            SimulationConfig(duration_s=90.0, warmup_s=5.0),
        )
        victim = assignment.nodes[0]
        run.fail_node_at(20.0, victim)

        def reschedule():
            surviving = assignment.restricted_to_nodes(
                n.node_id for n in cluster.alive_nodes
            )
            cluster.node(victim).release_all()
            new = scheduler.schedule([topology], cluster, {"chain": surviving})[
                "chain"
            ]
            run.migrate("chain", new)

        run.on_time(25.0, reschedule)
        report = run.run()
        series = dict(report.throughput_series("chain"))
        assert series[70.0] > 0
        assert series[70.0] > series[20.0] * 0.5

    def test_worker_crash_on_queue_overflow(self):
        """An overloaded bolt with no flow control crashes its worker."""
        builder = TopologyBuilder("overrun")
        fast = ExecutionProfile(
            cpu_ms_per_tuple=0.01, emit_batch_tuples=100, max_rate_tps=20000.0
        )
        slow = ExecutionProfile(cpu_ms_per_tuple=5.0)
        builder.set_spout("s", 2, profile=fast)
        builder.set_bolt("slow", 1, profile=slow).shuffle_grouping("s")
        topology = builder.build()
        cluster = emulab_testbed()
        assignment = DefaultScheduler().schedule([topology], cluster)["overrun"]
        config = SimulationConfig(
            duration_s=60.0,
            warmup_s=5.0,
            max_spout_pending=None,
            queue_overflow_batches=50,
        )
        run = SimulationRun(cluster, [(topology, assignment)], config)
        report = run.run()
        assert report.crashes("overrun") > 0


class TestDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=1, max_value=3))
    def test_identical_runs_identical_results(self, parallelism):
        def once():
            topology = make_linear(parallelism=parallelism, stages=3)
            cluster = emulab_testbed()
            assignment = RStormScheduler().schedule([topology], cluster)["chain"]
            run = SimulationRun(
                cluster,
                [(topology, assignment)],
                SimulationConfig(duration_s=15.0, warmup_s=5.0),
            )
            report = run.run()
            return (
                report.emitted("chain"),
                report.sunk("chain"),
                tuple(report.throughput_series("chain")),
            )

        assert once() == once()
