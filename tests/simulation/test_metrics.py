"""Tests for the StatisticServer."""

import pytest

from repro.simulation.metrics import StatisticServer


class TestWindows:
    def test_window_index(self):
        stats = StatisticServer(window_s=10.0)
        assert stats.window_index(0.0) == 0
        assert stats.window_index(9.999) == 0
        assert stats.window_index(10.0) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StatisticServer(window_s=0.0)

    def test_sink_recording_buckets_by_window(self):
        stats = StatisticServer(window_s=10.0)
        stats.record_sink("t", "sink", 5.0, 100)
        stats.record_sink("t", "sink", 15.0, 200)
        series = stats.throughput_series("t", 30.0)
        assert series == [(0.0, 100), (10.0, 200), (20.0, 0)]

    def test_component_series_separate(self):
        stats = StatisticServer(window_s=10.0)
        stats.record_sink("t", "a", 1.0, 10)
        stats.record_sink("t", "b", 1.0, 20)
        assert stats.component_series("t", "a", 10.0) == [(0.0, 10)]
        assert stats.component_series("t", "b", 10.0) == [(0.0, 20)]

    def test_sink_total(self):
        stats = StatisticServer()
        stats.record_sink("t", "s", 0.0, 5)
        stats.record_sink("t", "s", 50.0, 7)
        assert stats.sink_total("t") == 12
        assert stats.sink_total("other") == 0


class TestCounters:
    def test_emitted_failed_processed(self):
        stats = StatisticServer()
        stats.record_emitted("t", 100)
        stats.record_failed("t", 30)
        stats.record_processed("t", "bolt", 70)
        assert stats.emitted_total("t") == 100
        assert stats.failed_total("t") == 30
        assert stats.processed_total("t", "bolt") == 70

    def test_busy_accumulates(self):
        stats = StatisticServer()
        stats.record_busy("n1", 0.5)
        stats.record_busy("n1", 0.25)
        assert stats.busy_core_seconds("n1") == 0.75
        assert stats.busy_core_seconds("ghost") == 0.0

    def test_nic_bytes(self):
        stats = StatisticServer()
        stats.record_nic("n1", 1000)
        stats.record_nic("n1", 500)
        assert stats.nic_bytes("n1") == 1500

    def test_ack_latencies_copied(self):
        stats = StatisticServer()
        stats.record_ack("t", 0.01)
        samples = stats.ack_latencies("t")
        samples.append(99.0)
        assert stats.ack_latencies("t") == [0.01]

    def test_crashes_by_component(self):
        stats = StatisticServer()
        stats.record_crash("t", "bolt-a")
        stats.record_crash("t", "bolt-a")
        stats.record_crash("t", "bolt-b")
        stats.record_crash("other", "x")
        assert stats.crash_total("t") == 3
        assert stats.crashes_by_component("t") == {"bolt-a": 2, "bolt-b": 1}

    def test_topologies_seen(self):
        stats = StatisticServer()
        stats.record_emitted("b", 1)
        stats.record_sink("a", "s", 0.0, 1)
        assert stats.topologies_seen() == ["a", "b"]
